//! Differential testing of the two simulators: the abstract DCA model and
//! the BOINC-style volunteer server are independent implementations of the
//! same redundancy semantics, so matched parameters (same job reliability,
//! same duration window, same deadline, no hangs or churn) must produce
//! statistically indistinguishable behavior — and their run journals must
//! tell structurally equivalent stories.

use std::rc::Rc;

use smartred::core::execution::Assignment;
use smartred::core::hedge::HedgePolicy;
use smartred::core::params::{KVotes, VoteMargin};
use smartred::core::strategy::{Iterative, Traditional};
use smartred::dca::config::DcaConfig;
use smartred::dca::sim::run_journaled as run_dca_journaled;
use smartred::desim::journal::{assert as jassert, EventKind, Journal};
use smartred::volunteer::host::PlanetLabProfile;
use smartred::volunteer::server::{run_journaled as run_volunteer_journaled, VolunteerConfig};
use smartred::RedundancyStrategy;

const TASKS: usize = 2_000;
const NODES: usize = 200;
const WRONG_RATE: f64 = 0.3; // job reliability r = 0.7 on both platforms
const SEED: u64 = 314159;

fn dca_config() -> DcaConfig {
    // U[0.5, 1.5] durations, 3-unit deadline, wrong-rate 0.3, no hangs.
    DcaConfig::paper_baseline(TASKS, NODES, WRONG_RATE, SEED)
}

fn volunteer_config() -> VolunteerConfig {
    let mut cfg = VolunteerConfig::paper_deployment(12, SEED);
    cfg.hosts = NODES;
    cfg.tasks = TASKS;
    // Match the DCA baseline: seeded faults only (r = 0.7), homogeneous
    // unit-speed hosts, same duration window, same 3-unit deadline.
    cfg.profile = PlanetLabProfile {
        seeded_fault_rate: WRONG_RATE,
        platform_fault_rate: 0.0,
        unresponsive_rate: 0.0,
        speed_window: (1.0, 1.0),
    };
    cfg.duration_window = (0.5, 1.5);
    cfg.deadline_units = 3.0;
    cfg
}

struct Matched {
    dca_cost: f64,
    dca_rel: f64,
    vol_cost: f64,
    vol_rel: f64,
    dca_journal: Journal,
    vol_journal: Journal,
    dca_timeouts: u64,
    vol_timeouts: u64,
}

fn matched_runs<S>(strategy: S) -> Matched
where
    S: RedundancyStrategy<bool> + Clone + 'static,
{
    let dca = run_dca_journaled(Rc::new(strategy.clone()), &dca_config()).unwrap();
    let (vol, vol_journal) =
        run_volunteer_journaled(Rc::new(strategy), &volunteer_config()).unwrap();
    Matched {
        dca_cost: dca.report.jobs_per_task.mean(),
        dca_rel: dca.report.reliability(),
        vol_cost: vol.cost_factor(),
        vol_rel: vol.reliability(),
        dca_journal: dca.journal,
        vol_journal,
        dca_timeouts: dca.report.timeouts,
        vol_timeouts: vol.timeouts,
    }
}

#[test]
fn traditional_k3_agrees_across_platforms() {
    let m = matched_runs(Traditional::new(KVotes::new(3).unwrap()));
    // TR's cost is exactly k on both platforms, by construction.
    assert_eq!(m.dca_cost, 3.0, "DCA TR cost must be exactly k");
    assert_eq!(m.vol_cost, 3.0, "volunteer TR cost must be exactly k");
    // With max duration 1.5 < deadline 3.0 and no hangs, neither platform
    // may time out — a timeout here means the parameter match is broken.
    assert_eq!(m.dca_timeouts, 0);
    assert_eq!(m.vol_timeouts, 0);
    // Expected majority-of-3 reliability at r = 0.7 is 0.784; two
    // independent 2000-task samples stay within a few σ of each other.
    assert!(
        (m.dca_rel - m.vol_rel).abs() < 0.035,
        "TR reliability diverged: dca {} vs volunteer {}",
        m.dca_rel,
        m.vol_rel
    );
    assert!((m.dca_rel - 0.784).abs() < 0.03);
    assert!((m.vol_rel - 0.784).abs() < 0.03);
}

#[test]
fn iterative_d4_agrees_across_platforms() {
    let m = matched_runs(Iterative::new(VoteMargin::new(4).unwrap()));
    assert_eq!(m.dca_timeouts, 0);
    assert_eq!(m.vol_timeouts, 0);
    // IR's cost is stochastic; the two platforms sample it independently
    // over 2000 tasks each, so means agree to within a few percent.
    let rel_diff = (m.dca_cost - m.vol_cost).abs() / m.dca_cost;
    assert!(
        rel_diff < 0.05,
        "IR cost diverged: dca {} vs volunteer {} ({}%)",
        m.dca_cost,
        m.vol_cost,
        rel_diff * 100.0
    );
    assert!(m.dca_rel > 0.95 && m.vol_rel > 0.95);
    assert!(
        (m.dca_rel - m.vol_rel).abs() < 0.02,
        "IR reliability diverged: dca {} vs volunteer {}",
        m.dca_rel,
        m.vol_rel
    );
}

/// A hedge policy whose threshold (q70 of U[0.5, 1.5] ≈ 1.2, ×1.0) falls
/// well inside the 3-unit deadline on both platforms, so slow jobs are
/// hedged while fast ones are not.
fn matched_hedge() -> HedgePolicy {
    HedgePolicy {
        quantile: 0.7,
        min_samples: 20,
        multiplier: 1.0,
        max_per_task: 1,
    }
}

fn hedged_matched_runs<S>(strategy: S, assignment: Assignment) -> Matched
where
    S: RedundancyStrategy<bool> + Clone + 'static,
{
    let mut dca_cfg = dca_config();
    dca_cfg.hedge = Some(matched_hedge());
    dca_cfg.assignment = assignment;
    let mut vol_cfg = volunteer_config();
    vol_cfg.hedge = Some(matched_hedge());
    vol_cfg.assignment = assignment;
    let dca = run_dca_journaled(Rc::new(strategy.clone()), &dca_cfg).unwrap();
    let (vol, vol_journal) = run_volunteer_journaled(Rc::new(strategy), &vol_cfg).unwrap();
    // The twin-settlement invariant and the journal-as-pure-observer
    // contract hold on both substrates, whatever the assignment policy.
    assert_eq!(
        dca.report.hedges_launched,
        dca.report.hedges_won + dca.report.hedges_wasted,
        "dca: every launched twin settles exactly once"
    );
    assert_eq!(
        vol.hedges_launched,
        vol.hedges_won + vol.hedges_wasted,
        "volunteer: every launched twin settles exactly once"
    );
    for (name, journal, launched, won, wasted) in [
        (
            "dca",
            &dca.journal,
            dca.report.hedges_launched,
            dca.report.hedges_won,
            dca.report.hedges_wasted,
        ),
        (
            "volunteer",
            &vol_journal,
            vol.hedges_launched,
            vol.hedges_won,
            vol.hedges_wasted,
        ),
    ] {
        assert_eq!(
            journal.count(EventKind::HedgeLaunched) as u64,
            launched,
            "{name}"
        );
        assert_eq!(journal.count(EventKind::HedgeWon) as u64, won, "{name}");
        assert_eq!(
            journal.count(EventKind::HedgeWasted) as u64,
            wasted,
            "{name}"
        );
    }
    Matched {
        dca_cost: dca.report.jobs_per_task.mean(),
        dca_rel: dca.report.reliability(),
        vol_cost: vol.cost_factor(),
        vol_rel: vol.reliability(),
        dca_journal: dca.journal,
        vol_journal,
        dca_timeouts: dca.report.timeouts,
        vol_timeouts: vol.timeouts,
    }
}

/// Hedged traditional redundancy at matched parameters: hedging fires on
/// both platforms, changes no verdict (TR cost stays exactly k, the
/// reliability match is as tight as the unhedged run's), and both
/// journals keep the structural contract.
#[test]
fn hedged_traditional_k3_agrees_across_platforms() {
    let m = hedged_matched_runs(
        Traditional::new(KVotes::new(3).unwrap()),
        Assignment::Random,
    );
    // Hedging is verdict-invariant: replica votes, and hence TR's exact
    // cost-of-k and expected reliability, are untouched.
    assert_eq!(m.dca_cost, 3.0, "DCA hedged TR cost must stay exactly k");
    assert_eq!(
        m.vol_cost, 3.0,
        "volunteer hedged TR cost must stay exactly k"
    );
    assert_eq!(m.dca_timeouts, 0);
    assert_eq!(m.vol_timeouts, 0);
    let dca_hedges = m.dca_journal.count(EventKind::HedgeLaunched);
    let vol_hedges = m.vol_journal.count(EventKind::HedgeLaunched);
    assert!(dca_hedges > 0, "a q70 trigger must fire on U[0.5,1.5] jobs");
    assert!(vol_hedges > 0, "a q70 trigger must fire on U[0.5,1.5] jobs");
    assert!(
        (m.dca_rel - m.vol_rel).abs() < 0.035,
        "hedged TR reliability diverged: dca {} vs volunteer {}",
        m.dca_rel,
        m.vol_rel
    );
    assert!((m.dca_rel - 0.784).abs() < 0.03);
    assert!((m.vol_rel - 0.784).abs() < 0.03);
    for (name, journal) in [("dca", &m.dca_journal), ("volunteer", &m.vol_journal)] {
        jassert::that(journal)
            .time_ordered()
            .waves_well_formed()
            .retry_follows_timeout()
            .count(EventKind::VerdictReached)
            .exactly(TASKS);
        assert_eq!(
            journal.count(EventKind::JobDispatched),
            3 * TASKS,
            "{name}: twins ride replica slots, never wave slots"
        );
        assert_eq!(journal.count(EventKind::VoteTallied), 3 * TASKS, "{name}");
    }
}

/// Every assignment policy produces the same statistical agreement under
/// hedged iterative redundancy: placement never moves votes, on either
/// platform.
#[test]
fn hedged_assignment_policies_agree_across_platforms() {
    for assignment in Assignment::ALL {
        let m = hedged_matched_runs(Iterative::new(VoteMargin::new(4).unwrap()), assignment);
        assert_eq!(m.dca_timeouts, 0, "{}", assignment.name());
        assert_eq!(m.vol_timeouts, 0, "{}", assignment.name());
        let rel_diff = (m.dca_cost - m.vol_cost).abs() / m.dca_cost;
        assert!(
            rel_diff < 0.05,
            "{}: hedged IR cost diverged: dca {} vs volunteer {} ({}%)",
            assignment.name(),
            m.dca_cost,
            m.vol_cost,
            rel_diff * 100.0
        );
        assert!(
            m.dca_rel > 0.95 && m.vol_rel > 0.95,
            "{}: hedged IR must keep IR reliability",
            assignment.name()
        );
        assert!(
            (m.dca_rel - m.vol_rel).abs() < 0.02,
            "{}: hedged IR reliability diverged: dca {} vs volunteer {}",
            assignment.name(),
            m.dca_rel,
            m.vol_rel
        );
    }
}

#[test]
fn matched_journals_tell_structurally_equivalent_stories() {
    let m = matched_runs(Traditional::new(KVotes::new(3).unwrap()));
    for (name, journal) in [("dca", &m.dca_journal), ("volunteer", &m.vol_journal)] {
        // Both platforms must satisfy the same behavioral contract...
        jassert::that(journal)
            .time_ordered()
            .waves_well_formed()
            .retry_follows_timeout()
            .no_dispatch_to_quarantined()
            .count(EventKind::VerdictReached)
            .exactly(TASKS)
            .count(EventKind::JobTimedOut)
            .exactly(0)
            .count(EventKind::RunEnded)
            .exactly(1);
        // ...and the same aggregate event shape: one TR wave per task of
        // exactly k jobs, one vote per dispatched job.
        assert_eq!(journal.count(EventKind::WaveOpened), TASKS, "{name}");
        assert_eq!(journal.count(EventKind::JobDispatched), 3 * TASKS, "{name}");
        assert_eq!(journal.count(EventKind::VoteTallied), 3 * TASKS, "{name}");
        assert_eq!(
            journal.count(EventKind::WaveClosed),
            journal.count(EventKind::WaveOpened),
            "{name}: every opened wave closes (no hangs, no caps)"
        );
    }
}
