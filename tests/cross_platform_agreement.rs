//! The reproduction's strongest internal check: four independent
//! implementations of the same model — closed-form analysis, Monte-Carlo
//! sampling, the discrete-event DCA, and the volunteer-computing server —
//! must agree on every technique's cost and reliability.

use std::rc::Rc;

use rand::SeedableRng;
use smartred::core::analysis;
use smartred::core::monte_carlo::{estimate, MonteCarloConfig};
use smartred::core::params::{KVotes, Reliability, VoteMargin};
use smartred::core::strategy::{Iterative, Progressive, Traditional};
use smartred::dca::config::DcaConfig;
use smartred::dca::sim::run as run_dca;
use smartred::volunteer::host::PlanetLabProfile;
use smartred::volunteer::server::{run as run_volunteer, VolunteerConfig};

const R: f64 = 0.7;

fn r() -> Reliability {
    Reliability::new(R).unwrap()
}

/// Cost and reliability from every platform for one strategy.
struct FourWay {
    analytic: (f64, f64),
    monte_carlo: (f64, f64),
    dca: (f64, f64),
    volunteer: (f64, f64),
}

fn four_way<S>(strategy: S, analytic: (f64, f64)) -> FourWay
where
    S: smartred::RedundancyStrategy<bool> + Clone + 'static,
{
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4242);
    let mc = estimate(&strategy, MonteCarloConfig::new(60_000, r()), &mut rng);

    let dca_cfg = DcaConfig::paper_baseline(30_000, 500, 1.0 - R, 4242);
    let dca = run_dca(Rc::new(strategy.clone()), &dca_cfg).unwrap();

    // Volunteer deployment with *only* the seeded 30% faults → r = 0.7;
    // average several executions since one deployment has just 140 tasks.
    let mut cost = 0.0;
    let mut rel = 0.0;
    let runs = 25;
    for i in 0..runs {
        let mut cfg = VolunteerConfig::paper_deployment(12, 1000 + i);
        cfg.profile = PlanetLabProfile {
            seeded_fault_rate: 0.30,
            platform_fault_rate: 0.0,
            unresponsive_rate: 0.0,
            speed_window: (1.0, 1.0),
        };
        let report = run_volunteer(Rc::new(strategy.clone()), &cfg).unwrap();
        cost += report.cost_factor();
        rel += report.reliability();
    }

    FourWay {
        analytic,
        monte_carlo: (mc.cost_factor(), mc.reliability()),
        dca: (dca.cost_factor(), dca.reliability()),
        volunteer: (cost / runs as f64, rel / runs as f64),
    }
}

fn assert_agreement(name: &str, fw: &FourWay, cost_tol: f64, rel_tol: f64) {
    for (platform, (cost, rel)) in [
        ("monte-carlo", fw.monte_carlo),
        ("dca", fw.dca),
        ("volunteer", fw.volunteer),
    ] {
        assert!(
            (cost - fw.analytic.0).abs() < cost_tol,
            "{name}/{platform}: cost {cost} vs analytic {}",
            fw.analytic.0
        );
        assert!(
            (rel - fw.analytic.1).abs() < rel_tol,
            "{name}/{platform}: reliability {rel} vs analytic {}",
            fw.analytic.1
        );
    }
}

#[test]
fn traditional_agrees_everywhere() {
    let k = KVotes::new(9).unwrap();
    let fw = four_way(
        Traditional::new(k),
        (
            analysis::traditional::cost(k),
            analysis::traditional::reliability(k, r()),
        ),
    );
    assert_agreement("traditional k=9", &fw, 0.05, 0.02);
}

#[test]
fn progressive_agrees_everywhere() {
    let k = KVotes::new(9).unwrap();
    let fw = four_way(
        Progressive::new(k),
        (
            analysis::progressive::cost_series(k, r()),
            analysis::progressive::reliability(k, r()),
        ),
    );
    assert_agreement("progressive k=9", &fw, 0.2, 0.02);
}

#[test]
fn iterative_agrees_everywhere() {
    let d = VoteMargin::new(4).unwrap();
    let fw = four_way(
        Iterative::new(d),
        (
            analysis::iterative::cost(d, r()),
            analysis::iterative::reliability(d, r()),
        ),
    );
    assert_agreement("iterative d=4", &fw, 0.3, 0.02);
}
