//! End-to-end verification of the paper's quantified claims, each tagged
//! with the section it comes from. These are the assertions EXPERIMENTS.md
//! summarizes.

use smartred::core::analysis::improvement::{improvement_sweep, MarginMatch};
use smartred::core::analysis::response::{expected_max_uniform, DEFAULT_JOB_DURATION};
use smartred::core::analysis::{iterative, progressive, traditional};
use smartred::core::params::{KVotes, Reliability, VoteMargin};

fn r(v: f64) -> Reliability {
    Reliability::new(v).unwrap()
}

fn k19() -> KVotes {
    KVotes::new(19).unwrap()
}

/// §3: the running example — equal reliability at 19 vs 14.2 vs 9.4 jobs.
#[test]
fn section3_running_example() {
    let rel_tr = traditional::reliability(k19(), r(0.7));
    let rel_ir = iterative::reliability(VoteMargin::new(4).unwrap(), r(0.7));
    assert!((rel_tr - 0.9674).abs() < 5e-4);
    assert!((rel_ir - 0.9674).abs() < 5e-4);
    assert!((progressive::cost_series(k19(), r(0.7)) - 14.2).abs() < 0.05);
    assert!((iterative::cost(VoteMargin::new(4).unwrap(), r(0.7)) - 9.35).abs() < 0.05);
}

/// §4.2: "Progressive redundancy is most helpful for high r … For r
/// approaching 1, progressive redundancy uses 2.0 times fewer resources
/// than traditional redundancy."
#[test]
fn section42_progressive_improvement_trend() {
    let sweep = improvement_sweep(k19(), 0.55, 0.995, 45, MarginMatch::Nearest).unwrap();
    let ratios: Vec<f64> = sweep.iter().map(|i| i.pr_ratio()).collect();
    // Monotone increasing in r…
    for pair in ratios.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "PR improvement not monotone");
    }
    // …from near parity to ≈ 2.0.
    assert!(ratios[0] < 1.3);
    let last = *ratios.last().unwrap();
    assert!((1.8..=2.0).contains(&last), "PR end ratio {last}");
}

/// §4.2: "Iterative redundancy … is at least 1.6 times as efficient even
/// for r close to 0.5 … peaks at 2.8 times … for r ≈ 0.86 … decreases
/// slightly to ≈ 2.4 as r approaches 1."
///
/// Under our documented nearest-failure matching the shape reproduces:
/// an interior peak in the paper's band with lower values at both ends.
/// Absolute endpoint values differ slightly from the paper's (its exact
/// matching protocol is unspecified); the discrete d grid also makes the
/// curve wiggle, so the claims are checked on the envelope.
#[test]
fn section42_iterative_improvement_shape() {
    let sweep = improvement_sweep(k19(), 0.6, 0.995, 80, MarginMatch::Nearest).unwrap();
    let ratios: Vec<f64> = sweep.iter().map(|i| i.ir_ratio()).collect();
    let peak = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let peak_r = sweep[ratios.iter().position(|&v| v == peak).unwrap()]
        .r
        .get();
    assert!((2.4..=3.2).contains(&peak), "IR peak {peak}");
    assert!((0.78..=0.97).contains(&peak_r), "IR peak location {peak_r}");
    // Better than ~1.4x across the whole plotted range (paper: ≥ 1.6 with
    // its own matching).
    assert!(
        ratios.iter().all(|&v| v > 1.35),
        "IR min {:?}",
        ratios.iter().cloned().fold(f64::MAX, f64::min)
    );
    // The tail after the peak declines.
    assert!(*ratios.last().unwrap() < peak - 0.1);
}

/// §5.2: response-time ordering and bounded penalty.
#[test]
fn section52_response_time_penalty() {
    let (lo, hi) = DEFAULT_JOB_DURATION;
    let tr = expected_max_uniform(19, lo, hi);
    let pr = progressive::profile(k19(), r(0.7), DEFAULT_JOB_DURATION).expected_response;
    let ir = iterative::profile(
        VoteMargin::new(4).unwrap(),
        r(0.7),
        DEFAULT_JOB_DURATION,
        1e-12,
    )
    .expected_response;
    assert!(tr < pr, "TR must respond fastest");
    // Paper: PR 1.4–2.5× and IR 1.4–2.8× "for the instances measured";
    // our analytic k=19 point lands right at the PR envelope's edge, so the
    // bands get a small numerical allowance.
    let pr_ratio = pr / tr;
    let ir_ratio = ir / tr;
    assert!((1.2..=2.55).contains(&pr_ratio), "PR ratio {pr_ratio}");
    assert!((1.2..=2.85).contains(&ir_ratio), "IR ratio {ir_ratio}");
}

/// §5.2: "a task server employing progressive redundancy … guarantees no
/// more than (k−1)/2 such waves [beyond the first]. Iterative redundancy
/// makes no such guarantees."
#[test]
fn section52_wave_bounds() {
    // PR: total waves ≤ (k+1)/2 on any binary vote path (first + top-ups).
    use smartred::core::execution::{Poll, TaskExecution};
    use smartred::core::strategy::Progressive;
    let k = k19();
    // Adversarial alternating tape maximizes waves.
    let mut task = TaskExecution::new(Progressive::new(k));
    let mut flip = false;
    loop {
        match task.poll().unwrap() {
            Poll::Deploy(n) => {
                for _ in 0..n {
                    task.record(flip);
                    flip = !flip;
                }
            }
            Poll::Complete(_) => break,
            Poll::Pending => unreachable!(),
        }
    }
    assert!(task.waves() <= k.consensus());

    // IR: a sufficiently perverse tape produces arbitrarily many waves.
    use smartred::core::strategy::Iterative;
    let d = VoteMargin::new(2).unwrap();
    let mut task = TaskExecution::new(Iterative::new(d));
    let mut waves = 0;
    let mut toggle = false;
    for _ in 0..50 {
        match task.poll().unwrap() {
            Poll::Deploy(n) => {
                waves += 1;
                for _ in 0..n {
                    task.record(toggle);
                    toggle = !toggle;
                }
            }
            Poll::Complete(_) => break,
            Poll::Pending => unreachable!(),
        }
    }
    assert!(
        waves >= 40,
        "IR wave count should be unbounded; got {waves}"
    );
}

/// §3.3 (optimality): iterative redundancy achieves any target reliability
/// at no more cost than either alternative achieving at least that
/// reliability, for the paper's k = 19 regime.
#[test]
fn section33_cost_optimality_at_k19() {
    for rr in [0.6, 0.7, 0.8, 0.9] {
        let rel_target = traditional::reliability(k19(), r(rr));
        // Find the cheapest IR margin meeting the target.
        let mut d = 1;
        while iterative::reliability(VoteMargin::new(d).unwrap(), r(rr)) < rel_target {
            d += 1;
        }
        let ir_cost = iterative::cost(VoteMargin::new(d).unwrap(), r(rr));
        assert!(
            ir_cost <= progressive::cost_series(k19(), r(rr)) + 1e-9,
            "r={rr}: IR {ir_cost} vs PR {}",
            progressive::cost_series(k19(), r(rr))
        );
        assert!(ir_cost < 19.0);
    }
}

/// §4.2 (Figure 5(a) text): "iterative redundancy outperforms traditional
/// and progressive redundancy in the number of jobs AND time to execute the
/// computation" — with fixed resources, fewer jobs means a shorter
/// makespan for the whole computation, despite IR's worse per-task
/// response time (§5.2).
#[test]
fn section42_makespan_ordering() {
    use smartred::core::strategy::{Iterative, Progressive, Traditional};
    use smartred::dca::config::DcaConfig;
    use smartred::dca::sim::run;
    use std::rc::Rc;

    let cfg = DcaConfig::paper_baseline(10_000, 200, 0.3, 61);
    let k = k19();
    let tr = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
    let pr = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
    let ir = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
    assert!(
        ir.makespan_units < pr.makespan_units && pr.makespan_units < tr.makespan_units,
        "makespans: IR {} / PR {} / TR {}",
        ir.makespan_units,
        pr.makespan_units,
        tr.makespan_units
    );
    // Under task-heavy load all three keep the pool saturated (§5.2).
    for report in [&tr, &pr, &ir] {
        assert!(
            report.utilization() > 0.95,
            "utilization {}",
            report.utilization()
        );
    }
}
