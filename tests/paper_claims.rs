//! End-to-end verification of the paper's quantified claims, each tagged
//! with the section it comes from. These are the assertions EXPERIMENTS.md
//! summarizes.

use smartred::core::analysis::improvement::{improvement_sweep, MarginMatch};
use smartred::core::analysis::response::{expected_max_uniform, DEFAULT_JOB_DURATION};
use smartred::core::analysis::{iterative, progressive, traditional};
use smartred::core::params::{KVotes, Reliability, VoteMargin};

fn r(v: f64) -> Reliability {
    Reliability::new(v).unwrap()
}

fn k19() -> KVotes {
    KVotes::new(19).unwrap()
}

/// §3: the running example — equal reliability at 19 vs 14.2 vs 9.4 jobs.
#[test]
fn section3_running_example() {
    let rel_tr = traditional::reliability(k19(), r(0.7));
    let rel_ir = iterative::reliability(VoteMargin::new(4).unwrap(), r(0.7));
    assert!((rel_tr - 0.9674).abs() < 5e-4);
    assert!((rel_ir - 0.9674).abs() < 5e-4);
    assert!((progressive::cost_series(k19(), r(0.7)) - 14.2).abs() < 0.05);
    assert!((iterative::cost(VoteMargin::new(4).unwrap(), r(0.7)) - 9.35).abs() < 0.05);
}

/// §4.2: "Progressive redundancy is most helpful for high r … For r
/// approaching 1, progressive redundancy uses 2.0 times fewer resources
/// than traditional redundancy."
#[test]
fn section42_progressive_improvement_trend() {
    let sweep = improvement_sweep(k19(), 0.55, 0.995, 45, MarginMatch::Nearest).unwrap();
    let ratios: Vec<f64> = sweep.iter().map(|i| i.pr_ratio()).collect();
    // Monotone increasing in r…
    for pair in ratios.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "PR improvement not monotone");
    }
    // …from near parity to ≈ 2.0.
    assert!(ratios[0] < 1.3);
    let last = *ratios.last().unwrap();
    assert!((1.8..=2.0).contains(&last), "PR end ratio {last}");
}

/// §4.2: "Iterative redundancy … is at least 1.6 times as efficient even
/// for r close to 0.5 … peaks at 2.8 times … for r ≈ 0.86 … decreases
/// slightly to ≈ 2.4 as r approaches 1."
///
/// Under our documented nearest-failure matching the shape reproduces:
/// an interior peak in the paper's band with lower values at both ends.
/// Absolute endpoint values differ slightly from the paper's (its exact
/// matching protocol is unspecified); the discrete d grid also makes the
/// curve wiggle, so the claims are checked on the envelope.
#[test]
fn section42_iterative_improvement_shape() {
    let sweep = improvement_sweep(k19(), 0.6, 0.995, 80, MarginMatch::Nearest).unwrap();
    let ratios: Vec<f64> = sweep.iter().map(|i| i.ir_ratio()).collect();
    let peak = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let peak_r = sweep[ratios.iter().position(|&v| v == peak).unwrap()]
        .r
        .get();
    assert!((2.4..=3.2).contains(&peak), "IR peak {peak}");
    assert!((0.78..=0.97).contains(&peak_r), "IR peak location {peak_r}");
    // Better than ~1.4x across the whole plotted range (paper: ≥ 1.6 with
    // its own matching).
    assert!(
        ratios.iter().all(|&v| v > 1.35),
        "IR min {:?}",
        ratios.iter().cloned().fold(f64::MAX, f64::min)
    );
    // The tail after the peak declines.
    assert!(*ratios.last().unwrap() < peak - 0.1);
}

/// §5.2: response-time ordering and bounded penalty.
#[test]
fn section52_response_time_penalty() {
    let (lo, hi) = DEFAULT_JOB_DURATION;
    let tr = expected_max_uniform(19, lo, hi);
    let pr = progressive::profile(k19(), r(0.7), DEFAULT_JOB_DURATION).expected_response;
    let ir = iterative::profile(
        VoteMargin::new(4).unwrap(),
        r(0.7),
        DEFAULT_JOB_DURATION,
        1e-12,
    )
    .expected_response;
    assert!(tr < pr, "TR must respond fastest");
    // Paper: PR 1.4–2.5× and IR 1.4–2.8× "for the instances measured";
    // our analytic k=19 point lands right at the PR envelope's edge, so the
    // bands get a small numerical allowance.
    let pr_ratio = pr / tr;
    let ir_ratio = ir / tr;
    assert!((1.2..=2.55).contains(&pr_ratio), "PR ratio {pr_ratio}");
    assert!((1.2..=2.85).contains(&ir_ratio), "IR ratio {ir_ratio}");
}

/// §5.2: "a task server employing progressive redundancy … guarantees no
/// more than (k−1)/2 such waves [beyond the first]. Iterative redundancy
/// makes no such guarantees."
#[test]
fn section52_wave_bounds() {
    // PR: total waves ≤ (k+1)/2 on any binary vote path (first + top-ups).
    use smartred::core::execution::{Poll, TaskExecution};
    use smartred::core::strategy::Progressive;
    let k = k19();
    // Adversarial alternating tape maximizes waves.
    let mut task = TaskExecution::new(Progressive::new(k));
    let mut flip = false;
    loop {
        match task.poll().unwrap() {
            Poll::Deploy(n) => {
                for _ in 0..n {
                    task.record(flip);
                    flip = !flip;
                }
            }
            Poll::Complete(_) => break,
            Poll::Pending => unreachable!(),
        }
    }
    assert!(task.waves() <= k.consensus());

    // IR: a sufficiently perverse tape produces arbitrarily many waves.
    use smartred::core::strategy::Iterative;
    let d = VoteMargin::new(2).unwrap();
    let mut task = TaskExecution::new(Iterative::new(d));
    let mut waves = 0;
    let mut toggle = false;
    for _ in 0..50 {
        match task.poll().unwrap() {
            Poll::Deploy(n) => {
                waves += 1;
                for _ in 0..n {
                    task.record(toggle);
                    toggle = !toggle;
                }
            }
            Poll::Complete(_) => break,
            Poll::Pending => unreachable!(),
        }
    }
    assert!(
        waves >= 40,
        "IR wave count should be unbounded; got {waves}"
    );
}

/// §3.3 (optimality): iterative redundancy achieves any target reliability
/// at no more cost than either alternative achieving at least that
/// reliability, for the paper's k = 19 regime.
#[test]
fn section33_cost_optimality_at_k19() {
    for rr in [0.6, 0.7, 0.8, 0.9] {
        let rel_target = traditional::reliability(k19(), r(rr));
        // Find the cheapest IR margin meeting the target.
        let mut d = 1;
        while iterative::reliability(VoteMargin::new(d).unwrap(), r(rr)) < rel_target {
            d += 1;
        }
        let ir_cost = iterative::cost(VoteMargin::new(d).unwrap(), r(rr));
        assert!(
            ir_cost <= progressive::cost_series(k19(), r(rr)) + 1e-9,
            "r={rr}: IR {ir_cost} vs PR {}",
            progressive::cost_series(k19(), r(rr))
        );
        assert!(ir_cost < 19.0);
    }
}

/// Golden snapshot of the Eq. (1)–(4) outputs (traditional reliability and
/// cost, progressive reliability and cost) over the `k × r` grid the paper
/// sweeps.
///
/// The constants were generated by evaluating the current implementation
/// and are pinned to 1e-12: any refactor of the analysis layer (memoized
/// factorial tables, cached confidence tables, parallel evaluation order)
/// that drifts the numbers even in the last few bits fails this test. The
/// values themselves cross-check against the paper: Eq. (4) makes PR
/// reliability equal TR reliability, and PR cost is strictly below `k`.
#[test]
fn golden_eq1_to_eq4_fixed_k_snapshots() {
    // (k, r, R_TR [Eq. 1], C_TR [Eq. 2], R_PR [Eq. 4], C_PR [Eq. 3])
    #[allow(clippy::excessive_precision)]
    const GOLDEN: &[(usize, f64, f64, f64, f64, f64)] = &[
        (
            3,
            0.7,
            0.7839999999999995,
            3.0,
            0.7839999999999995,
            2.4200000000000004,
        ),
        (
            5,
            0.7,
            0.8369200000000019,
            5.0,
            0.8369200000000019,
            3.8945999999999987,
        ),
        (
            15,
            0.7,
            0.9499874599462199,
            15.0,
            0.9499874599462199,
            11.263466896103118,
        ),
        (
            3,
            0.8,
            0.8959999999999997,
            3.0,
            0.8959999999999997,
            2.3200000000000003,
        ),
        (
            5,
            0.8,
            0.9420800000000021,
            5.0,
            0.9420800000000021,
            3.633599999999999,
        ),
        (
            15,
            0.8,
            0.9957602502901735,
            15.0,
            0.9957602502901735,
            9.989001918545918,
        ),
        (3, 0.9, 0.9719999999999998, 3.0, 0.9719999999999998, 2.18),
        (
            5,
            0.9,
            0.9914400000000014,
            5.0,
            0.9914400000000014,
            3.3185999999999996,
        ),
        (
            15,
            0.9,
            0.9999663751120296,
            15.0,
            0.9999663751120296,
            8.88881771959208,
        ),
        (3, 0.99, 0.999702, 3.0, 0.999702, 2.0198),
        (
            5,
            0.99,
            0.9999901494000001,
            5.0,
            0.9999901494000001,
            3.03028806,
        ),
        (
            15,
            0.99,
            0.999999999999395,
            15.0,
            0.999999999999395,
            8.080808080806989,
        ),
    ];
    for &(k, rv, tr_rel, tr_cost, pr_rel, pr_cost) in GOLDEN {
        let kv = KVotes::new(k).unwrap();
        let ctx = format!("k = {k}, r = {rv}");
        assert!(
            (traditional::reliability(kv, r(rv)) - tr_rel).abs() < 1e-12,
            "Eq. (1) drifted at {ctx}: {}",
            traditional::reliability(kv, r(rv))
        );
        assert!(
            (traditional::cost(kv) - tr_cost).abs() < 1e-12,
            "Eq. (2) drifted at {ctx}"
        );
        assert!(
            (progressive::reliability(kv, r(rv)) - pr_rel).abs() < 1e-12,
            "Eq. (4) drifted at {ctx}: {}",
            progressive::reliability(kv, r(rv))
        );
        assert!(
            (progressive::cost_series(kv, r(rv)) - pr_cost).abs() < 1e-12,
            "Eq. (3) drifted at {ctx}: {}",
            progressive::cost_series(kv, r(rv))
        );
    }
}

/// Golden snapshot of the Eq. (5)–(6) outputs (iterative cost and
/// reliability) over the `d × r` grid — same contract as
/// [`golden_eq1_to_eq4_fixed_k_snapshots`].
#[test]
fn golden_eq5_eq6_iterative_snapshots() {
    // (d, r, R_IR [Eq. 6], C_IR [Eq. 5])
    #[allow(clippy::excessive_precision)]
    const GOLDEN: &[(usize, f64, f64, f64)] = &[
        (3, 0.7, 0.927027027027027, 6.405405405405406),
        (5, 0.7, 0.9857478005865102, 12.14369501466276),
        (15, 0.7, 0.9999969776350233, 37.49977332262675),
        (3, 0.8, 0.9846153846153847, 4.846153846153846),
        (5, 0.8, 0.9990243902439024, 8.317073170731707),
        (15, 0.8, 0.9999999990686774, 24.999999953433868),
        (3, 0.9, 0.9986301369863014, 3.739726027397261),
        (5, 0.9, 0.9999830651989838, 6.249788314987297),
        (15, 0.9, 0.9999999999999951, 18.749999999999815),
        (3, 0.99, 0.99999896939091, 3.0612181799443476),
        (5, 0.99, 0.9999999998948463, 5.102040815253534),
        (15, 0.99, 1.0, 15.306122448979592),
    ];
    for &(d, rv, ir_rel, ir_cost) in GOLDEN {
        let dv = VoteMargin::new(d).unwrap();
        let ctx = format!("d = {d}, r = {rv}");
        assert!(
            (iterative::reliability(dv, r(rv)) - ir_rel).abs() < 1e-12,
            "Eq. (6) drifted at {ctx}: {}",
            iterative::reliability(dv, r(rv))
        );
        assert!(
            (iterative::cost(dv, r(rv)) - ir_cost).abs() < 1e-12,
            "Eq. (5) drifted at {ctx}: {}",
            iterative::cost(dv, r(rv))
        );
    }
}

/// §4.2 (Figure 5(a) text): "iterative redundancy outperforms traditional
/// and progressive redundancy in the number of jobs AND time to execute the
/// computation" — with fixed resources, fewer jobs means a shorter
/// makespan for the whole computation, despite IR's worse per-task
/// response time (§5.2).
#[test]
fn section42_makespan_ordering() {
    use smartred::core::strategy::{Iterative, Progressive, Traditional};
    use smartred::dca::config::DcaConfig;
    use smartred::dca::sim::run;
    use std::rc::Rc;

    let cfg = DcaConfig::paper_baseline(10_000, 200, 0.3, 61);
    let k = k19();
    let tr = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
    let pr = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
    let ir = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
    assert!(
        ir.makespan_units < pr.makespan_units && pr.makespan_units < tr.makespan_units,
        "makespans: IR {} / PR {} / TR {}",
        ir.makespan_units,
        pr.makespan_units,
        tr.makespan_units
    );
    // Under task-heavy load all three keep the pool saturated (§5.2).
    for report in [&tr, &pr, &ir] {
        assert!(
            report.utilization() > 0.95,
            "utilization {}",
            report.utilization()
        );
    }
}
