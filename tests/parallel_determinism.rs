//! Property tests for the two invisibility contracts introduced with the
//! parallel sweep engine:
//!
//! 1. **Thread-count invariance** — every parallel estimator returns
//!    bit-identical reports for any worker count (1, 2, 8), for random
//!    seeds and configurations. This is the determinism contract the CI
//!    matrix job checks end-to-end on a generated figure CSV.
//! 2. **Memoization invisibility** — the memoized `ln_factorial` /
//!    `ln_binomial` tables and the cached `ConfidenceTable` agree with the
//!    direct evaluation paths bit-for-bit.

use proptest::prelude::*;

use smartred::core::analysis::confidence::{confidence, ConfidenceTable};
use smartred::core::analysis::math::{
    ln_binomial, ln_binomial_direct, ln_factorial, ln_factorial_direct,
};
use smartred::core::monte_carlo::{estimate_par, sweep, MonteCarloConfig, SweepSpec};
use smartred::core::parallel::Threads;
use smartred::core::params::{KVotes, Reliability, VoteMargin};
use smartred::core::strategy::{Iterative, Progressive, Traditional};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `estimate_par` is a pure function of `(strategy, config, seed)` —
    /// the worker count never shows in the output.
    #[test]
    fn estimate_par_is_thread_count_invariant(
        seed in any::<u64>(),
        tasks in 1usize..5_000,
        d in 1usize..5,
        rv in 0.55f64..0.95,
    ) {
        let strategy = Iterative::new(VoteMargin::new(d).unwrap());
        let config = MonteCarloConfig::new(tasks, Reliability::new(rv).unwrap());
        let reference = estimate_par(&strategy, config, seed, Threads::fixed(1));
        for workers in [2usize, 8] {
            let parallel = estimate_par(&strategy, config, seed, Threads::fixed(workers));
            prop_assert_eq!(reference, parallel, "differs at {} workers", workers);
        }
    }

    /// The multi-spec sweep is likewise invariant, including when specs
    /// have unequal task counts (the flat chunk list shuffles across
    /// workers differently at every thread count).
    #[test]
    fn sweep_is_thread_count_invariant(
        seed in any::<u64>(),
        tasks_a in 1usize..3_000,
        tasks_b in 1usize..3_000,
        k in 1usize..9,
        rv in 0.55f64..0.95,
    ) {
        let k = KVotes::new(2 * k + 1).unwrap();
        let r = Reliability::new(rv).unwrap();
        let specs = [
            SweepSpec {
                strategy: Traditional::new(k),
                config: MonteCarloConfig::new(tasks_a, r),
            },
            SweepSpec {
                strategy: Traditional::new(k),
                config: MonteCarloConfig::new(tasks_b, r),
            },
        ];
        let reference = sweep(&specs, seed, Threads::fixed(1));
        for workers in [2usize, 8] {
            let parallel = sweep(&specs, seed, Threads::fixed(workers));
            prop_assert_eq!(&reference, &parallel, "differs at {} workers", workers);
        }
    }

    /// Progressive redundancy exercises the top-up deployment path; pin
    /// its invariance separately.
    #[test]
    fn progressive_estimate_is_thread_count_invariant(
        seed in any::<u64>(),
        tasks in 1usize..4_000,
        k in 1usize..9,
        rv in 0.55f64..0.95,
    ) {
        let strategy = Progressive::new(KVotes::new(2 * k + 1).unwrap());
        let config = MonteCarloConfig::new(tasks, Reliability::new(rv).unwrap());
        let reference = estimate_par(&strategy, config, seed, Threads::fixed(1));
        let parallel = estimate_par(&strategy, config, seed, Threads::fixed(8));
        prop_assert_eq!(reference, parallel);
    }
}

proptest! {
    /// The process-wide `ln n!` table serves exactly the bits the direct
    /// Lanczos path computes, on both sides of the table boundary.
    #[test]
    fn memoized_ln_factorial_matches_direct(n in 0usize..5_000) {
        prop_assert_eq!(
            ln_factorial(n).to_bits(),
            ln_factorial_direct(n).to_bits(),
            "ln_factorial({}) drifted", n
        );
    }

    /// Same for `ln C(n, k)`, including `k > n` (both `-inf`) and the
    /// degenerate edges.
    #[test]
    fn memoized_ln_binomial_matches_direct(n in 0usize..4_500, k in 0usize..4_500) {
        prop_assert_eq!(
            ln_binomial(n, k).to_bits(),
            ln_binomial_direct(n, k).to_bits(),
            "ln_binomial({}, {}) drifted", n, k
        );
    }

    /// The cached confidence table is bitwise the uncached `q(r, a, b)`,
    /// inside and outside the cached margin range.
    #[test]
    fn confidence_table_matches_direct(
        rv in 0.51f64..0.999,
        cap in 0usize..20,
        a in 0usize..60,
        b in 0usize..60,
    ) {
        let r = Reliability::new(rv).unwrap();
        let table = ConfidenceTable::new(r, cap);
        prop_assert_eq!(
            table.q(a, b).to_bits(),
            confidence(r, a, b).to_bits(),
            "q({}, {}, {}) drifted at cap {}", rv, a, b, cap
        );
    }
}
