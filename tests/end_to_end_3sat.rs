//! End-to-end: the full pipeline from a raw 3-SAT instance to a validated
//! distributed answer, exercising every crate together.

use std::rc::Rc;

use rand::SeedableRng;
use smartred::core::params::{KVotes, VoteMargin};
use smartred::core::strategy::{Iterative, Traditional};
use smartred::sat::assignment::decompose;
use smartred::sat::gen::{random_3sat, ThreeSatConfig};
use smartred::sat::solve::{brute_force, dpll};
use smartred::volunteer::server::{run, DeadlinePolicy, VolunteerConfig};

/// The decomposition is exhaustive: the OR over true block answers equals
/// the instance's satisfiability for any instance and block count.
#[test]
fn decomposition_is_sound_and_complete() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    for trial in 0..15 {
        let f = random_3sat(
            ThreeSatConfig {
                num_vars: 10,
                clause_ratio: 4.26,
            },
            &mut rng,
        );
        let tasks = 1 + (trial * 13) % 100;
        let blocks = decompose(f.num_vars(), tasks);
        let or_of_blocks = blocks.iter().any(|b| b.contains_satisfying(&f));
        assert_eq!(or_of_blocks, brute_force(&f).is_some());
        assert_eq!(or_of_blocks, dpll(&f).is_some());
    }
}

/// With high-margin iterative redundancy the distributed computation
/// answers correctly across many instances, despite 30%+ faulty jobs.
#[test]
fn distributed_answer_matches_dpll() {
    let mut correct = 0;
    let runs = 8;
    for seed in 0..runs {
        let mut cfg = VolunteerConfig::paper_deployment(12, 500 + seed);
        cfg.hosts = 80;
        let report = run(Rc::new(Iterative::new(VoteMargin::new(8).unwrap())), &cfg).unwrap();
        assert!(
            report.reported_satisfiable.is_some(),
            "all workunits complete"
        );
        if report.computation_correct() {
            correct += 1;
        }
    }
    // d = 8 at r ≈ 0.65 gives ≈ 0.993 per-task reliability; over 140 tasks
    // P(all correct) ≈ 0.38 per run — but a single wrong block verdict only
    // flips the computation when it crosses the OR, so end-to-end accuracy
    // is much higher. Requiring 6/8 is conservative.
    assert!(correct >= 6, "only {correct}/{runs} computations correct");
}

/// The same deployment, same seed, different strategies: iterative wins on
/// jobs while both remain at comparable reliability.
#[test]
fn strategies_compared_on_identical_instances() {
    let mut cfg = VolunteerConfig::paper_deployment(12, 77);
    cfg.hosts = 100;
    let tr = run(Rc::new(Traditional::new(KVotes::new(19).unwrap())), &cfg).unwrap();
    let ir = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
    // Identical instance and truth (same seed drives generation).
    assert_eq!(tr.instance_satisfiable, ir.instance_satisfiable);
    assert_eq!(tr.total_jobs, 19 * 140);
    // At the platform's effective r ≈ 0.65, C_IR(d=4) ≈ 11.3, a ~1.7x win.
    assert!((ir.total_jobs as f64) < tr.total_jobs as f64 / 1.5);
}

/// Reissue deadlines preserve correctness at extra cost.
#[test]
fn reissue_vs_count_as_wrong() {
    let mut base = VolunteerConfig::paper_deployment(12, 31);
    base.hosts = 80;
    base.profile.unresponsive_rate = 0.15; // hang-heavy platform

    let mut count = base.clone();
    count.deadline_policy = DeadlinePolicy::CountAsWrong;
    let mut reissue = base.clone();
    reissue.deadline_policy = DeadlinePolicy::Reissue;

    let d = VoteMargin::new(4).unwrap();
    let count_report = run(Rc::new(Iterative::new(d)), &count).unwrap();
    let reissue_report = run(Rc::new(Iterative::new(d)), &reissue).unwrap();

    // Counting hangs as wrong votes drags effective r down, so the same
    // margin buys less reliability than re-issuing.
    assert!(reissue_report.reliability() >= count_report.reliability() - 0.02);
    assert!(count_report.timeouts > 0 && reissue_report.timeouts > 0);
}
