//! Integration tests for the §5.3 relaxations, spanning the n-ary
//! Monte-Carlo model, the heterogeneous-reliability analysis, and the
//! result-equivalence machinery.

use rand::SeedableRng;
use smartred::core::analysis::heterogeneous::{
    mean_reliability, progressive_cost, traditional_reliability,
};
use smartred::core::analysis::{progressive, traditional};
use smartred::core::monte_carlo::{estimate, estimate_nary, MonteCarloConfig, NaryConfig};
use smartred::core::params::{KVotes, Reliability, VoteMargin};
use smartred::core::strategy::{Iterative, Traditional};
use smartred::volunteer::equivalence::{run_classified, EpsilonGrid, ResultClassifier};

fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

/// The binary colluding model is the worst case: reliability under any
/// scatter of wrong values is at least the binary reliability, across
/// strategies and margins.
#[test]
fn binary_is_worst_case_across_strategies() {
    let r = Reliability::new(0.6).unwrap();
    for d in [2usize, 3, 4] {
        let strategy = Iterative::new(VoteMargin::new(d).unwrap());
        let binary = estimate(&strategy, MonteCarloConfig::new(30_000, r), &mut rng(1));
        for wrong_values in [2usize, 4, 16] {
            let nary = estimate_nary(
                &strategy,
                NaryConfig::new(30_000, r, wrong_values, 0.0),
                &mut rng(1),
            );
            assert!(
                nary.reliability() >= binary.reliability() - 0.01,
                "d={d}, m={wrong_values}: nary {} < binary {}",
                nary.reliability(),
                binary.reliability()
            );
        }
    }
}

/// The heterogeneous Eq. (2)/(3) generalizations agree with the n-ary and
/// binary engines on their common (homogeneous) special case.
#[test]
fn heterogeneous_formulas_agree_with_simulation() {
    let k = KVotes::new(9).unwrap();
    let seq = vec![0.7; 9];
    let analytic = traditional_reliability(k, &seq).unwrap();
    let sim = estimate(
        &Traditional::new(k),
        MonteCarloConfig::new(60_000, Reliability::new(0.7).unwrap()),
        &mut rng(2),
    );
    assert!((analytic - sim.reliability()).abs() < 0.01);

    let mean = mean_reliability(&seq).unwrap();
    assert!((mean.get() - 0.7).abs() < 1e-12);
    let cost_het = progressive_cost(k, &seq).unwrap();
    let cost_hom = progressive::cost_series(k, mean);
    assert!((cost_het - cost_hom).abs() < 1e-9);
}

/// A two-class pool's exact analysis brackets the homogeneous mean:
/// front-loaded good nodes beat the mean, front-loaded bad nodes lose to
/// it, and the mean-order cost sits between.
#[test]
fn sequence_order_brackets_mean_cost() {
    let k = KVotes::new(19).unwrap();
    let mut good_first = vec![0.9; 10];
    good_first.extend(vec![0.5; 9]);
    let mut bad_first = vec![0.5; 9];
    bad_first.extend(vec![0.9; 10]);
    let mean = traditional::reliability(
        k,
        Reliability::new(0.9 * 10.0 / 19.0 + 0.5 * 9.0 / 19.0).unwrap(),
    );

    let cheap = progressive_cost(k, &good_first).unwrap();
    let dear = progressive_cost(k, &bad_first).unwrap();
    assert!(cheap < dear);
    // Both sequences have the same Eq. (2) reliability — the Poisson
    // binomial is order-invariant — even though costs differ.
    let rel_good = traditional_reliability(k, &good_first).unwrap();
    let rel_bad = traditional_reliability(k, &bad_first).unwrap();
    assert!((rel_good - rel_bad).abs() < 1e-12);
    let _ = mean; // reliability comparison against the mean is not exact for
                  // fixed (non-random) sequences; order-invariance is.
}

/// Fuzzy numeric results: an epsilon classifier lets iterative redundancy
/// validate a floating-point workload end to end.
#[test]
fn numeric_workload_with_equivalence_classes() {
    use rand::Rng;
    let grid = EpsilonGrid::new(1e-6).unwrap();
    let strategy = Iterative::new(VoteMargin::new(4).unwrap());
    let truth = 4.0_f64; // "the result of 2²" from §5.3
    let mut r = rng(4);
    let outcome = run_classified(&strategy, &grid, |n| {
        (0..n)
            .map(|_| {
                let base = if r.gen_bool(0.7) { truth } else { -4.0 };
                base + r.gen_range(-1e-9..1e-9)
            })
            .collect()
    });
    assert_eq!(grid.classify(&outcome.raw), grid.classify(&truth));
    assert!(outcome.jobs >= 4);
}
