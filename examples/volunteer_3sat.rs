//! A full volunteer-computing deployment: a 3-SAT instance decomposed into
//! 140 workunits, validated by iterative redundancy on a pool of 200
//! PlanetLab-profile hosts — the paper's §4.1 BOINC experiment end to end.
//!
//! Run with: `cargo run --release --example volunteer_3sat`

use std::rc::Rc;

use smartred::core::analysis::inference;
use smartred::core::params::VoteMargin;
use smartred::core::strategy::Iterative;
use smartred::volunteer::server::{run, VolunteerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 18-variable instance keeps this example fast; pass 22 for the
    // paper-size run.
    let mut config = VolunteerConfig::paper_deployment(18, 42);
    config.hosts = 200;

    let d = VoteMargin::new(4)?;
    println!(
        "deploying 3-SAT ({} variables, {} workunits) on {} hosts",
        config.num_vars, config.tasks, config.hosts
    );
    println!(
        "host profile: 30% seeded faults + platform faults/hangs → expected r ≈ {:.3}\n",
        config.profile.effective_reliability()
    );

    let report = run(Rc::new(Iterative::new(d)), &config)?;

    println!(
        "deployment finished in {:.1} simulated time units",
        report.completion_units
    );
    println!("  workunits      : {}", report.verdicts.len());
    println!("  total jobs     : {}", report.total_jobs);
    println!(
        "  cost factor    : {:.2} jobs/workunit",
        report.cost_factor()
    );
    println!("  task reliability: {:.4}", report.reliability());
    println!("  deadline misses: {}", report.timeouts);
    println!(
        "  instance satisfiable (DPLL ground truth): {}",
        report.instance_satisfiable
    );
    println!(
        "  computation reported                    : {:?}",
        report.reported_satisfiable
    );
    println!(
        "  end-to-end answer correct               : {}",
        report.computation_correct()
    );
    if !report.computation_correct() {
        println!(
            "  (note: the computation ORs 140 block verdicts, so a single\n\
             \u{0020}  false block voted 'satisfiable' flips the final answer —\n\
             \u{0020}  per-task reliability {:.3} must be very close to 1 for\n\
             \u{0020}  aggregate correctness; raise d to buy more nines)",
            report.reliability()
        );
    }

    // The paper's §4.2 validation step: invert Eq. (5) to back out the
    // effective node reliability from the observed cost.
    let inferred = inference::reliability_from_iterative_cost(d, report.cost_factor())?;
    println!(
        "\ninferred node reliability from cost: r ≈ {:.3} (paper's band: 0.64 < r < 0.67)",
        inferred.get()
    );
    Ok(())
}
