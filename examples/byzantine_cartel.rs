//! Byzantine adversaries: a colluding always-wrong cartel in the node
//! pool, plus the §5.1 attacks on reliability-estimating validators
//! (trust farming and identity churn) that iterative redundancy shrugs
//! off.
//!
//! Run with: `cargo run --release --example byzantine_cartel`

use std::rc::Rc;

use smartred::core::params::{Confidence, VoteMargin};
use smartred::core::reputation::{ReputationConfig, ReputationStore};
use smartred::core::strategy::{AdaptiveReplication, CredibilityVoting, Iterative};
use smartred::dca::config::{DcaConfig, ReliabilityProfile};
use smartred::dca::sim::run as run_dca;
use smartred::volunteer::campaign::{run_campaign, AttackModel, CampaignConfig, Validator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: a 30% always-wrong colluding cartel in the DCA simulation.
    // The pool's mean reliability is 0.7, same as the paper's baseline, but
    // failures are concentrated in dedicated saboteurs.
    let mut cfg = DcaConfig::paper_baseline(50_000, 1_000, 0.3, 7);
    cfg.pool.profile = ReliabilityProfile::TwoClass {
        honest_wrong: 0.0,
        byzantine_wrong: 1.0,
        byzantine_fraction: 0.3,
    };
    let d = VoteMargin::new(4)?;
    let cartel = run_dca(Rc::new(Iterative::new(d)), &cfg)?;
    let uniform = run_dca(
        Rc::new(Iterative::new(d)),
        &DcaConfig::paper_baseline(50_000, 1_000, 0.3, 7),
    )?;
    println!("iterative redundancy (d = 4) with mean pool reliability 0.7:");
    println!(
        "  uniform faults : cost {:.2}, reliability {:.4}",
        uniform.cost_factor(),
        uniform.reliability()
    );
    println!(
        "  30% cartel     : cost {:.2}, reliability {:.4}",
        cartel.cost_factor(),
        cartel.reliability()
    );
    println!("  (per §2.2, only which nodes fail matters — not who they are)\n");

    // Part 2: the §5.1 attacks on node-reputation schemes.
    let base = CampaignConfig {
        tasks: 3_000,
        nodes: 200,
        malicious_fraction: 0.25,
        honest_reliability: 0.95,
        attack: AttackModel::EarnTrustThenLie { streak: 5 },
        seed: 11,
    };
    println!("trust-earning attack (malicious nodes behave until trusted, then lie):");
    let adaptive = run_campaign(
        Validator::Adaptive(AdaptiveReplication::new(
            Iterative::new(d),
            ReputationStore::new(ReputationConfig::default()),
            5,
        )),
        base,
    );
    let oblivious = run_campaign(Validator::Oblivious(Iterative::new(d)), base);
    println!(
        "  adaptive replication: reliability {:.4} at cost {:.2}  ← fooled",
        adaptive.reliability(),
        adaptive.cost_factor()
    );
    println!(
        "  iterative (node-blind): reliability {:.4} at cost {:.2}",
        oblivious.reliability(),
        oblivious.cost_factor()
    );

    let churn_cfg = CampaignConfig {
        attack: AttackModel::IdentityChurn,
        ..base
    };
    let credibility = run_campaign(
        Validator::Credibility {
            voting: CredibilityVoting::new(
                ReputationStore::new(ReputationConfig::default()),
                Confidence::new(0.97)?,
            ),
            spot_check_rate: 0.25,
        },
        churn_cfg,
    );
    println!("\nidentity-churn attack (blacklisted nodes rejoin with fresh ids):");
    println!(
        "  credibility voting: reliability {:.4} at cost {:.2} \
         ({} spot-check jobs spent, {} rebirths)",
        credibility.reliability(),
        credibility.cost_factor(),
        credibility.spot_check_jobs,
        credibility.rebirths
    );
    let oblivious_churn = run_campaign(Validator::Oblivious(Iterative::new(d)), churn_cfg);
    println!(
        "  iterative (node-blind): reliability {:.4} at cost {:.2}, zero overhead",
        oblivious_churn.reliability(),
        oblivious_churn.cost_factor()
    );
    Ok(())
}
