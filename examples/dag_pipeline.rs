//! A three-stage map → shuffle → reduce pipeline over 3-SAT blocks, under
//! a seeded poisoning adversary that targets the wide map cut — the
//! scenario where redundancy *placement* beats redundancy *amount*.
//!
//! A wrong intermediate that gets *accepted* does not fail the pipeline;
//! it silently poisons every downstream task that consumes it, and no
//! amount of downstream voting can recover (those votes are cast on
//! garbage input). So a vote spent on the attacked stage is worth more
//! than one spent after it. This example runs the same pipeline under a
//! per-stage mix (IR-8 on the attacked map, IR-2 downstream) and under
//! uniform strategies of comparable cost, and compares their
//! poison-escape rates — the fraction of final (sink) outputs that are
//! wrong.
//!
//! Payloads also pay network transfer time (latency + bytes/bandwidth)
//! on a shared link model, so the makespan column reflects data movement,
//! not just service.
//!
//! Run with: `cargo run --release --example dag_pipeline`

use smartred::core::parallel::Threads;
use smartred::dag::{
    monte_carlo, run_journaled, DagSimConfig, DagSpec, PoisonAdversary, StageStrategy,
};
use smartred::desim::journal::EventKind;

/// Map width; the attacked cut.
const WIDTH: u32 = 16;
/// Reduce width (the pipeline's sink stage).
const REDUCE: u32 = 2;
/// Wrong-vote rate on the targeted map stage.
const TARGETED: f64 = 0.3;
/// Background wrong-vote rate everywhere else.
const BACKGROUND: f64 = 0.02;
/// Monte-Carlo instances per policy.
const RUNS: usize = 200;

fn spec(map: &str, combine: &str, reduce: &str) -> DagSpec {
    DagSpec::map_shuffle_reduce(
        WIDTH,
        REDUCE,
        StageStrategy::parse(map).expect("valid strategy label"),
        StageStrategy::parse(combine).expect("valid strategy label"),
        StageStrategy::parse(reduce).expect("valid strategy label"),
    )
    .expect("valid map-shuffle-reduce spec")
}

fn main() {
    let mut cfg = DagSimConfig {
        seed: 20110620,
        adversary: PoisonAdversary::targeting(0, TARGETED, BACKGROUND),
        ..DagSimConfig::default()
    };
    // Give hedge twins room to win against U[0.5, 1.5] service draws.
    cfg.hedge_after_units = 1.0;

    println!(
        "DAG pipeline: map {WIDTH} -> combine {WIDTH} -> reduce {REDUCE}, \
         adversary {TARGETED} on map / {BACKGROUND} background, {RUNS} runs\n"
    );

    let policies: &[(&str, &str, &str)] = &[
        ("ir8", "ir2", "ir2"),    // the mix: spend where the adversary is
        ("hir8", "ir2", "ir2"),   // same mix, map stage hedged on stragglers
        ("ir7", "ir7", "ir7"),    // uniform IR spending MORE than the mix
        ("tr11", "tr11", "tr11"), // uniform TR spending MORE than the mix
    ];

    println!("policy              escape       cost     makespan   poisoned");
    for &(map, combine, reduce) in policies {
        let s = spec(map, combine, reduce);
        let stats = monte_carlo(&s, &cfg, RUNS, Threads::Auto);
        println!(
            "{:<16} {:>9.4}  {:>9.1}  {:>11.2}  {:>9.2}",
            format!("{map}/{combine}/{reduce}"),
            stats.escape_rate,
            stats.mean_cost,
            stats.mean_makespan,
            stats.mean_poisoned,
        );
    }

    // One journaled instance of the mix: show the pipeline's event anatomy.
    let s = spec("ir8", "ir2", "ir2");
    let (report, journal) = run_journaled(&s, &cfg);
    println!("\none journaled run of ir8/ir2/ir2 (seed {}):", cfg.seed);
    println!(
        "  {} vote jobs, {} transfers moving {} KiB, makespan {:.2} units",
        report.jobs,
        report.transfers,
        report.bytes_moved / 1024,
        report.makespan_units,
    );
    println!(
        "  journal: {} events, {} transfers started, {} stage verdicts, \
         {} poison propagations, digest {}",
        journal.len(),
        journal.count(EventKind::TransferStarted),
        journal.count(EventKind::StageDecided),
        journal.count(EventKind::PoisonPropagated),
        journal.digest_hex(),
    );
    println!(
        "\nthe mix concentrates votes on the attacked stage: downstream \
         redundancy cannot un-poison an accepted wrong intermediate"
    );
}
