//! Quickstart: the three redundancy techniques, their analytic predictions,
//! and a Monte-Carlo check — the paper's §3 in one binary.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use smartred::core::analysis;
use smartred::core::monte_carlo::{estimate, MonteCarloConfig};
use smartred::core::params::{KVotes, Reliability, VoteMargin};
use smartred::core::strategy::{Iterative, Progressive, Traditional};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: a node pool where each job is correct
    // with probability 0.7, a 19-vote traditional baseline, and the
    // equal-reliability iterative margin d = 4.
    let r = Reliability::new(0.7)?;
    let k = KVotes::new(19)?;
    let d = VoteMargin::new(4)?;

    println!("node reliability r = {r}\n");
    println!("analytic predictions (Eqs. 1-6):");
    println!(
        "  traditional k=19: cost {:>6.3}  reliability {:.4}",
        analysis::traditional::cost(k),
        analysis::traditional::reliability(k, r)
    );
    println!(
        "  progressive k=19: cost {:>6.3}  reliability {:.4}",
        analysis::progressive::cost_series(k, r),
        analysis::progressive::reliability(k, r)
    );
    println!(
        "  iterative   d=4 : cost {:>6.3}  reliability {:.4}",
        analysis::iterative::cost(d, r),
        analysis::iterative::reliability(d, r)
    );

    // Verify by simulation under the Byzantine worst case: every failure
    // reports the same wrong value.
    println!("\nMonte-Carlo verification (100,000 tasks each):");
    let config = MonteCarloConfig::new(100_000, r);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2011);
    for (name, report) in [
        (
            "traditional k=19",
            estimate(&Traditional::new(k), config, &mut rng),
        ),
        (
            "progressive k=19",
            estimate(&Progressive::new(k), config, &mut rng),
        ),
        (
            "iterative   d=4 ",
            estimate(&Iterative::new(d), config, &mut rng),
        ),
    ] {
        println!(
            "  {name}: cost {:>6.3}  reliability {:.4}  (max jobs on one task: {})",
            report.cost_factor(),
            report.reliability(),
            report.max_jobs_single_task
        );
    }

    println!(
        "\niterative redundancy delivers the same reliability as 19-vote \
         traditional redundancy at ~{:.1}x lower cost — without knowing r.",
        analysis::traditional::cost(k) / analysis::iterative::cost(d, r)
    );
    Ok(())
}
