//! Non-binary results (§5.3): why the paper's binary model is the worst
//! case. Compares a task that asks "does 2² = 4?" (binary — colluders all
//! answer "no") against one that asks "what is 2²?" (numeric — failures may
//! scatter across many wrong answers), across collusion levels.
//!
//! Run with: `cargo run --release -p smartred --example plurality_voting`

use rand::SeedableRng;
use smartred::core::monte_carlo::{estimate_nary, NaryConfig};
use smartred::core::params::{Reliability, VoteMargin};
use smartred::core::strategy::Iterative;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A barely-reliable pool: 55% of jobs answer correctly.
    let r = Reliability::new(0.55)?;
    let d = VoteMargin::new(4)?;
    let strategy = Iterative::new(d);
    let tasks = 50_000;

    println!("iterative redundancy (d = 4), r = 0.55, {tasks} tasks\n");
    println!("collusion  wrong-values  reliability  cost factor");
    for &(collusion, wrong_values) in &[
        (1.00, 1usize), // the paper's binary worst case: one colluding lie
        (0.75, 8),
        (0.50, 8),
        (0.25, 8),
        (0.00, 8), // fully scattered: every failure invents its own answer
    ] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
        let report = estimate_nary(
            &strategy,
            NaryConfig::new(tasks, r, wrong_values, collusion),
            &mut rng,
        );
        println!(
            "   {collusion:.2}        {wrong_values:>2}          {:.4}       {:>6.2}",
            report.reliability(),
            report.cost_factor()
        );
    }

    println!(
        "\nthe binary analysis (Eqs. 2/4/6) is a guaranteed lower bound on\n\
         reliability — real workloads with scattered failures do better,\n\
         which is why the paper can analyze the worst case and still promise\n\
         its targets (§5.3)."
    );
    Ok(())
}
