//! Chaos run: a deterministic fault plan — crashes, a hang window, a
//! straggler, a correlated collusion burst, and a pool blackout — thrown
//! at the DCA with the resilience stack (retry-with-backoff, node
//! quarantine, graceful degradation) switched on and off.
//!
//! Run with: `cargo run --release --example chaos`

use std::rc::Rc;

use smartred::core::params::VoteMargin;
use smartred::core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred::core::strategy::Iterative;
use smartred::dca::config::{ChurnConfig, DcaConfig};
use smartred::dca::faults::FaultPlan;
use smartred::dca::sim::run;
use smartred::dca::DcaReport;

fn base_config(seed: u64) -> DcaConfig {
    let mut cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, seed);
    cfg.job_cap = Some(15);
    cfg.churn = Some(ChurnConfig {
        leave_rate: 0.5,
        join_rate: 0.5,
    });
    cfg.faults = Some(
        FaultPlan::new()
            .crash_at(1.0, 3)
            .crash_at(2.0, 47)
            .crash_at(2.0, 48)
            .hang_window(0.5, 10.0, 8)
            .straggler(1.0, 15.0, 21, 12.0)
            .collusion_burst(4.0, 5.0, 0.4)
            .blackout(10.0, 1.0),
    );
    cfg
}

fn print_report(label: &str, r: &DcaReport) {
    println!(
        "  {label:11}: reliability {:.4}, cost {:.2}, makespan {:.1}",
        r.reliability(),
        r.cost_factor(),
        r.makespan_units
    );
    println!(
        "               timeouts {}, retries {}, quarantines {}, blacklisted {}",
        r.timeouts, r.retries, r.quarantines, r.blacklisted
    );
    println!(
        "               completed {}, capped {}, stranded {}, degraded {} (mean confidence {:.3})",
        r.tasks_completed,
        r.tasks_capped,
        r.tasks_stranded,
        r.tasks_degraded,
        r.mean_degraded_confidence()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = VoteMargin::new(4)?;
    let strategy = || Rc::new(Iterative::new(d));

    println!("fault plan: 3 crashes, 10u hang window, 12x straggler,");
    println!("            40% collusion burst for 5u, 1u total blackout, churn 0.5/0.5\n");

    // The same storm, bare vs. with the resilience stack.
    let bare = run(strategy(), &base_config(42))?;
    let mut hardened_cfg = base_config(42);
    hardened_cfg.retry = Some(RetryPolicy::default());
    // A lenient strike limit: in a pool where *every* node is wrong 30% of
    // the time, a harsh policy would eventually quarantine everyone. The
    // discipline should single out persistent offenders (the hung node,
    // the straggler, the cartel) without strangling the honest majority.
    hardened_cfg.quarantine = Some(QuarantinePolicy {
        strike_limit: 8,
        quarantine_units: 10.0,
        blacklist_after: 20,
    });
    hardened_cfg.degraded_accept = true;
    let hardened = run(strategy(), &hardened_cfg)?;

    println!("iterative redundancy (d = 4), 20,000 tasks on 500 nodes:");
    print_report("bare", &bare);
    print_report("hardened", &hardened);

    // Determinism: the whole storm reproduces bit for bit.
    let again = run(strategy(), &hardened_cfg)?;
    println!(
        "\nsame seed + same fault plan reproduces bit for bit: {}",
        again == hardened
    );
    Ok(())
}
