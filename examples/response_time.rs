//! The §5.2 trade-off: iterative redundancy saves jobs but pays in
//! response time, because it deploys in sequential waves. This example
//! reproduces Figure 6's comparison with both the analytic wave model and
//! the discrete-event simulation.
//!
//! Run with: `cargo run --release --example response_time`

use std::rc::Rc;

use smartred::core::analysis::response::{expected_max_uniform, DEFAULT_JOB_DURATION};
use smartred::core::analysis::{iterative, progressive};
use smartred::core::params::{KVotes, Reliability, VoteMargin};
use smartred::core::strategy::{Iterative, Progressive, Traditional};
use smartred::dca::config::DcaConfig;
use smartred::dca::sim::run;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = Reliability::new(0.7)?;
    let k = KVotes::new(19)?;
    let d = VoteMargin::new(4)?;
    let (lo, hi) = DEFAULT_JOB_DURATION;

    println!("analytic expected response times (time units, jobs ~ U[0.5, 1.5]):");
    let tr_resp = expected_max_uniform(k.get(), lo, hi);
    let pr = progressive::profile(k, r, DEFAULT_JOB_DURATION);
    let ir = iterative::profile(d, r, DEFAULT_JOB_DURATION, 1e-12);
    println!("  traditional k=19: {tr_resp:.3}  (single wave of 19)");
    println!(
        "  progressive k=19: {:.3}  ({:.2} waves on average)",
        pr.expected_response, pr.expected_waves
    );
    println!(
        "  iterative   d=4 : {:.3}  ({:.2} waves on average)",
        ir.expected_response, ir.expected_waves
    );
    println!(
        "  → PR {:.2}x and IR {:.2}x slower than TR (paper: 1.4-2.5x and 1.4-2.8x)\n",
        pr.expected_response / tr_resp,
        ir.expected_response / tr_resp
    );

    println!("discrete-event simulation (30,000 tasks, 2,000 nodes):");
    let cfg = DcaConfig::paper_baseline(30_000, 2_000, 0.3, 99);
    for (name, report) in [
        ("traditional k=19", run(Rc::new(Traditional::new(k)), &cfg)?),
        ("progressive k=19", run(Rc::new(Progressive::new(k)), &cfg)?),
        ("iterative   d=4 ", run(Rc::new(Iterative::new(d)), &cfg)?),
    ] {
        println!(
            "  {name}: cost {:>6.2}, mean response {:.3}, max response {:.3}",
            report.cost_factor(),
            report.mean_response(),
            report.response_time.max()
        );
    }

    println!(
        "\nthe trade is favorable for DCAs: tasks vastly outnumber nodes, so \
         total throughput depends on jobs, not per-task latency (§5.2)."
    );
    Ok(())
}
