//! Sweeps node reliability and prints how much cheaper progressive and
//! iterative redundancy are than 19-vote traditional redundancy at equal
//! system reliability — the data behind Figure 5(c).
//!
//! Run with: `cargo run --release --example reliability_sweep`

use smartred::core::analysis::improvement::{improvement_sweep, MarginMatch};
use smartred::core::params::KVotes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = KVotes::new(19)?;
    let sweep = improvement_sweep(k, 0.55, 0.99, 23, MarginMatch::Nearest)?;

    println!("improvement over traditional redundancy (k = 19):\n");
    println!("     r   d*    C_TR    C_PR    C_IR   PR gain  IR gain");
    for imp in &sweep {
        println!(
            "  {:.3}  {:>2}  {:>6.2}  {:>6.2}  {:>6.2}  {:>6.2}x  {:>6.2}x",
            imp.r.get(),
            imp.d.get(),
            imp.tr_cost,
            imp.pr_cost,
            imp.ir_cost,
            imp.pr_ratio(),
            imp.ir_ratio()
        );
    }

    let peak = sweep
        .iter()
        .max_by(|a, b| a.ir_ratio().total_cmp(&b.ir_ratio()))
        .expect("non-empty sweep");
    println!(
        "\niterative redundancy peaks at {:.2}x around r = {:.2} \
         (the paper reports ≈2.8x near r ≈ 0.86)",
        peak.ir_ratio(),
        peak.r.get()
    );
    Ok(())
}
