//! Adversarial campaigns against reliability-estimating validators.
//!
//! §5.1 of the paper argues that schemes which estimate node reliability —
//! BOINC's adaptive replication, Sarmenta's credibility-based fault
//! tolerance — pay for that knowledge twice: in spot-check jobs, and in
//! vulnerability to adversaries that *earn* trust before defecting or that
//! shed a bad reputation by changing identity. Iterative redundancy needs
//! no estimates and is immune to both attacks.
//!
//! This module makes the comparison executable: a synchronous campaign
//! pits a validator against a node pool containing honest nodes and
//! malicious nodes following a configurable attack policy.

use rand::Rng;
use smartred_core::node::{NodeAwareStrategy, NodeId, Vote};
use smartred_core::params::Confidence;
use smartred_core::strategy::{
    AdaptiveReplication, CredibilityVoting, Decision, Iterative, RedundancyStrategy, WeightedVoting,
};
use smartred_core::tally::VoteTally;
use smartred_desim::rng::{seeded_rng, SimRng};

/// Attack policy followed by malicious nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackModel {
    /// Always report the colluding wrong value.
    AlwaysLie,
    /// Behave honestly until `streak` consecutive results have been
    /// validated as agreeing, then lie — BOINC adaptive replication's
    /// nightmare, since the lie arrives exactly when replication is turned
    /// off.
    EarnTrustThenLie {
        /// Consecutive validated agreements before defecting.
        streak: u32,
    },
    /// Always lie, and on blacklisting rejoin with a fresh identity —
    /// "malicious nodes that have developed a bad reputation can change
    /// their identity" (§3.3).
    IdentityChurn,
}

/// The validator under test.
#[derive(Debug, Clone)]
pub enum Validator {
    /// BOINC-style adaptive replication around an iterative fallback.
    Adaptive(AdaptiveReplication<Iterative>),
    /// Sarmenta-style credibility voting with spot-checking.
    Credibility {
        /// The credibility validator.
        voting: CredibilityVoting,
        /// Probability of spot-checking a node after each reported job.
        spot_check_rate: f64,
    },
    /// Node-oblivious iterative redundancy (the paper's proposal).
    Oblivious(Iterative),
    /// Weighted voting with an *oracle* for each node's true static
    /// reliability — the §5.3 "specific reliabilities of the relevant
    /// nodes" upper bound. The oracle is seeded from the generated pool at
    /// campaign start; nodes it has never seen (identity churn!) fall back
    /// to the prior. Time-varying behavior (trust-earning attackers) is
    /// invisible to a static oracle by construction.
    WeightedOracle {
        /// Target confidence for accepting a result.
        target: Confidence,
    },
}

impl Validator {
    fn name(&self) -> &'static str {
        match self {
            Validator::Adaptive(_) => "adaptive-replication",
            Validator::Credibility { .. } => "credibility-voting",
            Validator::Oblivious(_) => "iterative",
            Validator::WeightedOracle { .. } => "weighted-oracle",
        }
    }
}

/// The resolved validator actually driven by the campaign loop (the oracle
/// variant needs the generated pool before it can be built).
enum ActiveValidator {
    Adaptive(AdaptiveReplication<Iterative>),
    Credibility {
        voting: CredibilityVoting,
        spot_check_rate: f64,
    },
    Oblivious(Iterative),
    Weighted(WeightedVoting),
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Number of tasks to validate.
    pub tasks: usize,
    /// Pool size.
    pub nodes: usize,
    /// Fraction of malicious nodes.
    pub malicious_fraction: f64,
    /// Probability an honest node's job is correct (accidental faults).
    pub honest_reliability: f64,
    /// Attack policy of the malicious nodes.
    pub attack: AttackModel,
    /// Root seed.
    pub seed: u64,
}

/// Campaign outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignReport {
    /// Validator name.
    pub validator: &'static str,
    /// Tasks whose accepted verdict was the correct value.
    pub tasks_correct: usize,
    /// Tasks run.
    pub tasks: usize,
    /// Regular (voting) jobs dispatched.
    pub vote_jobs: u64,
    /// Additional spot-check jobs dispatched (credibility only).
    pub spot_check_jobs: u64,
    /// Nodes blacklisted during the campaign.
    pub blacklist_events: u64,
    /// Identity rebirths performed by churning attackers.
    pub rebirths: u64,
}

impl CampaignReport {
    /// Fraction of tasks validated correctly.
    pub fn reliability(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.tasks_correct as f64 / self.tasks as f64
    }

    /// Mean total jobs (votes + spot-checks) per task.
    pub fn cost_factor(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        (self.vote_jobs + self.spot_check_jobs) as f64 / self.tasks as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct PoolNode {
    id: NodeId,
    malicious: bool,
    /// Attacker-side mirror of its consecutive validated agreements
    /// (EarnTrustThenLie tracks when to defect).
    streak: u32,
}

impl PoolNode {
    /// Whether the node currently intends to lie.
    fn lying(&self, attack: AttackModel) -> bool {
        if !self.malicious {
            return false;
        }
        match attack {
            AttackModel::AlwaysLie | AttackModel::IdentityChurn => true,
            AttackModel::EarnTrustThenLie { streak } => self.streak >= streak,
        }
    }
}

/// Runs one campaign of `config.tasks` tasks through `validator`.
///
/// The correct value of every task is `true`; honest nodes report it with
/// probability `honest_reliability`, malicious nodes follow the attack
/// policy (their lies all collude on `false`, the binary worst case).
///
/// # Examples
///
/// ```
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::Iterative;
/// use smartred_volunteer::campaign::{
///     run_campaign, AttackModel, CampaignConfig, Validator,
/// };
///
/// let cfg = CampaignConfig {
///     tasks: 200,
///     nodes: 100,
///     malicious_fraction: 0.2,
///     honest_reliability: 0.95,
///     attack: AttackModel::AlwaysLie,
///     seed: 1,
/// };
/// let report = run_campaign(Validator::Oblivious(Iterative::new(VoteMargin::new(4)?)), cfg);
/// assert!(report.reliability() > 0.95);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn run_campaign(validator: Validator, config: CampaignConfig) -> CampaignReport {
    let mut rng = seeded_rng(config.seed);
    let mut next_id = config.nodes as u64;
    let mut pool: Vec<PoolNode> = (0..config.nodes)
        .map(|i| PoolNode {
            id: NodeId::new(i as u64),
            malicious: rng.gen_bool(config.malicious_fraction),
            streak: 0,
        })
        .collect();

    let mut report = CampaignReport {
        validator: validator.name(),
        tasks_correct: 0,
        tasks: config.tasks,
        vote_jobs: 0,
        spot_check_jobs: 0,
        blacklist_events: 0,
        rebirths: 0,
    };

    let mut validator = match validator {
        Validator::Adaptive(ar) => ActiveValidator::Adaptive(ar),
        Validator::Credibility {
            voting,
            spot_check_rate,
        } => ActiveValidator::Credibility {
            voting,
            spot_check_rate,
        },
        Validator::Oblivious(ir) => ActiveValidator::Oblivious(ir),
        Validator::WeightedOracle { target } => {
            // Seed the oracle with every node's true static reliability
            // (clamped inside (0, 1) for finite weights); new identities
            // appearing later fall back to the prior mean.
            let mut map = std::collections::HashMap::new();
            for node in &pool {
                let r = if node.malicious {
                    0.02
                } else {
                    config.honest_reliability.clamp(0.02, 0.98)
                };
                map.insert(node.id, r);
            }
            let prior =
                (config.honest_reliability * (1.0 - config.malicious_fraction)).clamp(0.02, 0.98);
            ActiveValidator::Weighted(
                WeightedVoting::new(map, prior, target).expect("clamped reliabilities"),
            )
        }
    };

    for _ in 0..config.tasks {
        let mut votes: Vec<Vote<bool>> = Vec::new();
        let mut used: Vec<usize> = Vec::new();
        let accepted = loop {
            let decision = decide(&mut validator, &votes);
            match decision {
                Decision::Accept(v) => break v,
                Decision::Deploy(n) => {
                    for _ in 0..n.get() {
                        let node_idx = pick_node(&pool, &used, &mut rng);
                        used.push(node_idx);
                        let node = pool[node_idx];
                        let value = if node.lying(config.attack) {
                            false
                        } else if node.malicious {
                            true // honest phase of a trust-earning attacker
                        } else {
                            rng.gen_bool(config.honest_reliability)
                        };
                        votes.push(Vote::new(node.id, value));
                        report.vote_jobs += 1;
                        spot_check(
                            &mut validator,
                            &mut pool,
                            node_idx,
                            config,
                            &mut rng,
                            &mut next_id,
                            &mut report,
                        );
                    }
                }
            }
        };
        if accepted {
            report.tasks_correct += 1;
        }
        observe(&mut validator, &votes, accepted);
        // Attackers mirror the validation feedback to time their defection.
        for vote in &votes {
            if let Some(node) = pool.iter_mut().find(|n| n.id == vote.node) {
                if node.malicious {
                    if vote.value == accepted {
                        node.streak += 1;
                    } else {
                        node.streak = 0;
                    }
                }
            }
        }
    }
    report
}

fn decide(validator: &mut ActiveValidator, votes: &[Vote<bool>]) -> Decision<bool> {
    match validator {
        ActiveValidator::Adaptive(ar) => ar.decide_votes(votes),
        ActiveValidator::Credibility { voting, .. } => voting.decide_votes(votes),
        ActiveValidator::Oblivious(ir) => {
            let tally: VoteTally<bool> = votes.iter().map(|v| v.value).collect();
            ir.decide(&tally)
        }
        ActiveValidator::Weighted(wv) => wv.decide_votes(votes),
    }
}

fn observe(validator: &mut ActiveValidator, votes: &[Vote<bool>], accepted: bool) {
    match validator {
        ActiveValidator::Adaptive(ar) => ar.observe_outcome(votes, &accepted),
        ActiveValidator::Credibility { voting, .. } => voting.observe_outcome(votes, &accepted),
        ActiveValidator::Oblivious(_) | ActiveValidator::Weighted(_) => {}
    }
}

fn pick_node<R: Rng + ?Sized>(pool: &[PoolNode], used: &[usize], rng: &mut R) -> usize {
    loop {
        let candidate = rng.gen_range(0..pool.len());
        if !used.contains(&candidate) || used.len() >= pool.len() {
            return candidate;
        }
    }
}

/// After a vote, the credibility validator may spot-check the node: a job
/// whose answer the server already knows (§5.1 — "spot-checking requires
/// distributing jobs to which the result is already known").
fn spot_check(
    validator: &mut ActiveValidator,
    pool: &mut [PoolNode],
    node_idx: usize,
    config: CampaignConfig,
    rng: &mut SimRng,
    next_id: &mut u64,
    report: &mut CampaignReport,
) {
    let ActiveValidator::Credibility {
        voting,
        spot_check_rate,
    } = validator
    else {
        return;
    };
    if !rng.gen_bool(*spot_check_rate) {
        return;
    }
    report.spot_check_jobs += 1;
    let node = pool[node_idx];
    // A node in its lying phase fails the check; honest(-behaving) nodes
    // pass (honest nodes may still slip with their accidental fault rate).
    let passes = if node.lying(config.attack) {
        false
    } else if node.malicious {
        true
    } else {
        rng.gen_bool(config.honest_reliability)
    };
    let was_blacklisted = voting.store().is_blacklisted(node.id);
    voting.store_mut().record_spot_check(node.id, passes);
    if !was_blacklisted && voting.store().is_blacklisted(node.id) {
        report.blacklist_events += 1;
        if node.malicious && config.attack == AttackModel::IdentityChurn {
            // The attacker rejoins with a fresh identity: the store has no
            // record of the new id, so its credibility resets to the prior.
            pool[node_idx].id = NodeId::new(*next_id);
            pool[node_idx].streak = 0;
            *next_id += 1;
            report.rebirths += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_core::params::{Confidence, KVotes, VoteMargin};
    use smartred_core::reputation::{ReputationConfig, ReputationStore};
    use smartred_core::strategy::Traditional;

    fn base_config(attack: AttackModel, seed: u64) -> CampaignConfig {
        CampaignConfig {
            tasks: 400,
            nodes: 120,
            malicious_fraction: 0.25,
            honest_reliability: 0.95,
            attack,
            seed,
        }
    }

    fn oblivious(d: usize) -> Validator {
        Validator::Oblivious(Iterative::new(VoteMargin::new(d).unwrap()))
    }

    fn adaptive(trust_after: u32) -> Validator {
        Validator::Adaptive(AdaptiveReplication::new(
            Iterative::new(VoteMargin::new(4).unwrap()),
            ReputationStore::new(ReputationConfig::default()),
            trust_after,
        ))
    }

    fn credibility(threshold: f64, spot_check_rate: f64) -> Validator {
        Validator::Credibility {
            voting: CredibilityVoting::new(
                ReputationStore::new(ReputationConfig::default()),
                Confidence::new(threshold).unwrap(),
            ),
            spot_check_rate,
        }
    }

    #[test]
    fn oblivious_ir_resists_every_attack() {
        for attack in [
            AttackModel::AlwaysLie,
            AttackModel::EarnTrustThenLie { streak: 5 },
            AttackModel::IdentityChurn,
        ] {
            let report = run_campaign(oblivious(5), base_config(attack, 1));
            assert!(
                report.reliability() > 0.97,
                "{attack:?}: IR reliability {}",
                report.reliability()
            );
            assert_eq!(report.spot_check_jobs, 0);
        }
    }

    #[test]
    fn adaptive_replication_falls_to_trust_earning() {
        // Once attackers earn their streak, their lone lies are accepted.
        let trusting = run_campaign(
            adaptive(5),
            base_config(AttackModel::EarnTrustThenLie { streak: 5 }, 2),
        );
        let ir = run_campaign(
            oblivious(4),
            base_config(AttackModel::EarnTrustThenLie { streak: 5 }, 2),
        );
        assert!(
            trusting.reliability() < ir.reliability() - 0.05,
            "adaptive {} vs IR {}",
            trusting.reliability(),
            ir.reliability()
        );
        // The payoff of the attack: adaptive is cheap but wrong.
        assert!(trusting.cost_factor() < ir.cost_factor());
    }

    #[test]
    fn credibility_pays_spot_check_overhead() {
        let report = run_campaign(
            credibility(0.97, 0.3),
            base_config(AttackModel::AlwaysLie, 3),
        );
        assert!(report.spot_check_jobs > 0);
        // Blunt liars are caught and blacklisted.
        assert!(report.blacklist_events > 0);
        assert!(report.reliability() > 0.9);
    }

    #[test]
    fn identity_churn_defeats_blacklisting() {
        let churn = run_campaign(
            credibility(0.97, 0.3),
            base_config(AttackModel::IdentityChurn, 4),
        );
        assert!(churn.rebirths > 0, "attackers should rebirth");
        let static_liars = run_campaign(
            credibility(0.97, 0.3),
            base_config(AttackModel::AlwaysLie, 4),
        );
        // Churning attackers keep their prior credibility forever, so the
        // validator keeps spending votes/spot-checks on them.
        assert!(churn.cost_factor() > static_liars.cost_factor());
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(oblivious(4), base_config(AttackModel::AlwaysLie, 9));
        let b = run_campaign(oblivious(4), base_config(AttackModel::AlwaysLie, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_with_honest_pool_gets_cheap() {
        // No attackers: trust forms and replication is mostly skipped.
        let mut cfg = base_config(AttackModel::AlwaysLie, 5);
        cfg.malicious_fraction = 0.0;
        cfg.tasks = 2_000;
        let adaptive = run_campaign(adaptive(3), cfg);
        let ir = run_campaign(oblivious(4), cfg);
        assert!(adaptive.cost_factor() < ir.cost_factor());
        assert!(adaptive.reliability() > 0.9);
    }

    #[test]
    fn traditional_inner_strategy_also_works() {
        let validator = Validator::Adaptive(AdaptiveReplication::new(
            Iterative::new(VoteMargin::new(3).unwrap()),
            ReputationStore::new(ReputationConfig::default()),
            u32::MAX, // never trust → always vote
        ));
        let report = run_campaign(validator, base_config(AttackModel::AlwaysLie, 6));
        assert!(report.reliability() > 0.9);
        let _ = Traditional::new(KVotes::new(3).unwrap()); // keep import honest
    }

    #[test]
    fn oracle_matches_oblivious_on_static_liars() {
        // Against always-liars, perfect information buys only a modest cost
        // edge (it discounts known liars' votes), not a reliability edge —
        // node-blind IR already hits its target.
        let cfg = base_config(AttackModel::AlwaysLie, 21);
        let oracle = run_campaign(
            Validator::WeightedOracle {
                target: Confidence::new(0.99).unwrap(),
            },
            cfg,
        );
        let blind = run_campaign(oblivious(5), cfg);
        // 400 tasks against *colluding* liars gives a bursty failure
        // distribution (observed range over seeds: 0.96..=1.0), so the
        // reliability floor is deliberately loose; the load-bearing claim
        // is the cost ordering below.
        assert!(oracle.reliability() > 0.95, "{}", oracle.reliability());
        assert!(blind.reliability() > 0.95, "{}", blind.reliability());
        assert!(oracle.cost_factor() < blind.cost_factor());
    }

    #[test]
    fn misspecified_oracle_loses_to_node_blind_ir_under_trust_earning() {
        // A striking finding: against time-varying attackers, *wrong*
        // reliability information is worse than none. The static oracle
        // models attackers as near-always-lying, so during their honest
        // phase it interprets their *correct* votes as evidence for the
        // wrong answer — Bayesian updating with a mis-specified likelihood.
        // Node-blind iterative redundancy, which assumes nothing about any
        // node, is unaffected. This sharpens the paper's §5.1 argument:
        // reliability estimates are not just costly, they are fragile.
        let cfg = base_config(AttackModel::EarnTrustThenLie { streak: 5 }, 22);
        let oracle = run_campaign(
            Validator::WeightedOracle {
                target: Confidence::new(0.99).unwrap(),
            },
            cfg,
        );
        let blind = run_campaign(oblivious(5), cfg);
        assert!(
            oracle.reliability() < blind.reliability() - 0.03,
            "oracle {} should lose to blind {}",
            oracle.reliability(),
            blind.reliability()
        );
    }

    #[test]
    fn identity_churn_does_not_apply_to_oracle_without_blacklist() {
        // The oracle never blacklists, so churn attackers never rebirth —
        // but their *initial* identities are known, so the oracle still
        // wins. The vulnerability the paper describes requires the
        // estimator to learn online, which the oracle sidesteps by fiat.
        let cfg = base_config(AttackModel::IdentityChurn, 23);
        let oracle = run_campaign(
            Validator::WeightedOracle {
                target: Confidence::new(0.99).unwrap(),
            },
            cfg,
        );
        assert_eq!(oracle.rebirths, 0);
        assert!(oracle.reliability() > 0.97);
    }
}
