//! # smartred-volunteer — a BOINC-like volunteer-computing system
//!
//! The paper's second evaluation platform is a BOINC deployment on ~200
//! PlanetLab nodes solving 22-variable 3-SAT instances decomposed into 140
//! tasks, with seeded 30% faults plus naturally occurring platform failures
//! (§4.1). Neither BOINC-on-PlanetLab nor the authors' custom task server
//! is available, so this crate rebuilds the whole stack:
//!
//! * [`host`] — volunteer hosts with PlanetLab-style profiles (seeded
//!   faults, platform faults, hangs, heterogeneous speeds) calibrated to
//!   the paper's back-derived effective reliability band 0.64 < r < 0.67;
//! * [`workunit`] — BOINC-style workunits over 3-SAT assignment blocks;
//! * [`server`] — the project server: scheduler, deadlines, and a
//!   validator parameterized by any redundancy strategy, run on the
//!   deterministic discrete-event engine ([`server::run`] produces the
//!   Figure 5(b) data);
//! * [`campaign`] — adversarial campaigns (trust-earning, identity churn)
//!   against reliability-estimating validators, the §5.1 comparison.
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use smartred_core::params::VoteMargin;
//! use smartred_core::strategy::Iterative;
//! use smartred_volunteer::server::{run, VolunteerConfig};
//!
//! // A small instance for demonstration; the paper-size run uses
//! // `VolunteerConfig::paper_deployment(22, seed)`.
//! let cfg = VolunteerConfig::paper_deployment(12, 7);
//! let report = run(Rc::new(Iterative::new(VoteMargin::new(4)?)), &cfg)?;
//! println!("cost factor {:.2}, reliability {:.3}",
//!     report.cost_factor(), report.reliability());
//! # Ok::<(), smartred_core::error::ParamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod equivalence;
pub mod host;
pub mod server;
pub mod workunit;

pub use campaign::{run_campaign, AttackModel, CampaignConfig, CampaignReport, Validator};
pub use host::PlanetLabProfile;
pub use server::{
    run, run_journaled, DeadlinePolicy, DeploymentReport, SchedulerPolicy, VolunteerConfig,
};
pub use workunit::{Workunit, WorkunitId, WorkunitVerdict};
