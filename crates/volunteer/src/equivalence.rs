//! Result-equivalence handling for non-exact results (§5.3).
//!
//! "Two non-identical results may actually represent the same information
//! (e.g., evaluations of √2 may return slight differences in the least
//! significant bits). In such cases, the comparison of jobs' results is
//! problem-specific … BOINC uses homogeneous redundancy, an approach that
//! sorts nodes into equivalence classes that report identical answers."
//!
//! Two mechanisms are provided, mirroring BOINC's options:
//!
//! * [`ResultClassifier`] / [`EpsilonGrid`] — *fuzzy validation*: map raw
//!   numeric results onto canonical equivalence classes before tallying, so
//!   LSB jitter does not split the vote;
//! * [`PlatformClass`] — *homogeneous redundancy*: tag hosts with a
//!   platform class and only compare results produced by the same class
//!   (hosts of one class are bitwise-reproducible among themselves).

use smartred_core::strategy::{Decision, RedundancyStrategy};
use smartred_core::tally::VoteTally;

/// Maps raw job outputs onto canonical, exactly comparable classes.
///
/// Implementations must be deterministic and *stable*: two raw results that
/// represent the same information must map to the same class.
pub trait ResultClassifier<Raw> {
    /// The canonical class type used for voting.
    type Class: Ord + Clone;

    /// Classifies one raw result.
    fn classify(&self, raw: &Raw) -> Self::Class;
}

/// Snap-to-grid classifier for floating-point results: values within the
/// same `epsilon`-wide cell vote together.
///
/// Note the inherent boundary caveat of grid snapping (also true of
/// BOINC's fuzzy validators): two results straddling a cell boundary may
/// still split. Choose `epsilon` comfortably above the platform jitter.
///
/// # Examples
///
/// ```
/// use smartred_volunteer::equivalence::{EpsilonGrid, ResultClassifier};
///
/// let grid = EpsilonGrid::new(1e-6)?;
/// let a = grid.classify(&1.414_213_5_f64);
/// let b = grid.classify(&1.414_213_9_f64); // sub-epsilon jitter
/// assert_eq!(a, b);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonGrid {
    epsilon: f64,
}

impl EpsilonGrid {
    /// Creates a grid with the given cell width.
    ///
    /// # Errors
    ///
    /// Returns an error if `epsilon` is not finite and positive.
    pub fn new(epsilon: f64) -> Result<Self, String> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(format!(
                "epsilon must be finite and positive, got {epsilon}"
            ));
        }
        Ok(Self { epsilon })
    }

    /// The cell width.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl ResultClassifier<f64> for EpsilonGrid {
    type Class = i64;

    fn classify(&self, raw: &f64) -> i64 {
        (raw / self.epsilon).round() as i64
    }
}

/// Runs one task whose jobs return raw values, tallying them through a
/// classifier. Returns the raw representative of the winning class (the
/// first raw result observed in it) plus the execution report.
///
/// This is the server-side shape of BOINC's fuzzy validation: the strategy
/// sees canonical classes; users get back a real result.
///
/// # Panics
///
/// Panics if `oracle` returns a wrong-sized wave (driver bug).
pub fn run_classified<Raw, C, S, F>(
    strategy: &S,
    classifier: &C,
    mut oracle: F,
) -> ClassifiedOutcome<Raw>
where
    C: ResultClassifier<Raw>,
    S: RedundancyStrategy<C::Class>,
    F: FnMut(usize) -> Vec<Raw>,
{
    let mut tally: VoteTally<C::Class> = VoteTally::new();
    let mut representatives: Vec<(C::Class, Raw)> = Vec::new();
    let mut jobs = 0usize;
    let mut waves = 0usize;
    loop {
        match strategy.decide(&tally) {
            Decision::Accept(class) => {
                let raw = representatives
                    .into_iter()
                    .find(|(c, _)| *c == class)
                    .map(|(_, raw)| raw)
                    .expect("accepted class was voted for");
                return ClassifiedOutcome { raw, jobs, waves };
            }
            Decision::Deploy(n) => {
                let n = n.get();
                waves += 1;
                jobs += n;
                let results = oracle(n);
                assert_eq!(results.len(), n, "oracle must return exactly {n} results");
                for raw in results {
                    let class = classifier.classify(&raw);
                    if !representatives.iter().any(|(c, _)| *c == class) {
                        representatives.push((class.clone(), raw));
                    }
                    tally.record(class);
                }
            }
        }
    }
}

/// Outcome of a classified task run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedOutcome<Raw> {
    /// A raw result from the winning equivalence class.
    pub raw: Raw,
    /// Jobs deployed.
    pub jobs: usize,
    /// Waves used.
    pub waves: usize,
}

/// A host platform class for homogeneous redundancy: hosts in the same
/// class produce bitwise-identical answers for the same job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlatformClass(pub u8);

impl PlatformClass {
    /// Returns whether results from `self` and `other` are directly
    /// comparable under homogeneous redundancy.
    pub fn comparable(self, other: PlatformClass) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use smartred_core::params::VoteMargin;
    use smartred_core::strategy::Iterative;

    /// A numeric workload with platform jitter: the true answer plus noise
    /// far below epsilon, occasionally replaced by a colluding wrong value.
    fn jittery_oracle(
        truth: f64,
        wrong: f64,
        reliability: f64,
        rng: &mut ChaCha8Rng,
    ) -> impl FnMut(usize) -> Vec<f64> + '_ {
        move |n| {
            (0..n)
                .map(|_| {
                    let base = if rng.gen_bool(reliability) {
                        truth
                    } else {
                        wrong
                    };
                    base + rng.gen_range(-1e-9..1e-9)
                })
                .collect()
        }
    }

    #[test]
    fn epsilon_grid_groups_jitter() {
        let grid = EpsilonGrid::new(1e-6).unwrap();
        assert_eq!(grid.classify(&2.0), grid.classify(&(2.0 + 4e-7)));
        assert_ne!(grid.classify(&2.0), grid.classify(&2.1));
        assert_eq!(grid.epsilon(), 1e-6);
    }

    #[test]
    fn epsilon_grid_rejects_bad_widths() {
        assert!(EpsilonGrid::new(0.0).is_err());
        assert!(EpsilonGrid::new(-1.0).is_err());
        assert!(EpsilonGrid::new(f64::NAN).is_err());
    }

    #[test]
    fn classified_run_survives_jitter() {
        // Without classification, every jittered result is a distinct value
        // and iterative redundancy would need a d-margin of *identical*
        // answers it can never get. With the grid, the vote converges.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let grid = EpsilonGrid::new(1e-6).unwrap();
        let strategy = Iterative::new(VoteMargin::new(4).unwrap());
        let truth = std::f64::consts::SQRT_2;
        let outcome = run_classified(&strategy, &grid, jittery_oracle(truth, -1.0, 0.9, &mut rng));
        assert!((outcome.raw - truth).abs() < 1e-6);
        assert!(outcome.jobs >= 4);
    }

    #[test]
    fn classified_run_can_still_be_fooled_by_colluders() {
        // Classification is orthogonal to the threat model: a colluding
        // majority still wins. Reliability 0.1 → wrong verdict.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let grid = EpsilonGrid::new(1e-6).unwrap();
        let strategy = Iterative::new(VoteMargin::new(3).unwrap());
        let outcome = run_classified(&strategy, &grid, jittery_oracle(2.0, -1.0, 0.05, &mut rng));
        assert!((outcome.raw - (-1.0)).abs() < 1e-6);
    }

    #[test]
    fn exact_comparison_wastes_jobs_on_jitter() {
        // The motivating failure: with a much finer grid than the jitter,
        // agreeing results no longer land in one class, so reaching a
        // 2-margin takes far more jobs than with a proper epsilon.
        let strategy = Iterative::new(VoteMargin::new(2).unwrap());
        let coarse = EpsilonGrid::new(1e-6).unwrap();
        let fine = EpsilonGrid::new(1e-12).unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome_coarse =
            run_classified(&strategy, &coarse, jittery_oracle(2.0, -1.0, 1.0, &mut rng));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome_fine =
            run_classified(&strategy, &fine, jittery_oracle(2.0, -1.0, 1.0, &mut rng));
        assert_eq!(outcome_coarse.jobs, 2, "coarse grid converges immediately");
        assert!(
            outcome_fine.jobs > outcome_coarse.jobs,
            "sub-jitter grid should scatter votes (got {} jobs)",
            outcome_fine.jobs
        );
    }

    #[test]
    fn platform_classes_compare_within_only() {
        let a = PlatformClass(0);
        let b = PlatformClass(1);
        assert!(a.comparable(a));
        assert!(!a.comparable(b));
    }
}
