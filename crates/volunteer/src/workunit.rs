//! BOINC-style workunits: the server-side state of one task.

use smartred_sat::assignment::AssignmentBlock;

/// Identifier of a workunit (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkunitId(pub usize);

impl std::fmt::Display for WorkunitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wu-{}", self.0)
    }
}

/// One task of the computation: "does this block of assignments contain a
/// satisfying one?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workunit {
    /// Identifier.
    pub id: WorkunitId,
    /// The assignment block this workunit covers.
    pub block: AssignmentBlock,
    /// The true answer, computed once server-side to score verdicts (the
    /// deployed system does not use it for validation).
    pub truth: bool,
}

/// Final state of a validated workunit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkunitVerdict {
    /// Identifier.
    pub id: WorkunitId,
    /// The value the validator accepted, if the workunit completed.
    pub accepted: Option<bool>,
    /// Whether the accepted value matches the truth.
    pub correct: bool,
    /// Jobs (BOINC "results") dispatched for this workunit.
    pub jobs: usize,
    /// Deployment waves used.
    pub waves: usize,
    /// Response time in simulated time units.
    pub response_units: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_id() {
        assert_eq!(WorkunitId(12).to_string(), "wu-12");
    }

    #[test]
    fn workunit_is_value_type() {
        let wu = Workunit {
            id: WorkunitId(0),
            block: AssignmentBlock { start: 0, len: 8 },
            truth: true,
        };
        let copy = wu;
        assert_eq!(copy, wu);
    }
}
