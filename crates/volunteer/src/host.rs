//! Volunteer hosts with PlanetLab-style behavior profiles.
//!
//! The paper's deployment ran BOINC on ~200 PlanetLab nodes "of varying
//! speed and resources" and observed three failure classes (§4.1):
//! seeded faults (wrong result 30% of the time), nodes becoming
//! unresponsive, and "all other unanticipated failures". The effective
//! reliability backed out of the measurements was 0.64 < r < 0.67 (§4.2).
//! [`PlanetLabProfile::default`] reproduces that band: 30% seeded faults
//! plus a few percent of platform faults and hangs.

use rand::Rng;
use smartred_core::node::NodeId;

/// Behavior profile shared by the hosts of a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanetLabProfile {
    /// Probability a job returns the wrong answer due to the *seeded*
    /// fault injection (the paper seeds 0.30).
    pub seeded_fault_rate: f64,
    /// Probability of an *unanticipated* platform fault flipping the
    /// answer (PlanetLab flakiness beyond the seeded faults).
    pub platform_fault_rate: f64,
    /// Probability a job hangs until the server deadline.
    pub unresponsive_rate: f64,
    /// Host speed multipliers drawn uniformly from this window (PlanetLab
    /// machines vary widely; >1 is slower).
    pub speed_window: (f64, f64),
}

impl Default for PlanetLabProfile {
    /// The paper's deployment conditions: seeded 30% faults plus ~4%
    /// platform faults and ~2% hangs, landing effective reliability in the
    /// reported 0.64–0.67 band.
    fn default() -> Self {
        Self {
            seeded_fault_rate: 0.30,
            platform_fault_rate: 0.04,
            unresponsive_rate: 0.02,
            speed_window: (0.6, 1.8),
        }
    }
}

impl PlanetLabProfile {
    /// Expected probability that a job returns the correct answer in time
    /// (hangs count as failures, per the threat model).
    pub fn effective_reliability(&self) -> f64 {
        let wrong = self.seeded_fault_rate + self.platform_fault_rate
            - self.seeded_fault_rate * self.platform_fault_rate;
        (1.0 - self.unresponsive_rate) * (1.0 - wrong)
    }

    /// Validates probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("seeded_fault_rate", self.seeded_fault_rate),
            ("platform_fault_rate", self.platform_fault_rate),
            ("unresponsive_rate", self.unresponsive_rate),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(format!("{name} = {v} outside [0, 1]"));
            }
        }
        let (lo, hi) = self.speed_window;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
            return Err(format!("speed_window ({lo}, {hi}) invalid"));
        }
        Ok(())
    }
}

/// One volunteer host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Host {
    /// Stable identity.
    pub id: NodeId,
    /// Duration multiplier for jobs on this host.
    pub speed: f64,
    /// Whether the host is currently executing a job.
    pub busy: bool,
}

impl Host {
    /// Draws a host from the profile.
    pub fn sample<R: Rng + ?Sized>(id: u64, profile: &PlanetLabProfile, rng: &mut R) -> Self {
        let (lo, hi) = profile.speed_window;
        let speed = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        Self {
            id: NodeId::new(id),
            speed,
            busy: false,
        }
    }
}

/// What a host does with one job, drawn at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostBehavior {
    /// Reports the true block answer.
    Honest,
    /// Reports the negated answer (seeded or platform fault; all failures
    /// collude on the single wrong value per the binary worst case).
    Faulty,
    /// Never reports; the server deadline resolves the job.
    Hung,
}

/// Draws one job's behavior from the profile.
pub fn draw_behavior<R: Rng + ?Sized>(profile: &PlanetLabProfile, rng: &mut R) -> HostBehavior {
    let u: f64 = rng.gen();
    if u < profile.unresponsive_rate {
        return HostBehavior::Hung;
    }
    let wrong = profile.seeded_fault_rate + profile.platform_fault_rate
        - profile.seeded_fault_rate * profile.platform_fault_rate;
    if rng.gen_bool(wrong) {
        HostBehavior::Faulty
    } else {
        HostBehavior::Honest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_profile_lands_in_paper_band() {
        let r = PlanetLabProfile::default().effective_reliability();
        assert!(
            (0.64..0.67).contains(&r),
            "effective reliability {r} outside the paper's 0.64–0.67"
        );
    }

    #[test]
    fn seeded_only_profile_gives_07() {
        let p = PlanetLabProfile {
            seeded_fault_rate: 0.3,
            platform_fault_rate: 0.0,
            unresponsive_rate: 0.0,
            speed_window: (1.0, 1.0),
        };
        assert!((p.effective_reliability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let p = PlanetLabProfile {
            seeded_fault_rate: 1.5,
            ..PlanetLabProfile::default()
        };
        assert!(p.validate().is_err());
        let p = PlanetLabProfile {
            speed_window: (0.0, 1.0),
            ..PlanetLabProfile::default()
        };
        assert!(p.validate().is_err());
        assert!(PlanetLabProfile::default().validate().is_ok());
    }

    #[test]
    fn behavior_frequencies_match_profile() {
        let p = PlanetLabProfile::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 50_000;
        let mut honest = 0;
        let mut hung = 0;
        for _ in 0..n {
            match draw_behavior(&p, &mut rng) {
                HostBehavior::Honest => honest += 1,
                HostBehavior::Hung => hung += 1,
                HostBehavior::Faulty => {}
            }
        }
        let honest_frac = honest as f64 / n as f64;
        assert!((honest_frac - p.effective_reliability()).abs() < 0.01);
        let hung_frac = hung as f64 / n as f64;
        assert!((hung_frac - p.unresponsive_rate).abs() < 0.005);
    }

    #[test]
    fn sampled_hosts_have_varied_speeds() {
        let p = PlanetLabProfile::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hosts: Vec<Host> = (0..50).map(|i| Host::sample(i, &p, &mut rng)).collect();
        let min = hosts.iter().map(|h| h.speed).fold(f64::MAX, f64::min);
        let max = hosts.iter().map(|h| h.speed).fold(f64::MIN, f64::max);
        assert!(min >= 0.6 && max <= 1.8 && max - min > 0.3);
        assert_eq!(hosts[7].id.get(), 7);
    }
}
