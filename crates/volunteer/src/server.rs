//! The BOINC-like project server and deployment runner.
//!
//! Mirrors the paper's §4.1 setup: a custom task server decomposes a
//! 3-SAT instance into workunits, a scheduler hands jobs to volunteer
//! hosts, and a validator — parameterized by one of the redundancy
//! strategies — decides when each workunit's result is trustworthy. The
//! whole deployment runs on the deterministic discrete-event engine, with
//! host speeds, seeded faults, platform faults, and hangs drawn from a
//! [`crate::host::PlanetLabProfile`].

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use rand::Rng;
use smartred_core::audit::{AuditPolicy, Cartel};
use smartred_core::error::ParamError;
use smartred_core::execution::{Assignment, TaskExecution, WaveStep};
use smartred_core::hedge::{HedgePolicy, HedgeTrigger};
use smartred_core::resilience::{DisciplineAction, NodeDiscipline, QuarantinePolicy, RetryPolicy};
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::engine::Simulator;
use smartred_desim::journal::{DepartureReason, Journal, RunEvent};
use smartred_desim::rng::{backoff_duration, seeded_rng, SimRng};
use smartred_desim::time::{SimDuration, SimTime};
use smartred_sat::assignment::decompose;
use smartred_sat::gen::{random_3sat, ThreeSatConfig};
use smartred_sat::solve::dpll;
use smartred_stats::Summary;

use crate::host::{draw_behavior, Host, HostBehavior, PlanetLabProfile};
use crate::workunit::{Workunit, WorkunitId, WorkunitVerdict};

/// What the server does when a job misses its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlinePolicy {
    /// Count the silence as the colluding wrong value — the paper's threat
    /// model ("a node that does not report a result in a timely fashion
    /// \[has\] failed", §2.2).
    #[default]
    CountAsWrong,
    /// Abandon and re-deploy, BOINC's production behavior.
    Reissue,
}

/// How the scheduler picks among idle hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Uniformly random idle host — the paper's model (assumption 1 relies
    /// on this).
    #[default]
    RandomIdle,
    /// The fastest idle host. Reduces deadline misses on heterogeneous
    /// pools, at the price of biasing which hosts produce results (and
    /// thus weakening the random-assignment argument for uniform job
    /// reliability).
    FastestIdle,
}

/// Configuration of one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct VolunteerConfig {
    /// Number of volunteer hosts (the paper used a 200-node PlanetLab
    /// slice).
    pub hosts: usize,
    /// 3-SAT variables (the paper: 22).
    pub num_vars: u32,
    /// Workunits the instance is decomposed into (the paper: 140).
    pub tasks: usize,
    /// Clause-to-variable ratio of the generated instance.
    pub clause_ratio: f64,
    /// Host behavior profile.
    pub profile: PlanetLabProfile,
    /// Base job compute time window in time units (scaled by host speed).
    pub duration_window: (f64, f64),
    /// Server-side deadline for a job, in time units.
    pub deadline_units: f64,
    /// Deadline handling.
    pub deadline_policy: DeadlinePolicy,
    /// Idle-host selection policy.
    pub scheduler: SchedulerPolicy,
    /// Optional per-workunit job cap.
    pub job_cap: Option<usize>,
    /// Optional retry-with-backoff policy for deadline misses: the miss is
    /// hidden from the vote and the job re-deployed after a jittered
    /// exponential backoff, up to the policy's budget.
    pub retry: Option<RetryPolicy>,
    /// Optional host discipline: hosts that repeatedly miss deadlines are
    /// quarantined (pulled from the scheduler), and repeat offenders are
    /// blacklisted permanently.
    pub quarantine: Option<QuarantinePolicy>,
    /// Server-side audit layer: accepted verdicts are spot-checked against
    /// the cached ground truth, liars earn weighted strikes, tainted
    /// verdicts are voided and re-run, and quarantine-released hosts serve
    /// probation. Disabled by default.
    pub audit: AuditPolicy,
    /// Optional colluding cartel: hosts `0..size` return the negated truth
    /// on the coalition's seeded per-workunit lie schedule, overriding
    /// their drawn behavior.
    pub cartel: Option<Cartel>,
    /// Optional straggler hedging: a job that outlives the online
    /// latency-quantile estimate gets a duplicate twin on another host, and
    /// the first copy to answer supplies the replica's vote.
    pub hedge: Option<HedgePolicy>,
    /// Host-assignment policy for job dispatch. `Random` reproduces the
    /// historical scheduler (and composes with [`SchedulerPolicy`]); the
    /// deterministic alternatives bypass the random pick entirely.
    pub assignment: Assignment,
    /// Root seed.
    pub seed: u64,
}

impl VolunteerConfig {
    /// The paper's deployment shape, scaled by `num_vars` (use 22 for the
    /// full-size instance; tests use smaller instances for speed).
    pub fn paper_deployment(num_vars: u32, seed: u64) -> Self {
        Self {
            hosts: 200,
            num_vars,
            tasks: 140,
            clause_ratio: 4.26,
            profile: PlanetLabProfile::default(),
            duration_window: (0.5, 1.5),
            deadline_units: 4.0,
            deadline_policy: DeadlinePolicy::CountAsWrong,
            scheduler: SchedulerPolicy::default(),
            job_cap: None,
            retry: None,
            quarantine: None,
            audit: AuditPolicy::disabled(),
            cartel: None,
            hedge: None,
            assignment: Assignment::Random,
            seed,
        }
    }

    fn validate(&self) -> Result<(), ParamError> {
        let fail = |name: &'static str, value: f64, expected: &'static str| {
            Err(ParamError::OutOfRange {
                name,
                value,
                expected,
            })
        };
        if self.hosts == 0 {
            return fail("hosts", 0.0, "at least 1");
        }
        if self.tasks == 0 {
            return fail("tasks", 0.0, "at least 1");
        }
        if !(3..=63).contains(&self.num_vars) {
            return fail("num_vars", self.num_vars as f64, "3..=63");
        }
        if (self.tasks as u64) > (1u64 << self.num_vars) {
            return fail("tasks", self.tasks as f64, "at most 2^num_vars");
        }
        if self.profile.validate().is_err() {
            return fail("profile", f64::NAN, "valid PlanetLabProfile");
        }
        let (lo, hi) = self.duration_window;
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
            return fail("duration_window", lo, "0 <= lo <= hi");
        }
        if !(self.deadline_units.is_finite() && self.deadline_units > 0.0) {
            return fail("deadline_units", self.deadline_units, "positive");
        }
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        if let Some(quarantine) = &self.quarantine {
            quarantine.validate()?;
        }
        if self.audit.validate().is_err() {
            return fail(
                "audit",
                self.audit.spot_rate,
                "rates in [0, 1], escalated_rate >= spot_rate, strike_weight >= 1",
            );
        }
        if let Some(cartel) = &self.cartel {
            if cartel.size as usize > self.hosts {
                return fail("cartel.size", cartel.size as f64, "at most the host count");
            }
            if !(0.0..=1.0).contains(&cartel.lie_rate) || !cartel.lie_rate.is_finite() {
                return fail("cartel.lie_rate", cartel.lie_rate, "[0, 1]");
            }
        }
        if let Some(hedge) = &self.hedge {
            hedge.validate()?;
        }
        Ok(())
    }
}

/// Outcome of one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Per-workunit verdicts in workunit order.
    pub verdicts: Vec<WorkunitVerdict>,
    /// Simulated time to complete the whole computation.
    pub completion_units: f64,
    /// Total jobs ("results" in BOINC terms) dispatched.
    pub total_jobs: u64,
    /// Jobs per completed workunit.
    pub jobs_per_task: Summary,
    /// Response time per completed workunit.
    pub response_time: Summary,
    /// Jobs that missed the deadline.
    pub timeouts: u64,
    /// Deadline misses retried with backoff instead of being charged to
    /// the vote.
    pub retries: u64,
    /// Quarantines imposed on hosts that repeatedly missed deadlines.
    pub quarantines: u64,
    /// Hosts permanently removed from the scheduler after repeated
    /// quarantines.
    pub blacklisted: u64,
    /// Local recomputations performed by the audit layer (each costs one
    /// job-equivalent of server compute).
    pub audits: u64,
    /// Results an audit caught contradicting the recomputation.
    pub audit_failures: u64,
    /// Tainted verdicts voided before acceptance (the workunit re-ran).
    pub verdicts_voided: u64,
    /// Open workunits re-tallied because a caught liar had touched them.
    pub wus_retallied: u64,
    /// Hedge twins launched for straggling jobs (quantile-triggered
    /// duplicates; not counted in `total_jobs` or the wave accounting).
    pub hedges_launched: u64,
    /// Hedge twins that beat their straggling origin and supplied the vote.
    pub hedges_won: u64,
    /// Hedge twins whose work was discarded (origin answered first, or the
    /// twin itself lapsed).
    pub hedges_wasted: u64,
    /// Whether the generated instance is satisfiable (ground truth via
    /// DPLL).
    pub instance_satisfiable: bool,
    /// The computation's reported answer: OR over accepted block verdicts
    /// (`None` if any workunit failed to complete).
    pub reported_satisfiable: Option<bool>,
}

impl DeploymentReport {
    /// Fraction of completed workunits whose accepted value was correct.
    pub fn reliability(&self) -> f64 {
        let completed = self
            .verdicts
            .iter()
            .filter(|v| v.accepted.is_some())
            .count();
        if completed == 0 {
            return 0.0;
        }
        let correct = self.verdicts.iter().filter(|v| v.correct).count();
        correct as f64 / completed as f64
    }

    /// Mean jobs per workunit.
    pub fn cost_factor(&self) -> f64 {
        self.jobs_per_task.mean()
    }

    /// Whether the end-to-end computation reported the right SAT answer.
    pub fn computation_correct(&self) -> bool {
        self.reported_satisfiable == Some(self.instance_satisfiable)
    }

    /// Total work performed, in job-equivalents: dispatched jobs plus the
    /// audit layer's local recomputations plus hedge twins — the basis of
    /// matched-cost comparisons between strategies.
    pub fn total_cost(&self) -> u64 {
        self.total_jobs + self.audits + self.hedges_launched
    }
}

/// A shared, immutable strategy validating every workunit.
pub type SharedStrategy = Rc<dyn RedundancyStrategy<bool>>;

/// A workunit suffers at most this many audit voids before its verdict is
/// accepted as-is (guards against a standing majority cartel looping a
/// task forever when no discipline thins it).
const MAX_WU_VOIDS: u32 = 4;

struct WuState {
    wu: Workunit,
    exec: TaskExecution<bool, SharedStrategy>,
    used_hosts: Vec<usize>,
    started_at: Option<SimTime>,
    finished: bool,
    /// Deadline misses retried with backoff so far (`retry` policy).
    retries: u32,
    /// Recorded `(host, value_was_truth)` pairs, kept under an audit
    /// policy to identify liars at spot-check time.
    votes: Vec<(usize, bool)>,
    /// Replica attempt, bumped when an audit voids or re-tallies the
    /// workunit; in-flight jobs from older attempts resolve as stale.
    attempt: u32,
    /// Set when a probation-host result landed: the verdict must be
    /// audited before acceptance regardless of the spot-check draw.
    must_audit: bool,
    /// Audit voids suffered so far (see [`MAX_WU_VOIDS`]).
    voids: u32,
}

struct JobSlot {
    wu: usize,
    host: usize,
    behavior: HostBehavior,
    /// The workunit's replica attempt at dispatch (stale detection).
    attempt: u32,
    resolved: bool,
}

struct World {
    cfg: VolunteerConfig,
    hosts: Vec<Host>,
    idle: Vec<usize>,
    wus: Vec<WuState>,
    queue: VecDeque<usize>,
    jobs: Vec<JobSlot>,
    rng: SimRng,
    total_jobs: u64,
    timeouts: u64,
    retries: u64,
    quarantines: u64,
    blacklisted: u64,
    audits: u64,
    audit_failures: u64,
    verdicts_voided: u64,
    wus_retallied: u64,
    unfinished: usize,
    /// Per-workunit response time in units, filled at finalization.
    response_units: Vec<f64>,
    /// Per-host strike/quarantine counters (`quarantine` policy).
    discipline: Vec<NodeDiscipline>,
    /// Hosts currently out of the scheduler (quarantined or blacklisted).
    quarantined: Vec<bool>,
    /// Online latency-quantile trigger for straggler hedging (`cfg.hedge`).
    hedge: Option<HedgeTrigger>,
    /// Dispatch time of every job, indexed by job id — feeds the hedge
    /// trigger's latency estimator at resolution.
    dispatched_at: Vec<SimTime>,
    /// Active hedge pairs, both directions, until the first resolution.
    hedge_pair: HashMap<usize, usize>,
    /// Which jobs are hedge twins (mapped to their origin), kept until the
    /// twin settles as won or wasted.
    twin_origin: HashMap<usize, usize>,
    hedges_launched: u64,
    hedges_won: u64,
    hedges_wasted: u64,
    /// Round-robin dispatch cursor (host index of the next preferred pick).
    rr_cursor: u32,
    /// Jobs ever assigned per host — the least-loaded policy's signal.
    host_loads: Vec<u64>,
}

type Sim = Simulator<World>;

/// Runs one volunteer-computing deployment and returns its report.
///
/// Generates a fresh 3-SAT instance from `config.seed`, decomposes it into
/// workunits, computes each block's ground truth once server-side, then
/// simulates the full deployment: scheduling, host faults, deadlines, and
/// strategy-driven validation.
///
/// # Errors
///
/// Returns [`ParamError`] for invalid configurations.
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::Iterative;
/// use smartred_volunteer::server::{run, VolunteerConfig};
///
/// // A scaled-down deployment (12-variable instance) for quick runs.
/// let cfg = VolunteerConfig::paper_deployment(12, 3);
/// let report = run(Rc::new(Iterative::new(VoteMargin::new(4)?)), &cfg)?;
/// assert_eq!(report.verdicts.len(), 140);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn run(
    strategy: SharedStrategy,
    config: &VolunteerConfig,
) -> Result<DeploymentReport, ParamError> {
    run_inner(strategy, config, false).map(|(report, _)| report)
}

/// Runs one deployment with event journaling enabled, returning the report
/// and the structured event journal. The report is bit-identical to
/// [`run`] on the same inputs; the journal is a pure observer.
///
/// # Errors
///
/// Returns [`ParamError`] for invalid configurations.
pub fn run_journaled(
    strategy: SharedStrategy,
    config: &VolunteerConfig,
) -> Result<(DeploymentReport, Journal), ParamError> {
    run_inner(strategy, config, true)
}

fn run_inner(
    strategy: SharedStrategy,
    config: &VolunteerConfig,
    journaled: bool,
) -> Result<(DeploymentReport, Journal), ParamError> {
    config.validate()?;
    let mut rng = seeded_rng(config.seed);

    // Server-side setup: generate the instance, decompose it, and compute
    // each block's true answer once (this is the actual 3-SAT computation;
    // during the run, a host's honest answer is the cached truth and a
    // faulty one its negation — the Byzantine worst case).
    let formula = random_3sat(
        ThreeSatConfig {
            num_vars: config.num_vars,
            clause_ratio: config.clause_ratio,
        },
        &mut rng,
    );
    let instance_satisfiable = dpll(&formula).is_some();
    let blocks = decompose(config.num_vars, config.tasks);
    let strategy_ref = &strategy;
    let wus: Vec<WuState> = blocks
        .iter()
        .enumerate()
        .map(|(i, &block)| {
            let mut exec = TaskExecution::new(strategy_ref.clone());
            if let Some(cap) = config.job_cap {
                exec = exec.with_job_cap(cap);
            }
            WuState {
                wu: Workunit {
                    id: WorkunitId(i),
                    block,
                    truth: block.contains_satisfying(&formula),
                },
                exec,
                used_hosts: Vec::new(),
                started_at: None,
                finished: false,
                retries: 0,
                votes: Vec::new(),
                attempt: 0,
                must_audit: false,
                voids: 0,
            }
        })
        .collect();
    debug_assert_eq!(
        wus.iter().any(|w| w.wu.truth),
        instance_satisfiable,
        "block truths must agree with the solver"
    );

    let hosts: Vec<Host> = (0..config.hosts)
        .map(|i| Host::sample(i as u64, &config.profile, &mut rng))
        .collect();
    let idle = (0..config.hosts).collect();

    let mut world = World {
        cfg: config.clone(),
        hosts,
        idle,
        wus,
        queue: VecDeque::new(),
        jobs: Vec::new(),
        rng,
        total_jobs: 0,
        timeouts: 0,
        retries: 0,
        quarantines: 0,
        blacklisted: 0,
        audits: 0,
        audit_failures: 0,
        verdicts_voided: 0,
        wus_retallied: 0,
        unfinished: config.tasks,
        response_units: vec![0.0; config.tasks],
        discipline: vec![NodeDiscipline::default(); config.hosts],
        quarantined: vec![false; config.hosts],
        hedge: config
            .hedge
            .map(|p| HedgeTrigger::new(p).expect("hedge policy validated above")),
        dispatched_at: Vec::new(),
        hedge_pair: HashMap::new(),
        twin_origin: HashMap::new(),
        hedges_launched: 0,
        hedges_won: 0,
        hedges_wasted: 0,
        rr_cursor: 0,
        host_loads: vec![0; config.hosts],
    };
    let mut sim = Sim::new();
    if journaled {
        sim.enable_journal();
    }

    // Queue every workunit's first wave, then let the scheduler run.
    for i in 0..world.wus.len() {
        poll_workunit(&mut world, &mut sim, i, false);
    }
    pump(&mut world, &mut sim);
    sim.run(&mut world);
    sim.emit(RunEvent::RunEnded);

    // Assemble the report.
    let mut jobs_per_task = Summary::new();
    let mut response_time = Summary::new();
    let mut verdicts = Vec::with_capacity(world.wus.len());
    let mut all_completed = true;
    let mut any_true = false;
    for state in &world.wus {
        let accepted = state.exec.report().verdict;
        match accepted {
            Some(v) => {
                jobs_per_task.record(state.exec.jobs_deployed() as f64);
                if v {
                    any_true = true;
                }
            }
            None => all_completed = false,
        }
        verdicts.push(WorkunitVerdict {
            id: state.wu.id,
            accepted,
            correct: accepted == Some(state.wu.truth),
            jobs: state.exec.jobs_deployed(),
            waves: state.exec.waves(),
            response_units: 0.0,
        });
    }
    // Response times were accumulated during finalization.
    for (v, units) in verdicts.iter_mut().zip(world.response_units.iter()) {
        v.response_units = *units;
        if v.accepted.is_some() {
            response_time.record(*units);
        }
    }

    Ok((
        DeploymentReport {
            verdicts,
            completion_units: sim.now().as_units(),
            total_jobs: world.total_jobs,
            jobs_per_task,
            response_time,
            timeouts: world.timeouts,
            retries: world.retries,
            quarantines: world.quarantines,
            blacklisted: world.blacklisted,
            audits: world.audits,
            audit_failures: world.audit_failures,
            verdicts_voided: world.verdicts_voided,
            wus_retallied: world.wus_retallied,
            hedges_launched: world.hedges_launched,
            hedges_won: world.hedges_won,
            hedges_wasted: world.hedges_wasted,
            instance_satisfiable,
            reported_satisfiable: if all_completed { Some(any_true) } else { None },
        },
        sim.take_journal(),
    ))
}

fn pump(world: &mut World, sim: &mut Sim) {
    loop {
        if world.idle.is_empty() || world.queue.is_empty() {
            return;
        }
        let mut placed_any = false;
        for _ in 0..world.queue.len() {
            if world.idle.is_empty() {
                return;
            }
            let Some(wu) = world.queue.pop_front() else {
                break;
            };
            match claim_host(world, wu) {
                Some(host) => {
                    dispatch(world, sim, wu, host);
                    placed_any = true;
                }
                None => world.queue.push_back(wu),
            }
        }
        if !placed_any {
            return;
        }
    }
}

/// Claims a random idle host not yet used by `wu` (waived once the
/// workunit has touched every host — BOINC's `one_result_per_user_per_wu`
/// analog).
fn claim_host(world: &mut World, wu: usize) -> Option<usize> {
    if world.idle.is_empty() {
        return None;
    }
    let used = &world.wus[wu].used_hosts;
    let waive = used.len() >= world.hosts.len();
    // The deterministic assignment policies bypass the random pick
    // entirely (no RNG draws), so layers that share the stream — behavior
    // draws, durations — are undisturbed relative to a Random run of the
    // same shape. `Random` falls through to the historical scheduler.
    if world.cfg.assignment != Assignment::Random {
        let mut eligible: Vec<u32> = world
            .idle
            .iter()
            .copied()
            .filter(|h| waive || !used.contains(h))
            .map(|h| h as u32)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        eligible.sort_unstable();
        let loads: Vec<u64> = eligible
            .iter()
            .map(|&h| world.host_loads[h as usize])
            .collect();
        let at = world
            .cfg
            .assignment
            .pick(&eligible, &loads, world.rr_cursor, 0);
        let host = eligible[at] as usize;
        world.rr_cursor = eligible[at].wrapping_add(1);
        let pos = world
            .idle
            .iter()
            .position(|&h| h == host)
            .expect("picked host is idle");
        world.idle.swap_remove(pos);
        world.hosts[host].busy = true;
        world.host_loads[host] += 1;
        return Some(host);
    }
    let mut pick = None;
    for _ in 0..8 {
        let pos = world.rng.gen_range(0..world.idle.len());
        if waive || !used.contains(&world.idle[pos]) {
            pick = Some(pos);
            break;
        }
    }
    if pick.is_none() {
        let start = world.rng.gen_range(0..world.idle.len());
        for i in 0..world.idle.len() {
            let pos = (start + i) % world.idle.len();
            if waive || !used.contains(&world.idle[pos]) {
                pick = Some(pos);
                break;
            }
        }
    }
    let mut pos = pick?;
    if world.cfg.scheduler == SchedulerPolicy::FastestIdle {
        // Among eligible idle hosts, take the fastest (smallest speed
        // multiplier); the random pick above only serves as a fallback.
        let mut best_speed = world.hosts[world.idle[pos]].speed;
        for (i, &candidate) in world.idle.iter().enumerate() {
            if (waive || !used.contains(&candidate)) && world.hosts[candidate].speed < best_speed {
                best_speed = world.hosts[candidate].speed;
                pos = i;
            }
        }
    }
    let host = world.idle.swap_remove(pos);
    world.hosts[host].busy = true;
    world.host_loads[host] += 1;
    Some(host)
}

fn dispatch(world: &mut World, sim: &mut Sim, wu: usize, host: usize) {
    let behavior = draw_behavior(&world.cfg.profile, &mut world.rng);
    let (lo, hi) = world.cfg.duration_window;
    let base = if lo == hi {
        lo
    } else {
        world.rng.gen_range(lo..=hi)
    };
    let duration_units = base * world.hosts[host].speed;
    let job = world.jobs.len();
    world.jobs.push(JobSlot {
        wu,
        host,
        behavior,
        attempt: world.wus[wu].attempt,
        resolved: false,
    });
    debug_assert_eq!(world.dispatched_at.len(), job);
    world.dispatched_at.push(sim.now());
    world.total_jobs += 1;
    let state = &mut world.wus[wu];
    state.used_hosts.push(host);
    if state.started_at.is_none() {
        state.started_at = Some(sim.now());
    }
    let times_out = behavior == HostBehavior::Hung || duration_units > world.cfg.deadline_units;
    let delay = if times_out {
        SimDuration::from_units(world.cfg.deadline_units)
    } else {
        SimDuration::from_units(duration_units)
    };
    sim.emit(RunEvent::JobDispatched {
        job: job as u32,
        task: wu as u32,
        node: host as u32,
        eta: sim.now() + delay,
    });
    sim.schedule_in(delay, move |world, sim| resolve(world, sim, job, times_out));
    // Straggler hedging: once the latency estimator is warm, arm a check
    // at the quantile threshold. The armed check carries the dispatch
    // epoch so an audit void/re-tally between arming and firing disarms it
    // — hedges never double-fire for a superseded task epoch.
    if let Some(trigger) = &world.hedge {
        if let Some(threshold) = trigger.threshold() {
            if threshold < world.cfg.deadline_units {
                let epoch = world.wus[wu].attempt;
                sim.schedule_in(SimDuration::from_units(threshold), move |world, sim| {
                    hedge_check(world, sim, job, wu, epoch);
                });
            }
        }
    }
}

/// Fires when a dispatched job reaches the hedge threshold still
/// unresolved: launches a twin of the same logical replica on another
/// host. The twin bypasses the wave/job accounting — the first pair member
/// to genuinely resolve supplies the replica's vote; the loser is
/// discarded.
fn hedge_check(world: &mut World, sim: &mut Sim, origin: usize, wu: usize, epoch: u32) {
    if world.jobs[origin].resolved || world.wus[wu].finished || world.wus[wu].attempt != epoch {
        return;
    }
    let Some(trigger) = &world.hedge else {
        return;
    };
    let policy = trigger.policy();
    if world.wus[wu].exec.hedges_launched() >= policy.max_per_task as usize {
        return;
    }
    let Some(host) = claim_host(world, wu) else {
        // No idle host to duplicate onto: hedging is best-effort.
        return;
    };
    let behavior = draw_behavior(&world.cfg.profile, &mut world.rng);
    let (lo, hi) = world.cfg.duration_window;
    let base = if lo == hi {
        lo
    } else {
        world.rng.gen_range(lo..=hi)
    };
    let duration_units = base * world.hosts[host].speed;
    let twin = world.jobs.len();
    world.jobs.push(JobSlot {
        wu,
        host,
        behavior,
        attempt: epoch,
        resolved: false,
    });
    debug_assert_eq!(world.dispatched_at.len(), twin);
    world.dispatched_at.push(sim.now());
    world.wus[wu].used_hosts.push(host);
    world.wus[wu].exec.note_hedge();
    world.hedges_launched += 1;
    world.hedge_pair.insert(origin, twin);
    world.hedge_pair.insert(twin, origin);
    world.twin_origin.insert(twin, origin);
    // The twin's launch event replaces JobDispatched: it never enters the
    // wave accounting, so the journal's dispatch count still equals the
    // strategy's deploys on replay.
    sim.emit(RunEvent::HedgeLaunched {
        job: twin as u32,
        task: wu as u32,
        origin: origin as u32,
        epoch,
    });
    let times_out = behavior == HostBehavior::Hung || duration_units > world.cfg.deadline_units;
    let delay = if times_out {
        SimDuration::from_units(world.cfg.deadline_units)
    } else {
        SimDuration::from_units(duration_units)
    };
    sim.schedule_in(delay, move |world, sim| {
        resolve(world, sim, twin, times_out)
    });
}

/// Settles a hedge twin exactly once: `won` means its result supplied the
/// replica's vote; otherwise its work was discarded.
fn settle_twin(world: &mut World, sim: &mut Sim, twin: usize, wu: usize, won: bool) {
    let removed = world.twin_origin.remove(&twin);
    debug_assert!(removed.is_some(), "twin settled twice");
    if won {
        world.hedges_won += 1;
        sim.emit(RunEvent::HedgeWon {
            job: twin as u32,
            task: wu as u32,
        });
    } else {
        world.hedges_wasted += 1;
        sim.emit(RunEvent::HedgeWasted {
            job: twin as u32,
            task: wu as u32,
        });
    }
}

/// Feeds a genuinely resolved job's latency to the hedge estimator.
fn observe_latency(world: &mut World, now: SimTime, job: usize) {
    if let Some(trigger) = world.hedge.as_mut() {
        trigger.observe(now.since(world.dispatched_at[job]).as_units());
    }
}

/// Emits the vote-tally snapshot after a vote landed in workunit `wu`.
fn emit_tally(world: &World, sim: &mut Sim, wu: usize, value: bool) {
    if !sim.journal().is_enabled() {
        return;
    }
    let (leader_count, runner_up) = world.wus[wu].exec.leader_counts();
    sim.emit(RunEvent::VoteTallied {
        task: wu as u32,
        value,
        leader_count: leader_count as u32,
        runner_up: runner_up as u32,
    });
}

/// Emits a wave-closed event when workunit `wu`'s wave has just drained.
fn emit_wave_closed(world: &World, sim: &mut Sim, wu: usize) {
    if sim.journal().is_enabled() && world.wus[wu].exec.wave_boundary() {
        sim.emit(RunEvent::WaveClosed {
            task: wu as u32,
            wave: world.wus[wu].exec.waves() as u32,
        });
    }
}

fn resolve(world: &mut World, sim: &mut Sim, job: usize, timed_out: bool) {
    if world.jobs[job].resolved {
        return;
    }
    world.jobs[job].resolved = true;
    let (wu, host, behavior) = {
        let slot = &world.jobs[job];
        (slot.wu, slot.host, slot.behavior)
    };
    world.hosts[host].busy = false;
    if !world.quarantined[host] {
        world.idle.push(host);
    }
    // Hedge-pair bookkeeping: dissolve this job's pairing (if any) up
    // front so exactly one pair member ever records a vote, a strike, or a
    // deadline miss for the shared logical replica.
    let is_twin = world.twin_origin.contains_key(&job);
    let partner = world.hedge_pair.remove(&job);
    if let Some(p) = partner {
        world.hedge_pair.remove(&p);
    }
    let partner_pending = partner.is_some_and(|p| !world.jobs[p].resolved);
    if world.wus[wu].finished {
        // Other replicas settled the workunit while this pair raced; any
        // twin still owes its terminal hedge event.
        if is_twin {
            settle_twin(world, sim, job, wu, false);
        }
    } else {
        let truth = world.wus[wu].wu.truth;
        if world.jobs[job].attempt != world.wus[wu].attempt {
            // The job predates an audit void/re-tally of its workunit: its
            // reply (or miss) belongs to a discarded tally and is dropped.
            if is_twin {
                settle_twin(world, sim, job, wu, false);
            } else {
                sim.emit(RunEvent::StaleReplyDropped {
                    job: job as u32,
                    task: wu as u32,
                    epoch: world.wus[wu].attempt,
                });
            }
        } else if timed_out {
            if partner_pending {
                // Suppressed: the partner is still racing for this
                // replica's vote, so the lapse charges no miss, strike,
                // or vote — the surviving member carries the replica.
                if is_twin {
                    settle_twin(world, sim, job, wu, false);
                }
            } else {
                observe_latency(world, sim.now(), job);
                if is_twin {
                    settle_twin(world, sim, job, wu, false);
                }
                world.timeouts += 1;
                sim.emit(RunEvent::JobTimedOut {
                    job: job as u32,
                    task: wu as u32,
                    node: host as u32,
                });
                strike_host(world, sim, host);
                if !retry_workunit(world, sim, wu) {
                    match world.cfg.deadline_policy {
                        // The colluding wrong value is the negated truth.
                        DeadlinePolicy::CountAsWrong => {
                            world.wus[wu].exec.record(!truth);
                            emit_tally(world, sim, wu, !truth);
                        }
                        DeadlinePolicy::Reissue => world.wus[wu].exec.abandon(1),
                    }
                    emit_wave_closed(world, sim, wu);
                    poll_workunit(world, sim, wu, true);
                }
            }
        } else {
            observe_latency(world, sim.now(), job);
            if partner_pending {
                // This copy won the race: cancel the loser and free its
                // host (its scheduled resolution will find it resolved).
                let p = partner.expect("partner_pending implies a partner");
                world.jobs[p].resolved = true;
                let ph = world.jobs[p].host;
                world.hosts[ph].busy = false;
                if !world.quarantined[ph] {
                    world.idle.push(ph);
                }
                if !is_twin {
                    settle_twin(world, sim, p, wu, false);
                }
            }
            let mut value = match behavior {
                HostBehavior::Honest => truth,
                HostBehavior::Faulty => !truth,
                HostBehavior::Hung => unreachable!("hangs resolve via timeout"),
            };
            // A colluding host overrides its drawn behavior on the
            // coalition's per-workunit lie schedule.
            if let Some(cartel) = world.cfg.cartel {
                if cartel.is_member(host as u32) && cartel.lies_on(world.cfg.seed, wu as u64) {
                    value = !truth;
                }
            }
            sim.emit(RunEvent::JobReturned {
                job: job as u32,
                task: wu as u32,
                node: host as u32,
                value,
            });
            if is_twin {
                settle_twin(world, sim, job, wu, true);
            }
            world.wus[wu].exec.record(value);
            emit_tally(world, sim, wu, value);
            if world.cfg.audit.is_enabled() {
                world.wus[wu].votes.push((host, value == truth));
                if world.discipline[host].consume_probation() {
                    world.wus[wu].must_audit = true;
                }
            }
            emit_wave_closed(world, sim, wu);
            poll_workunit(world, sim, wu, true);
        }
    }
    pump(world, sim);
}

/// Schedules a backoff-delayed retry of a missed deadline under the retry
/// policy, if the workunit has attempts left. Returns whether a retry was
/// scheduled (in which case the miss is hidden from the vote).
fn retry_workunit(world: &mut World, sim: &mut Sim, wu: usize) -> bool {
    let Some(policy) = world.cfg.retry else {
        return false;
    };
    let attempt = world.wus[wu].retries;
    if attempt >= policy.max_retries {
        return false;
    }
    world.wus[wu].retries = attempt + 1;
    world.retries += 1;
    sim.emit(RunEvent::JobRetried {
        task: wu as u32,
        attempt: attempt + 1,
    });
    world.wus[wu].exec.abandon(1);
    emit_wave_closed(world, sim, wu);
    let delay = backoff_duration(
        &mut world.rng,
        policy.base_units,
        policy.multiplier,
        attempt,
        policy.jitter,
    );
    sim.schedule_in(delay, move |world, sim| {
        poll_workunit(world, sim, wu, /* priority = */ true);
        pump(world, sim);
    });
    true
}

/// Registers a deadline-miss strike against a host and applies the
/// quarantine policy's discipline. Blacklisting is a quarantine that is
/// never lifted.
fn strike_host(world: &mut World, sim: &mut Sim, host: usize) {
    let Some(policy) = world.cfg.quarantine else {
        return;
    };
    match world.discipline[host].strike(&policy) {
        DisciplineAction::None => {}
        DisciplineAction::Quarantine => {
            world.quarantines += 1;
            sim.emit(RunEvent::NodeQuarantined { node: host as u32 });
            quarantine_host(world, host);
            sim.schedule_in(
                SimDuration::from_units(policy.quarantine_units),
                move |world, sim| {
                    sim.emit(RunEvent::NodeReleased { node: host as u32 });
                    world.quarantined[host] = false;
                    // Re-admission is probationary: the host's next results
                    // each flag their workunit for a mandatory audit.
                    if world.cfg.audit.is_enabled() {
                        world.discipline[host].begin_probation(world.cfg.audit.probation_audits);
                    }
                    if !world.hosts[host].busy {
                        world.idle.push(host);
                    }
                    pump(world, sim);
                },
            );
        }
        DisciplineAction::Blacklist => {
            world.blacklisted += 1;
            // The host stays in the host table but leaves the scheduler for
            // good — from the journal's point of view it has departed.
            sim.emit(RunEvent::NodeDeparted {
                node: host as u32,
                reason: DepartureReason::Blacklist,
            });
            quarantine_host(world, host);
        }
    }
}

fn quarantine_host(world: &mut World, host: usize) {
    if world.quarantined[host] {
        return;
    }
    world.quarantined[host] = true;
    if let Some(pos) = world.idle.iter().position(|&h| h == host) {
        world.idle.swap_remove(pos);
    }
}

fn poll_workunit(world: &mut World, sim: &mut Sim, wu: usize, priority: bool) {
    if world.wus[wu].finished {
        return;
    }
    match world.wus[wu].exec.step_wave() {
        WaveStep::Wave { wave, jobs } => {
            sim.emit(RunEvent::WaveOpened {
                task: wu as u32,
                wave: wave as u32,
                jobs: jobs as u32,
            });
            for _ in 0..jobs {
                if priority {
                    world.queue.push_front(wu);
                } else {
                    world.queue.push_back(wu);
                }
            }
        }
        WaveStep::Verdict(v) => finalize(world, sim, wu, Some(v)),
        WaveStep::Capped { .. } => finalize(world, sim, wu, None),
        WaveStep::Pending => {}
    }
}

fn finalize(world: &mut World, sim: &mut Sim, wu: usize, verdict: Option<bool>) {
    // Audit gate: an accepted verdict is spot-checked against the cached
    // ground truth before acceptance; a voided verdict restarts the
    // workunit instead of finishing it.
    if world.cfg.audit.is_enabled() {
        if let Some(v) = verdict {
            if !spot_check(world, sim, wu, v) {
                return;
            }
        }
    }
    match verdict {
        Some(v) => sim.emit(RunEvent::VerdictReached {
            task: wu as u32,
            value: v,
            degraded: false,
            confidence: 1.0,
        }),
        None => sim.emit(RunEvent::TaskCapped { task: wu as u32 }),
    }
    let state = &mut world.wus[wu];
    debug_assert!(!state.finished);
    state.finished = true;
    world.unfinished -= 1;
    let units = state
        .started_at
        .map(|s| sim.now().since(s).as_units())
        .unwrap_or(0.0);
    world.response_units[wu] = units;
}

/// Locally recomputes an audited workunit (the truth is cached, so the
/// check is a comparison per recorded result) and acts on what it finds:
/// liars earn weighted strikes, open workunits they touched are
/// re-tallied, and a verdict they actually swung is voided and re-run.
/// Returns whether the verdict may be accepted.
fn spot_check(world: &mut World, sim: &mut Sim, wu: usize, v: bool) -> bool {
    let policy = world.cfg.audit;
    let state = &world.wus[wu];
    // Escalation is a pure function of the counters, deterministic by seed.
    let escalated = world.audit_failures > 0;
    let selected = state.must_audit || policy.selects(world.cfg.seed, wu as u64, escalated);
    if !selected || state.voids >= MAX_WU_VOIDS {
        return true;
    }
    sim.emit(RunEvent::AuditScheduled { task: wu as u32 });
    world.audits += 1;
    let truth = world.wus[wu].wu.truth;
    let liars: Vec<usize> = world.wus[wu]
        .votes
        .iter()
        .filter(|&&(_, was_truth)| !was_truth)
        .map(|&(host, _)| host)
        .collect();
    if liars.is_empty() && v == truth {
        sim.emit(RunEvent::AuditPassed { task: wu as u32 });
        world.wus[wu].must_audit = false;
        return true;
    }
    for &host in &liars {
        sim.emit(RunEvent::AuditFailed {
            task: wu as u32,
            node: host as u32,
        });
        world.audit_failures += 1;
        for _ in 0..policy.strike_weight.max(1) {
            strike_host(world, sim, host);
        }
    }
    // Retaliation: every open workunit a caught liar touched loses its
    // tally.
    let caught: Vec<usize> = {
        let mut c = liars;
        c.sort_unstable();
        c.dedup();
        c
    };
    for u in 0..world.wus.len() {
        if u == wu || world.wus[u].finished {
            continue;
        }
        if !world.wus[u].votes.iter().any(|&(h, _)| caught.contains(&h)) {
            continue;
        }
        sim.emit(RunEvent::TaskRetallied { task: u as u32 });
        world.wus_retallied += 1;
        restart_workunit(world, sim, u);
    }
    if v == truth {
        // Liars caught but outvoted: the verdict stands.
        return true;
    }
    sim.emit(RunEvent::VerdictVoided { task: wu as u32 });
    world.verdicts_voided += 1;
    world.wus[wu].voids += 1;
    restart_workunit(world, sim, wu);
    false
}

/// Discards a workunit's tally and restarts it from wave 1 under a new
/// attempt: queued jobs are purged, in-flight jobs become stale, and the
/// strategy re-deploys with a fresh budget.
fn restart_workunit(world: &mut World, sim: &mut Sim, wu: usize) {
    let state = &mut world.wus[wu];
    debug_assert!(!state.finished);
    state.attempt += 1;
    state.exec.reset();
    state.votes.clear();
    state.must_audit = false;
    sim.emit(RunEvent::EpochAdvanced {
        task: wu as u32,
        epoch: state.attempt,
    });
    world.queue.retain(|&x| x != wu);
    poll_workunit(world, sim, wu, /* priority = */ true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_core::params::{KVotes, VoteMargin};
    use smartred_core::strategy::{Iterative, Progressive, Traditional};

    fn small_config(seed: u64) -> VolunteerConfig {
        let mut cfg = VolunteerConfig::paper_deployment(12, seed);
        cfg.hosts = 60;
        cfg
    }

    #[test]
    fn deployment_completes_all_workunits() {
        let cfg = small_config(1);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(report.verdicts.len(), 140);
        assert!(report.verdicts.iter().all(|v| v.accepted.is_some()));
        assert_eq!(report.cost_factor(), 3.0);
        assert!(report.reported_satisfiable.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_config(2);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iterative_beats_traditional_on_cost_at_similar_reliability() {
        // The Figure 5(b) headline at deployment scale.
        let cfg = small_config(3);
        let tr = run(Rc::new(Traditional::new(KVotes::new(19).unwrap())), &cfg).unwrap();
        let ir = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
        assert!(ir.cost_factor() < tr.cost_factor() / 1.5);
    }

    #[test]
    fn progressive_sits_between() {
        let cfg = small_config(4);
        let k = KVotes::new(19).unwrap();
        let tr = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let pr = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
        let ir = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
        assert!(pr.cost_factor() < tr.cost_factor());
        assert!(ir.cost_factor() < pr.cost_factor());
    }

    #[test]
    fn timeouts_occur_with_hangs() {
        let cfg = small_config(5);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.timeouts > 0, "default profile has 2% hangs");
    }

    #[test]
    fn reissue_policy_completes_too() {
        let mut cfg = small_config(6);
        cfg.deadline_policy = DeadlinePolicy::Reissue;
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.verdicts.iter().all(|v| v.accepted.is_some()));
        // Re-issued jobs add cost beyond k.
        assert!(report.cost_factor() >= 3.0);
    }

    #[test]
    fn ground_truth_matches_solver() {
        let cfg = small_config(7);
        let report = run(Rc::new(Iterative::new(VoteMargin::new(6).unwrap())), &cfg).unwrap();
        // With d = 6 at r ≈ 0.65, per-task reliability ≈ 0.98; on 140 tasks
        // the computation-level answer is usually right — and when it is,
        // it must equal DPLL's.
        if report.computation_correct() {
            assert_eq!(
                report.reported_satisfiable,
                Some(report.instance_satisfiable)
            );
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut cfg = small_config(8);
        cfg.hosts = 0;
        assert!(run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).is_err());
        let mut cfg = small_config(9);
        cfg.tasks = 1 << 13; // more tasks than assignments of a 12-var instance
        assert!(run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).is_err());
    }

    #[test]
    fn job_cap_leaves_workunits_unfinished() {
        let mut cfg = small_config(10);
        cfg.job_cap = Some(4);
        let report = run(Rc::new(Iterative::new(VoteMargin::new(6).unwrap())), &cfg).unwrap();
        let incomplete = report
            .verdicts
            .iter()
            .filter(|v| v.accepted.is_none())
            .count();
        assert!(incomplete > 0);
        assert_eq!(report.reported_satisfiable, None);
    }

    #[test]
    fn retry_hides_deadline_misses_from_the_vote() {
        let mut cfg = small_config(30);
        cfg.retry = Some(RetryPolicy::default());
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.retries > 0, "default profile has 2% hangs");
        assert!(report.verdicts.iter().all(|v| v.accepted.is_some()));
        // Hidden misses mean re-deployed jobs: cost exceeds plain k.
        assert!(report.cost_factor() > 3.0);
    }

    #[test]
    fn quarantine_disciplines_hosts_that_miss_deadlines() {
        let mut cfg = small_config(31);
        cfg.profile.unresponsive_rate = 0.3;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 2,
            quarantine_units: 3.0,
            blacklist_after: 1_000,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.quarantines > 0);
        assert_eq!(report.blacklisted, 0);
        assert!(report.verdicts.iter().all(|v| v.accepted.is_some()));
    }

    #[test]
    fn repeat_offenders_get_blacklisted() {
        let mut cfg = small_config(32);
        cfg.profile.unresponsive_rate = 0.1;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 1,
            quarantine_units: 1.0,
            blacklist_after: 1,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.blacklisted > 0);
    }

    #[test]
    fn resilient_deployments_are_deterministic() {
        let mut cfg = small_config(33);
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn audit_layer_beats_replication_against_a_cartel() {
        use smartred_core::audit::{AuditPolicy, Cartel};

        // A 40% coalition lying on a quarter of the workunits. Plain
        // replication accepts whatever the coalition swings; the audit
        // layer recomputes a sample, convicts the liars, and voids the
        // verdicts they carried.
        let base = |audit: AuditPolicy| {
            let mut cfg = small_config(40);
            cfg.tasks = 800;
            cfg.cartel = Some(Cartel::new(24, 0.25));
            cfg.quarantine = Some(QuarantinePolicy::default());
            cfg.audit = audit;
            cfg
        };
        let s = || Rc::new(Traditional::new(KVotes::new(3).unwrap()));
        let plain = run(s(), &base(AuditPolicy::disabled())).unwrap();
        assert_eq!(plain.audits, 0);
        assert_eq!(plain.verdicts_voided, 0);

        let audited = run(s(), &base(AuditPolicy::spot(0.15))).unwrap();
        assert!(audited.audits > 0);
        assert!(audited.audit_failures > 0);
        assert!(audited.verdicts_voided > 0);
        assert!(
            audited.reliability() > plain.reliability(),
            "audited {} !> plain {}",
            audited.reliability(),
            plain.reliability()
        );

        // Matched cost: buying more replication instead (TR-5, no audits)
        // costs at least as much yet stays below the audited reliability.
        let tr5 = run(
            Rc::new(Traditional::new(KVotes::new(5).unwrap())),
            &base(AuditPolicy::disabled()),
        )
        .unwrap();
        assert!(
            audited.total_cost() <= tr5.total_cost(),
            "audited cost {} !<= TR-5 cost {}",
            audited.total_cost(),
            tr5.total_cost()
        );
        assert!(
            audited.reliability() > tr5.reliability(),
            "audited {} !> TR-5 {}",
            audited.reliability(),
            tr5.reliability()
        );
    }

    #[test]
    fn audited_deployments_are_deterministic() {
        use smartred_core::audit::{AuditPolicy, Cartel};

        let mut cfg = small_config(41);
        cfg.cartel = Some(Cartel::new(20, 0.3));
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.audit = AuditPolicy::spot(0.2);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.audits > 0);
    }

    #[test]
    fn fastest_idle_scheduler_speeds_up_completion() {
        let mut random = small_config(20);
        random.scheduler = SchedulerPolicy::RandomIdle;
        let mut fastest = small_config(20);
        fastest.scheduler = SchedulerPolicy::FastestIdle;
        let s = || Rc::new(Traditional::new(KVotes::new(3).unwrap()));
        let slow = run(s(), &random).unwrap();
        let fast = run(s(), &fastest).unwrap();
        // Preferring fast hosts shortens the computation and reduces
        // deadline misses from slow hosts overrunning.
        assert!(
            fast.completion_units < slow.completion_units,
            "fastest {} !< random {}",
            fast.completion_units,
            slow.completion_units
        );
        assert!(fast.timeouts <= slow.timeouts);
    }

    fn hedged_config(seed: u64) -> VolunteerConfig {
        let mut cfg = small_config(seed);
        // A wide speed spread makes genuine stragglers: the slowest hosts
        // run jobs 4x longer than the fastest, well past the p70 latency.
        cfg.profile.speed_window = (1.0, 4.0);
        cfg.deadline_units = 8.0;
        cfg.hedge = Some(HedgePolicy {
            quantile: 0.7,
            min_samples: 10,
            multiplier: 1.0,
            max_per_task: 2,
        });
        cfg
    }

    #[test]
    fn hedging_fires_and_every_twin_settles() {
        let cfg = hedged_config(50);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let report = run(s(), &cfg).unwrap();
        assert!(report.verdicts.iter().all(|v| v.accepted.is_some()));
        assert!(report.hedges_launched > 0, "no hedges fired");
        assert_eq!(
            report.hedges_launched,
            report.hedges_won + report.hedges_wasted,
            "every launched twin must settle exactly once"
        );
        assert!(report.hedges_won > 0, "no twin ever beat its straggler");
        // Hedging is paid work: the cost metric must include it.
        assert_eq!(
            report.total_cost(),
            report.total_jobs + report.audits + report.hedges_launched
        );
        assert_eq!(
            run(s(), &cfg).unwrap(),
            report,
            "hedged run must be deterministic"
        );
    }

    #[test]
    fn hedged_journal_matches_report_counters() {
        use smartred_desim::journal::EventKind;
        let cfg = hedged_config(51);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let (report, journal) = run_journaled(s(), &cfg).unwrap();
        assert!(report.hedges_launched > 0);
        let count = |kind: EventKind| {
            journal
                .events()
                .iter()
                .filter(|e| e.event.kind() == kind)
                .count() as u64
        };
        assert_eq!(count(EventKind::HedgeLaunched), report.hedges_launched);
        assert_eq!(count(EventKind::HedgeWon), report.hedges_won);
        assert_eq!(count(EventKind::HedgeWasted), report.hedges_wasted);
        // Journaling is a pure observer even with hedging enabled.
        assert_eq!(run(s(), &cfg).unwrap(), report);
        // The hedged journal round-trips through JSONL bit for bit.
        let restored = smartred_desim::journal::Journal::from_jsonl(&journal.to_jsonl()).unwrap();
        assert_eq!(restored.digest(), journal.digest());
    }

    #[test]
    fn hedging_never_fires_before_the_estimator_warms() {
        let mut cfg = hedged_config(52);
        // More samples demanded than the run can ever produce.
        cfg.hedge = Some(HedgePolicy {
            min_samples: u64::MAX,
            ..HedgePolicy::default()
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(report.hedges_launched, 0);
        assert_eq!(report.cost_factor(), 3.0);
    }

    #[test]
    fn assignment_policies_preserve_verdict_metrics() {
        for policy in Assignment::ALL {
            let mut cfg = small_config(53);
            cfg.assignment = policy;
            let s = || Rc::new(Traditional::new(KVotes::new(3).unwrap()));
            let a = run(s(), &cfg).unwrap();
            let b = run(s(), &cfg).unwrap();
            assert_eq!(a, b, "{} must be deterministic", policy.name());
            assert!(
                a.verdicts.iter().all(|v| v.accepted.is_some()),
                "{} left workunits unfinished",
                policy.name()
            );
            assert_eq!(a.cost_factor(), 3.0, "{} altered the cost", policy.name());
        }
    }

    #[test]
    fn hedging_composes_with_audits_without_double_counting() {
        use smartred_core::audit::{AuditPolicy, Cartel};
        let mut cfg = hedged_config(54);
        cfg.cartel = Some(Cartel::new(15, 0.3));
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.audit = AuditPolicy::spot(0.2);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        assert_eq!(a, run(s(), &cfg).unwrap());
        assert!(a.audits > 0);
        assert_eq!(a.hedges_launched, a.hedges_won + a.hedges_wasted);
    }
}
