//! Journal integration tests for the volunteer deployment: every
//! reconstructible `DeploymentReport` field must be derivable from the run
//! journal alone (bit-exactly, including Welford summary state), and the
//! `DeadlinePolicy::Reissue` path is exercised under hang-heavy profiles.

use std::rc::Rc;

use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred_core::strategy::{Iterative, Traditional};
use smartred_desim::journal::{assert as jassert, DepartureReason, EventKind, Journal, RunEvent};
use smartred_desim::time::SimTime;
use smartred_stats::Summary;
use smartred_volunteer::host::PlanetLabProfile;
use smartred_volunteer::server::{
    run, run_journaled, DeadlinePolicy, DeploymentReport, SharedStrategy, VolunteerConfig,
};

fn small_config(seed: u64) -> VolunteerConfig {
    let mut cfg = VolunteerConfig::paper_deployment(10, seed);
    cfg.hosts = 60;
    cfg.tasks = 80;
    cfg
}

/// The reconstructible slice of a [`DeploymentReport`], rebuilt from the
/// journal alone. Ground-truth-dependent fields (`correct`,
/// `instance_satisfiable`) are intentionally absent: the journal records
/// what the server *observed*, not the oracle.
#[derive(Debug, PartialEq)]
struct ReplayedDeployment {
    completion_units: f64,
    total_jobs: u64,
    jobs_per_task: Summary,
    response_time: Summary,
    timeouts: u64,
    retries: u64,
    quarantines: u64,
    blacklisted: u64,
    accepted: Vec<Option<bool>>,
    jobs: Vec<usize>,
    waves: Vec<usize>,
    response_units: Vec<f64>,
    reported_satisfiable: Option<bool>,
}

impl ReplayedDeployment {
    /// Projects the same slice out of a live report, for comparison.
    fn from_report(report: &DeploymentReport) -> Self {
        Self {
            completion_units: report.completion_units,
            total_jobs: report.total_jobs,
            jobs_per_task: report.jobs_per_task,
            response_time: report.response_time,
            timeouts: report.timeouts,
            retries: report.retries,
            quarantines: report.quarantines,
            blacklisted: report.blacklisted,
            accepted: report.verdicts.iter().map(|v| v.accepted).collect(),
            jobs: report.verdicts.iter().map(|v| v.jobs).collect(),
            waves: report.verdicts.iter().map(|v| v.waves).collect(),
            response_units: report.verdicts.iter().map(|v| v.response_units).collect(),
            reported_satisfiable: report.reported_satisfiable,
        }
    }

    /// Folds the event stream back into report state. Mirrors the live
    /// accumulation exactly: per-workunit summaries are assembled in
    /// workunit index order (the order the live report uses), so the
    /// Welford state matches bit for bit.
    fn from_journal(journal: &Journal, tasks: usize) -> Self {
        let mut accepted: Vec<Option<bool>> = vec![None; tasks];
        let mut finalized: Vec<bool> = vec![false; tasks];
        let mut jobs = vec![0usize; tasks];
        let mut waves = vec![0usize; tasks];
        let mut first_dispatch: Vec<Option<SimTime>> = vec![None; tasks];
        let mut response_units = vec![0.0f64; tasks];
        let mut total_jobs = 0u64;
        let mut timeouts = 0u64;
        let mut retries = 0u64;
        let mut quarantines = 0u64;
        let mut blacklisted = 0u64;
        let mut completion_units = 0.0f64;
        for e in journal.events() {
            match e.event {
                RunEvent::JobDispatched { task, .. } => {
                    total_jobs += 1;
                    let wu = task as usize;
                    if first_dispatch[wu].is_none() {
                        first_dispatch[wu] = Some(e.at);
                    }
                }
                RunEvent::JobTimedOut { .. } => timeouts += 1,
                RunEvent::JobRetried { .. } => retries += 1,
                RunEvent::WaveOpened { task, jobs: n, .. } => {
                    jobs[task as usize] += n as usize;
                    waves[task as usize] += 1;
                }
                RunEvent::NodeQuarantined { .. } => quarantines += 1,
                RunEvent::NodeDeparted {
                    reason: DepartureReason::Blacklist,
                    ..
                } => blacklisted += 1,
                RunEvent::VerdictReached { task, value, .. } => {
                    let wu = task as usize;
                    accepted[wu] = Some(value);
                    finalized[wu] = true;
                    response_units[wu] = first_dispatch[wu]
                        .map(|s| e.at.since(s).as_units())
                        .unwrap_or(0.0);
                }
                RunEvent::TaskCapped { task } => {
                    let wu = task as usize;
                    finalized[wu] = true;
                    response_units[wu] = first_dispatch[wu]
                        .map(|s| e.at.since(s).as_units())
                        .unwrap_or(0.0);
                }
                RunEvent::RunEnded => completion_units = e.at.as_units(),
                _ => {}
            }
        }
        let mut jobs_per_task = Summary::new();
        let mut response_time = Summary::new();
        for wu in 0..tasks {
            if accepted[wu].is_some() {
                jobs_per_task.record(jobs[wu] as f64);
            }
        }
        for wu in 0..tasks {
            if accepted[wu].is_some() {
                response_time.record(response_units[wu]);
            }
        }
        let all_completed = accepted.iter().all(|a| a.is_some());
        let any_true = accepted.contains(&Some(true));
        Self {
            completion_units,
            total_jobs,
            jobs_per_task,
            response_time,
            timeouts,
            retries,
            quarantines,
            blacklisted,
            accepted,
            jobs,
            waves,
            response_units,
            reported_satisfiable: all_completed.then_some(any_true),
        }
    }
}

fn strategies() -> Vec<(&'static str, SharedStrategy)> {
    vec![
        (
            "tr-k3",
            Rc::new(Traditional::new(KVotes::new(3).unwrap())) as SharedStrategy,
        ),
        (
            "ir-d4",
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
        ),
    ]
}

#[test]
fn replayed_report_matches_live_report_exactly() {
    // Chaos config: hangs, retries, quarantines, both deadline policies.
    for policy in [DeadlinePolicy::CountAsWrong, DeadlinePolicy::Reissue] {
        let mut cfg = small_config(11);
        cfg.profile.unresponsive_rate = 0.10;
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.deadline_policy = policy;
        for (name, strategy) in strategies() {
            let (report, journal) = run_journaled(strategy, &cfg).unwrap();
            assert_eq!(
                ReplayedDeployment::from_journal(&journal, cfg.tasks),
                ReplayedDeployment::from_report(&report),
                "journal replay drifted from live report ({name}, {policy:?})"
            );
        }
    }
}

#[test]
fn journaling_does_not_perturb_the_deployment() {
    let cfg = small_config(3);
    let strategy: SharedStrategy = Rc::new(Traditional::new(KVotes::new(3).unwrap()));
    let plain = run(Rc::clone(&strategy), &cfg).unwrap();
    let (journaled, journal) = run_journaled(strategy, &cfg).unwrap();
    assert_eq!(plain, journaled);
    assert!(!journal.is_empty());
}

#[test]
fn reissue_masks_hangs_completely_on_honest_pools() {
    // With every non-hung job honest, CountAsWrong converts each hang into
    // a wrong vote (hurting reliability), while Reissue re-deploys it: the
    // final verdicts must all be correct, at extra job cost.
    let mut cfg = small_config(17);
    cfg.profile = PlanetLabProfile {
        seeded_fault_rate: 0.0,
        platform_fault_rate: 0.0,
        unresponsive_rate: 0.3,
        speed_window: (1.0, 1.0),
    };
    cfg.deadline_policy = DeadlinePolicy::Reissue;
    let strategy: SharedStrategy = Rc::new(Traditional::new(KVotes::new(3).unwrap()));
    let report = run(strategy, &cfg).unwrap();
    assert!(report.timeouts > 0, "profile should produce hangs");
    assert_eq!(report.reliability(), 1.0);
    assert!(
        report.cost_factor() > 3.0,
        "reissued jobs must cost extra: {}",
        report.cost_factor()
    );
    assert!(report.computation_correct());
}

#[test]
fn reissue_is_deterministic_under_retry_and_quarantine() {
    let mut cfg = small_config(23);
    cfg.profile.unresponsive_rate = 0.15;
    cfg.deadline_policy = DeadlinePolicy::Reissue;
    cfg.retry = Some(RetryPolicy::default());
    cfg.quarantine = Some(QuarantinePolicy::default());
    let mk = || Rc::new(Traditional::new(KVotes::new(3).unwrap())) as SharedStrategy;
    let a = run(mk(), &cfg).unwrap();
    let b = run(mk(), &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn reissue_timeouts_are_followed_by_redeployment() {
    // Under Reissue (and no backoff-retry policy), every deadline miss
    // abandons the silent job and re-polls the workunit, which must open a
    // fresh deployment wave for the same task.
    let mut cfg = small_config(29);
    cfg.profile.unresponsive_rate = 0.2;
    cfg.deadline_policy = DeadlinePolicy::Reissue;
    let strategy: SharedStrategy = Rc::new(Traditional::new(KVotes::new(3).unwrap()));
    let (report, journal) = run_journaled(strategy, &cfg).unwrap();
    assert!(report.timeouts > 0);
    jassert::that(&journal)
        .time_ordered()
        .waves_well_formed()
        .no_dispatch_to_quarantined()
        .each_followed_by(
            "reissued deadline miss reopens a wave for the task",
            |e| matches!(e.event, RunEvent::JobTimedOut { .. }),
            |miss, later| match (miss.event, later.event) {
                (RunEvent::JobTimedOut { task, .. }, RunEvent::WaveOpened { task: t, .. }) => {
                    task == t
                }
                _ => false,
            },
        )
        .count(EventKind::JobRetried)
        .exactly(0);
}
