//! Golden journal-digest tests: pin the exact event stream of one seeded
//! run per redundancy strategy (TR / PR / IR).
//!
//! The digest covers every event, timestamp, and field of the run's
//! journal, so these tests enforce determinism at event granularity — a
//! regression that reorders events while preserving aggregate sums fails
//! here even though every CSV stays identical. On mismatch the offending
//! journal is dumped as JSONL under `target/journal-artifacts/` (CI uploads
//! that directory for failed runs).

use std::rc::Rc;

use smartred_core::execution::Assignment;
use smartred_core::hedge::HedgePolicy;
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_dca::config::DcaConfig;
use smartred_dca::replay::report_from_journal;
use smartred_dca::sim::{run_journaled, JournaledRun, SharedStrategy};
use smartred_desim::journal::{assert as jassert, EventKind, Journal, RunEvent};
use smartred_desim::time::SimTime;

const SEED: u64 = 20110620; // ICDCS 2011 opening day

/// The pinned runs: moderately chaotic (hangs, retries, quarantines) so
/// the digest covers the full event vocabulary, but small enough to run in
/// milliseconds.
fn golden_config() -> DcaConfig {
    let mut cfg = DcaConfig::paper_baseline(120, 20, 0.3, SEED);
    cfg.pool.unresponsive_rate = 0.05;
    cfg.retry = Some(RetryPolicy::default());
    cfg.quarantine = Some(QuarantinePolicy::default());
    cfg
}

fn golden_cases() -> Vec<(&'static str, SharedStrategy, &'static str)> {
    vec![
        (
            "tr-k3",
            Rc::new(Traditional::new(KVotes::new(3).unwrap())) as SharedStrategy,
            GOLDEN_TR_K3,
        ),
        (
            "pr-k9",
            Rc::new(Progressive::new(KVotes::new(9).unwrap())),
            GOLDEN_PR_K9,
        ),
        (
            "ir-d4",
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
            GOLDEN_IR_D4,
        ),
    ]
}

// The pinned digests. If an intentional behavior change shifts an event
// stream, regenerate with:
//   cargo test -p smartred-dca --test journal_golden print_golden_digests -- --ignored --nocapture
const GOLDEN_TR_K3: &str = "8d18bdabc015bf33";
const GOLDEN_PR_K9: &str = "6a79ae91648bc670";
const GOLDEN_IR_D4: &str = "d4aa2935481055e1";

/// The hedged-run golden config: the base chaotic knobs on a roomier pool
/// (hedging is best-effort and only duplicates onto *idle* nodes, so the
/// saturated 20-node pool of `golden_config` never fires a twin), plus a
/// hedge policy whose threshold (q70 of the duration window, ×1.0) lands
/// well inside the deadline. Every pinned journal contains launched
/// twins, and the won/wasted split is covered by the settlement identity.
fn hedged_golden_config(assignment: Assignment) -> DcaConfig {
    let mut cfg = DcaConfig::paper_baseline(120, 60, 0.3, SEED);
    cfg.pool.unresponsive_rate = 0.05;
    cfg.retry = Some(RetryPolicy::default());
    cfg.quarantine = Some(QuarantinePolicy::default());
    cfg.hedge = Some(HedgePolicy {
        quantile: 0.7,
        min_samples: 20,
        multiplier: 1.0,
        max_per_task: 1,
    });
    cfg.assignment = assignment;
    cfg
}

/// One pinned hedged run per assignment policy, all on the same seeded
/// strategy: the digests separate the three placement algorithms at event
/// granularity, so a silent change to any one of them fails exactly its
/// own pin.
fn hedged_golden_cases() -> Vec<(Assignment, &'static str)> {
    vec![
        (Assignment::Random, GOLDEN_HEDGED_RANDOM),
        (Assignment::RoundRobin, GOLDEN_HEDGED_ROUND_ROBIN),
        (Assignment::LeastLoaded, GOLDEN_HEDGED_LEAST_LOADED),
    ]
}

const GOLDEN_HEDGED_RANDOM: &str = "5df6a6f6d48785aa";
const GOLDEN_HEDGED_ROUND_ROBIN: &str = "b4b5635f11e0f001";
const GOLDEN_HEDGED_LEAST_LOADED: &str = "5868d11323eb2a8c";

/// Dumps a journal under `target/journal-artifacts/` so digest mismatches
/// leave an inspectable artifact (CI uploads the directory on failure).
fn dump_artifact(name: &str, journal: &Journal) -> String {
    let dir = std::path::Path::new("../../target/journal-artifacts");
    let path = dir.join(format!("{name}.jsonl"));
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(&path, journal.to_jsonl());
    }
    path.display().to_string()
}

fn golden_run(strategy: SharedStrategy) -> JournaledRun {
    run_journaled(strategy, &golden_config()).unwrap()
}

#[test]
fn journal_digests_match_pinned_golden_values() {
    for (name, strategy, expected) in golden_cases() {
        let run = golden_run(strategy);
        let digest = run.journal.digest_hex();
        if digest != expected {
            let path = dump_artifact(name, &run.journal);
            panic!(
                "journal digest drift for {name}: expected {expected}, got {digest} \
                 ({} events; journal dumped to {path})",
                run.journal.len()
            );
        }
    }
}

#[test]
fn hedged_journal_digests_match_pinned_values_per_assignment_policy() {
    let strategy = || Rc::new(Iterative::new(VoteMargin::new(4).unwrap())) as SharedStrategy;
    for (assignment, expected) in hedged_golden_cases() {
        let cfg = hedged_golden_config(assignment);
        let run = run_journaled(strategy(), &cfg).unwrap();
        // Every pinned journal must actually exercise the hedging
        // vocabulary, or the digest pins nothing interesting.
        assert!(
            run.journal.count(EventKind::HedgeLaunched) > 0,
            "{}: pinned run launched no hedges",
            assignment.name()
        );
        assert_eq!(
            run.report.hedges_launched,
            run.report.hedges_won + run.report.hedges_wasted,
            "{}: every launched twin settles exactly once",
            assignment.name()
        );
        let digest = run.journal.digest_hex();
        if digest != expected {
            let path = dump_artifact(&format!("hedged-{}", assignment.name()), &run.journal);
            panic!(
                "hedged journal digest drift for {}: expected {expected}, got {digest} \
                 ({} events; journal dumped to {path})",
                assignment.name(),
                run.journal.len()
            );
        }
        // Hedged journals replay to the live report like everything else.
        assert_eq!(
            report_from_journal(&run.journal, &cfg),
            run.report,
            "replayed hedged report drifted from live report for {}",
            assignment.name()
        );
    }
}

#[test]
fn explicit_random_assignment_preserves_the_unhedged_goldens() {
    // `Assignment::Random` routes through the historical dispatch path, so
    // setting it explicitly (without a hedge policy) must reproduce the
    // original pinned digests bit-for-bit: the assignment feature cannot
    // perturb pre-existing runs.
    for (name, strategy, expected) in golden_cases() {
        let mut cfg = golden_config();
        cfg.assignment = Assignment::Random;
        let run = run_journaled(strategy, &cfg).unwrap();
        assert_eq!(
            run.journal.digest_hex(),
            expected,
            "explicit Random assignment perturbed the golden journal for {name}"
        );
    }
}

#[test]
fn hedged_golden_digests_are_invariant_across_thread_settings() {
    let strategy = || Rc::new(Iterative::new(VoteMargin::new(4).unwrap())) as SharedStrategy;
    let mut digests: Vec<Vec<String>> = Vec::new();
    for threads in ["1", "8"] {
        std::env::set_var("SMARTRED_THREADS", threads);
        digests.push(
            hedged_golden_cases()
                .into_iter()
                .map(|(assignment, _)| {
                    run_journaled(strategy(), &hedged_golden_config(assignment))
                        .unwrap()
                        .journal
                        .digest_hex()
                })
                .collect(),
        );
    }
    std::env::remove_var("SMARTRED_THREADS");
    assert_eq!(
        digests[0], digests[1],
        "hedged journal digests drifted between SMARTRED_THREADS=1 and =8"
    );
}

#[test]
fn golden_digests_are_invariant_across_thread_settings() {
    // SMARTRED_THREADS parallelizes only the Monte-Carlo estimators; the
    // discrete-event runs behind the journal must not notice it. This is
    // enforced in-process here and across processes by the CI matrix.
    let mut digests: Vec<Vec<String>> = Vec::new();
    for threads in ["1", "8"] {
        std::env::set_var("SMARTRED_THREADS", threads);
        digests.push(
            golden_cases()
                .into_iter()
                .map(|(_, strategy, _)| golden_run(strategy).journal.digest_hex())
                .collect(),
        );
    }
    std::env::remove_var("SMARTRED_THREADS");
    assert_eq!(
        digests[0], digests[1],
        "journal digests drifted between SMARTRED_THREADS=1 and =8"
    );
}

#[test]
fn golden_journals_replay_to_the_exact_report() {
    let cfg = golden_config();
    for (name, strategy, _) in golden_cases() {
        let run = golden_run(strategy);
        assert_eq!(
            report_from_journal(&run.journal, &cfg),
            run.report,
            "replayed report drifted from live report for {name}"
        );
    }
}

#[test]
fn golden_journals_satisfy_behavioral_invariants() {
    for (name, strategy, _) in golden_cases() {
        let run = golden_run(strategy);
        let journal = &run.journal;
        jassert::that(journal)
            .time_ordered()
            .retry_follows_timeout()
            .no_dispatch_to_quarantined()
            .waves_well_formed()
            .count(EventKind::VerdictReached)
            .exactly(run.report.tasks_completed)
            .count(EventKind::JobDispatched)
            .exactly(run.report.total_jobs as usize)
            .count(EventKind::RunEnded)
            .exactly(1)
            .each_followed_by(
                "every dispatched job resolves or the run ends with it in flight",
                |e| matches!(e.event, RunEvent::JobDispatched { .. }),
                |d, later| match (d.event, later.event) {
                    (RunEvent::JobDispatched { job, .. }, RunEvent::JobReturned { job: j, .. })
                    | (RunEvent::JobDispatched { job, .. }, RunEvent::JobTimedOut { job: j, .. }) => {
                        job == j
                    }
                    (RunEvent::JobDispatched { .. }, RunEvent::RunEnded) => true,
                    _ => false,
                },
            );
        assert!(
            journal.count(EventKind::WaveOpened) >= run.report.tasks_completed,
            "{name}: every completed task opened at least one wave"
        );
    }
}

#[test]
fn golden_journals_round_trip_through_jsonl() {
    for (name, strategy, _) in golden_cases() {
        let run = golden_run(strategy);
        let restored = Journal::from_jsonl(&run.journal.to_jsonl()).unwrap();
        assert_eq!(
            restored.digest_hex(),
            run.journal.digest_hex(),
            "JSONL round-trip changed the digest for {name}"
        );
    }
}

#[test]
fn trace_exposes_scheduler_load_series() {
    let run = golden_run(Rc::new(Traditional::new(KVotes::new(3).unwrap())));
    // With 120 tasks on 20 nodes the run ends in a drain-out: the last
    // sample must show an empty queue, and the first busy window keeps
    // every node occupied.
    assert_eq!(run.trace.last("queue_depth"), Some(0.0));
    let mid: Vec<f64> = run
        .trace
        .between(
            "idle_nodes",
            SimTime::from_units(2.0),
            SimTime::from_units(4.0),
        )
        .map(|s| s.value)
        .collect();
    assert!(!mid.is_empty());
    assert!(
        mid.iter().all(|&idle| idle <= 1.0),
        "saturated window should keep nodes busy: {mid:?}"
    );
}

/// Regenerates the pinned constants. Run with `--ignored --nocapture` and
/// paste the output over the `GOLDEN_*` constants above.
#[test]
#[ignore]
fn print_golden_digests() {
    for (name, strategy, _) in golden_cases() {
        let run = golden_run(strategy);
        println!(
            "{name}: {} ({} events)",
            run.journal.digest_hex(),
            run.journal.len()
        );
    }
    for (assignment, _) in hedged_golden_cases() {
        let run = run_journaled(
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
            &hedged_golden_config(assignment),
        )
        .unwrap();
        println!(
            "hedged-{}: {} ({} events, {} hedges)",
            assignment.name(),
            run.journal.digest_hex(),
            run.journal.len(),
            run.report.hedges_launched
        );
    }
}
