//! Property-based tests of the DCA simulation: determinism, conservation
//! laws, and bounds that must hold for every configuration.

use std::rc::Rc;

use proptest::prelude::*;
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_dca::config::{DcaConfig, PoolConfig};
use smartred_dca::faults::FaultPlan;
use smartred_dca::pool::NodePool;
use smartred_dca::sim::{run, SharedStrategy};
use smartred_desim::rng::seeded_rng;

fn strategy_for(kind: u8, param: usize) -> SharedStrategy {
    match kind % 3 {
        0 => Rc::new(Traditional::new(KVotes::new(2 * param + 1).unwrap())),
        1 => Rc::new(Progressive::new(KVotes::new(2 * param + 1).unwrap())),
        _ => Rc::new(Iterative::new(VoteMargin::new(param + 1).unwrap())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical configuration and seed ⇒ identical report, across
    /// strategies and pool shapes.
    #[test]
    fn runs_are_deterministic(
        kind in 0u8..3,
        param in 1usize..4,
        tasks in 50usize..400,
        nodes in 5usize..100,
        wrong_pct in 0usize..6,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(tasks, nodes, wrong_pct as f64 / 10.0, seed);
        let a = run(strategy_for(kind, param), &cfg).unwrap();
        let b = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Conservation: every task ends exactly one way, and the job totals
    /// aggregate consistently.
    #[test]
    fn task_and_job_conservation(
        kind in 0u8..3,
        param in 1usize..4,
        tasks in 50usize..300,
        nodes in 5usize..80,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(tasks, nodes, 0.3, seed);
        let report = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert_eq!(
            report.tasks_completed + report.tasks_capped + report.tasks_stranded,
            tasks
        );
        prop_assert_eq!(report.tasks_stranded, 0, "no churn, so nothing strands");
        // All completed-task jobs are within the dispatched total.
        prop_assert!(report.jobs_per_task.total() <= report.total_jobs as f64 + 1e-9);
        // Utilization is a fraction.
        let u = report.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        prop_assert!(report.reliability() >= 0.0 && report.reliability() <= 1.0);
    }

    /// Fixed-k techniques never exceed k jobs on any task; their cost is
    /// bounded by k exactly.
    #[test]
    fn fixed_k_job_bounds(
        progressive in proptest::bool::ANY,
        half_k in 1usize..5,
        tasks in 50usize..300,
        seed in 0u64..1000,
    ) {
        let k = 2 * half_k + 1;
        let strategy: SharedStrategy = if progressive {
            Rc::new(Progressive::new(KVotes::new(k).unwrap()))
        } else {
            Rc::new(Traditional::new(KVotes::new(k).unwrap()))
        };
        let cfg = DcaConfig::paper_baseline(tasks, 50, 0.3, seed);
        let report = run(strategy, &cfg).unwrap();
        prop_assert!(report.max_jobs_single_task() <= k as f64);
        prop_assert!(report.cost_factor() <= k as f64 + 1e-9);
        if !progressive {
            prop_assert_eq!(report.cost_factor(), k as f64);
        }
    }

    /// Response times are within physical bounds: at least one job's
    /// minimum duration, and no larger than the whole makespan.
    #[test]
    fn response_times_are_physical(
        kind in 0u8..3,
        param in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(200, 40, 0.3, seed);
        let report = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert!(report.response_time.min() >= 0.5 - 1e-9);
        prop_assert!(report.response_time.max() <= report.makespan_units + 1e-9);
    }

    /// The node pool's idle-set bookkeeping survives any interleaving of
    /// churn (depart/join), scheduling (claim/release), and discipline
    /// (quarantine/unquarantine) operations.
    #[test]
    fn pool_invariants_hold_under_churn(
        ops in proptest::collection::vec((0u8..6, 0usize..1024), 1..200),
        size in 1usize..20,
        seed in 0u64..1000,
    ) {
        let cfg = PoolConfig::uniform(size, 0.3);
        let mut rng = seeded_rng(seed);
        let mut pool = NodePool::from_config(&cfg, &mut rng);
        let mut claimed: Vec<usize> = Vec::new();
        for (op, pick) in ops {
            match op {
                0 => {
                    if let Some(n) = pool.claim_random_idle(&[], &mut rng) {
                        claimed.push(n);
                    }
                }
                1 => {
                    if !claimed.is_empty() {
                        let n = claimed.swap_remove(pick % claimed.len());
                        pool.release(n);
                    }
                }
                2 => {
                    let _orphan = pool.depart(pick % pool.capacity());
                }
                3 => {
                    pool.spawn_node(&cfg, &mut rng);
                }
                4 => pool.quarantine(pick % pool.capacity()),
                _ => pool.unquarantine(pick % pool.capacity()),
            }
            let check = pool.check_invariants();
            prop_assert!(check.is_ok(), "{}", check.unwrap_err());
            prop_assert!(pool.idle_count() <= pool.alive_count());
            prop_assert!(pool.quarantined_count() <= pool.alive_count());
        }
    }

    /// A full resilience stack — retry, quarantine, degradation, a fault
    /// plan, and churn at once — still conserves every task and reproduces
    /// bit-for-bit from its seed.
    #[test]
    fn chaotic_runs_conserve_tasks_and_reproduce(
        kind in 0u8..3,
        tasks in 50usize..200,
        nodes in 10usize..60,
        seed in 0u64..1000,
    ) {
        let mut cfg = DcaConfig::paper_baseline(tasks, nodes, 0.3, seed);
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.degraded_accept = true;
        cfg.job_cap = Some(15);
        cfg.faults = Some(
            FaultPlan::new()
                .crash_at(1.0, (seed as usize) % nodes)
                .hang_window(0.5, 3.0, (seed as usize + 1) % nodes)
                .collusion_burst(2.0, 2.0, 0.3)
                .blackout(4.0, 0.5),
        );
        let a = run(strategy_for(kind, 2), &cfg).unwrap();
        let b = run(strategy_for(kind, 2), &cfg).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            a.tasks_completed + a.tasks_capped + a.tasks_stranded,
            tasks
        );
        prop_assert_eq!(a.faults_injected, 4);
    }
}
