//! Property-based tests of the DCA simulation: determinism, conservation
//! laws, and bounds that must hold for every configuration.

use std::rc::Rc;

use proptest::prelude::*;
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::{run, SharedStrategy};

fn strategy_for(kind: u8, param: usize) -> SharedStrategy {
    match kind % 3 {
        0 => Rc::new(Traditional::new(KVotes::new(2 * param + 1).unwrap())),
        1 => Rc::new(Progressive::new(KVotes::new(2 * param + 1).unwrap())),
        _ => Rc::new(Iterative::new(VoteMargin::new(param + 1).unwrap())),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical configuration and seed ⇒ identical report, across
    /// strategies and pool shapes.
    #[test]
    fn runs_are_deterministic(
        kind in 0u8..3,
        param in 1usize..4,
        tasks in 50usize..400,
        nodes in 5usize..100,
        wrong_pct in 0usize..6,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(tasks, nodes, wrong_pct as f64 / 10.0, seed);
        let a = run(strategy_for(kind, param), &cfg).unwrap();
        let b = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Conservation: every task ends exactly one way, and the job totals
    /// aggregate consistently.
    #[test]
    fn task_and_job_conservation(
        kind in 0u8..3,
        param in 1usize..4,
        tasks in 50usize..300,
        nodes in 5usize..80,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(tasks, nodes, 0.3, seed);
        let report = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert_eq!(
            report.tasks_completed + report.tasks_capped + report.tasks_stranded,
            tasks
        );
        prop_assert_eq!(report.tasks_stranded, 0, "no churn, so nothing strands");
        // All completed-task jobs are within the dispatched total.
        prop_assert!(report.jobs_per_task.total() <= report.total_jobs as f64 + 1e-9);
        // Utilization is a fraction.
        let u = report.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        prop_assert!(report.reliability() >= 0.0 && report.reliability() <= 1.0);
    }

    /// Fixed-k techniques never exceed k jobs on any task; their cost is
    /// bounded by k exactly.
    #[test]
    fn fixed_k_job_bounds(
        progressive in proptest::bool::ANY,
        half_k in 1usize..5,
        tasks in 50usize..300,
        seed in 0u64..1000,
    ) {
        let k = 2 * half_k + 1;
        let strategy: SharedStrategy = if progressive {
            Rc::new(Progressive::new(KVotes::new(k).unwrap()))
        } else {
            Rc::new(Traditional::new(KVotes::new(k).unwrap()))
        };
        let cfg = DcaConfig::paper_baseline(tasks, 50, 0.3, seed);
        let report = run(strategy, &cfg).unwrap();
        prop_assert!(report.max_jobs_single_task() <= k as f64);
        prop_assert!(report.cost_factor() <= k as f64 + 1e-9);
        if !progressive {
            prop_assert_eq!(report.cost_factor(), k as f64);
        }
    }

    /// Response times are within physical bounds: at least one job's
    /// minimum duration, and no larger than the whole makespan.
    #[test]
    fn response_times_are_physical(
        kind in 0u8..3,
        param in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = DcaConfig::paper_baseline(200, 40, 0.3, seed);
        let report = run(strategy_for(kind, param), &cfg).unwrap();
        prop_assert!(report.response_time.min() >= 0.5 - 1e-9);
        prop_assert!(report.response_time.max() <= report.makespan_units + 1e-9);
    }
}
