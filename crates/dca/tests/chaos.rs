//! The chaos acceptance scenario: a run that combines scheduled crashes,
//! a hang window, a correlated collusion burst, and background churn, with
//! the full resilience stack (retry-with-backoff, node quarantine, and
//! graceful degradation) enabled — and must still finish every task and
//! reproduce bit for bit from its seed.

use std::rc::Rc;

use smartred_core::params::VoteMargin;
use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred_core::strategy::Iterative;
use smartred_dca::config::{ChurnConfig, DcaConfig};
use smartred_dca::faults::FaultPlan;
use smartred_dca::sim::run;

fn chaos_config(seed: u64) -> DcaConfig {
    let mut cfg = DcaConfig::paper_baseline(2_000, 100, 0.3, seed);
    cfg.job_cap = Some(15);
    cfg.retry = Some(RetryPolicy {
        max_retries: 2,
        base_units: 0.25,
        multiplier: 2.0,
        jitter: 0.25,
    });
    cfg.quarantine = Some(QuarantinePolicy {
        strike_limit: 2,
        quarantine_units: 4.0,
        blacklist_after: 5,
    });
    cfg.degraded_accept = true;
    cfg.churn = Some(ChurnConfig {
        leave_rate: 0.4,
        join_rate: 0.4,
    });
    cfg.faults = Some(
        FaultPlan::new()
            .crash_at(1.0, 3)
            .crash_at(2.5, 17)
            .hang_window(0.5, 6.0, 8)
            .straggler(1.0, 8.0, 21, 10.0)
            .collusion_burst(3.0, 3.0, 0.4)
            .blackout(7.0, 0.75),
    );
    cfg
}

#[test]
fn chaos_run_completes_every_task_with_resilience_engaged() {
    let cfg = chaos_config(4242);
    let report = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();

    // Every task reaches a verdict: the job cap plus degraded acceptance
    // guarantee termination even under crashes, hangs, and collusion.
    // (Capped tasks are ties with no leader to accept.)
    assert_eq!(
        report.tasks_completed + report.tasks_capped,
        2_000,
        "no task may be lost or stranded"
    );
    assert_eq!(report.tasks_stranded, 0);

    // Each fault-plan entry fired.
    assert_eq!(report.faults_injected, 6);
    assert_eq!(report.crashes, 2);

    // The resilience layer visibly engaged.
    assert!(report.timeouts > 0, "hangs and blackout produce timeouts");
    assert!(report.retries > 0, "timeouts are retried with backoff");
    assert!(
        report.quarantines > 0,
        "repeat offenders are quarantined (quarantines {})",
        report.quarantines
    );

    // Degraded verdicts carry a Bayesian confidence each.
    if report.tasks_degraded > 0 {
        assert_eq!(
            report.degraded_confidence.count(),
            report.tasks_degraded as u64,
            "every degraded verdict records its confidence"
        );
        let q = report.mean_degraded_confidence();
        assert!(q > 0.0 && q <= 1.0, "confidence {q}");
    }

    // Despite the adversity, most verdicts are still correct. The bound is
    // loose on purpose: while the collusion burst is live, ~40% of the pool
    // plus the baseline 30% liars can outvote honest nodes on the tasks in
    // flight, and no redundancy strategy survives a corrupted majority
    // (§2.2) — the run's reliability reflects the burst's share of the run.
    assert!(
        report.reliability() > 0.8,
        "reliability {}",
        report.reliability()
    );
}

#[test]
fn chaos_run_reproduces_bit_for_bit() {
    let cfg = chaos_config(99);
    let s = || Rc::new(Iterative::new(VoteMargin::new(4).unwrap()));
    let a = run(s(), &cfg).unwrap();
    let b = run(s(), &cfg).unwrap();
    assert_eq!(a, b, "same seed + same fault plan must reproduce exactly");
}

#[test]
fn different_seeds_diverge_under_the_same_plan() {
    // The plan fixes *when* things break; the seed still drives who
    // colludes, how long jobs take, and the backoff jitter.
    let s = || Rc::new(Iterative::new(VoteMargin::new(4).unwrap()));
    let a = run(s(), &chaos_config(1)).unwrap();
    let b = run(s(), &chaos_config(2)).unwrap();
    assert_ne!(a, b);
}
