//! Run metrics — the quantities the paper's simulation runs record (§4.1):
//! completion time, total jobs, jobs per task (mean and max), correct
//! tasks, and response times (mean and max).

use smartred_stats::Summary;

/// Aggregate metrics of one DCA simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaReport {
    /// Tasks that reached a verdict.
    pub tasks_completed: usize,
    /// Completed tasks whose verdict was correct.
    pub tasks_correct: usize,
    /// Tasks aborted by the per-task job cap.
    pub tasks_capped: usize,
    /// Tasks left unfinished because the run ran out of nodes (all
    /// volunteers departed with work still queued).
    pub tasks_stranded: usize,
    /// Jobs per completed task.
    pub jobs_per_task: Summary,
    /// Waves per completed task.
    pub waves_per_task: Summary,
    /// Response time per completed task, in time units (first dispatch to
    /// verdict).
    pub response_time: Summary,
    /// Tasks whose verdict was accepted *degraded*: the vote leader taken
    /// at the job cap or at pool starvation, under
    /// `DcaConfig::degraded_accept`. Degraded tasks also count in
    /// `tasks_completed`.
    pub tasks_degraded: usize,
    /// Bayesian confidence `q(r, a, b)` of each degraded verdict.
    pub degraded_confidence: Summary,
    /// Total jobs dispatched (including jobs of capped tasks).
    pub total_jobs: u64,
    /// Jobs that timed out (no response from the node).
    pub timeouts: u64,
    /// Timed-out jobs retried with backoff instead of being charged to the
    /// vote.
    pub retries: u64,
    /// Quarantines imposed on striking nodes.
    pub quarantines: u64,
    /// Nodes permanently blacklisted after repeated quarantines.
    pub blacklisted: u64,
    /// Scheduled fault-plan events injected (crashes, hang windows,
    /// stragglers, collusion bursts, blackouts).
    pub faults_injected: u64,
    /// Fault-plan node crashes that removed a live node.
    pub crashes: u64,
    /// Nodes that left mid-run (churn).
    pub departures: u64,
    /// Nodes that joined mid-run (churn).
    pub arrivals: u64,
    /// Regional outages that struck during the run.
    pub outages: u64,
    /// Local recomputations performed by the audit layer (each costs one
    /// job-equivalent of coordinator compute).
    pub audits: u64,
    /// Results an audit caught contradicting the local recomputation.
    pub audit_failures: u64,
    /// Tainted verdicts voided before acceptance (the task re-ran).
    pub verdicts_voided: u64,
    /// Open tasks re-tallied because a caught liar had touched them.
    pub tasks_retallied: u64,
    /// Hedge twins launched for straggling jobs (quantile-triggered
    /// duplicates; not counted in `total_jobs` or the wave accounting).
    pub hedges_launched: u64,
    /// Hedge twins that beat their straggling origin and supplied the vote.
    pub hedges_won: u64,
    /// Hedge twins whose work was discarded (origin answered first, or the
    /// twin itself lapsed).
    pub hedges_wasted: u64,
    /// Input-payload transfers charged (zero unless `DcaConfig::network`
    /// is set; hedge twins pay their own transfer).
    pub transfers: u64,
    /// Total payload bytes moved by those transfers.
    pub bytes_moved: u64,
    /// Simulated time at which the last task completed.
    pub makespan_units: f64,
    /// Total node-busy time in unit-seconds (each dispatched job occupies
    /// its node for its duration, or for the timeout window if it hangs).
    pub busy_node_units: f64,
    /// Node-time capacity of the run: pool size × makespan (churn-adjusted
    /// runs should interpret this as an approximation).
    pub capacity_node_units: f64,
}

impl DcaReport {
    pub(crate) fn new() -> Self {
        Self {
            tasks_completed: 0,
            tasks_correct: 0,
            tasks_capped: 0,
            tasks_stranded: 0,
            jobs_per_task: Summary::new(),
            waves_per_task: Summary::new(),
            response_time: Summary::new(),
            tasks_degraded: 0,
            degraded_confidence: Summary::new(),
            total_jobs: 0,
            timeouts: 0,
            retries: 0,
            quarantines: 0,
            blacklisted: 0,
            faults_injected: 0,
            crashes: 0,
            departures: 0,
            arrivals: 0,
            outages: 0,
            audits: 0,
            audit_failures: 0,
            verdicts_voided: 0,
            tasks_retallied: 0,
            hedges_launched: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            transfers: 0,
            bytes_moved: 0,
            makespan_units: 0.0,
            busy_node_units: 0.0,
            capacity_node_units: 0.0,
        }
    }

    /// Mean fraction of node-time spent executing jobs.
    ///
    /// §5.2 argues that because tasks far outnumber nodes, "no node will
    /// ever be idle and all nodes' processing capability will be fully
    /// utilized" — this metric makes the claim measurable (expect ≈ 1 under
    /// task-heavy load, minus only the drain-out tail).
    pub fn utilization(&self) -> f64 {
        if self.capacity_node_units == 0.0 {
            return 0.0;
        }
        self.busy_node_units / self.capacity_node_units
    }

    /// Empirical system reliability: correct verdicts over completed tasks.
    pub fn reliability(&self) -> f64 {
        if self.tasks_completed == 0 {
            return 0.0;
        }
        self.tasks_correct as f64 / self.tasks_completed as f64
    }

    /// Empirical cost factor: mean jobs per completed task.
    pub fn cost_factor(&self) -> f64 {
        self.jobs_per_task.mean()
    }

    /// Total work performed, in job-equivalents: dispatched jobs plus the
    /// audit layer's local recomputations plus hedge twins — the basis of
    /// matched-cost comparisons between strategies.
    pub fn total_cost(&self) -> u64 {
        self.total_jobs + self.audits + self.hedges_launched
    }

    /// Mean response time per task, in time units.
    pub fn mean_response(&self) -> f64 {
        self.response_time.mean()
    }

    /// Mean Bayesian confidence across degraded verdicts (0 if none).
    pub fn mean_degraded_confidence(&self) -> f64 {
        self.degraded_confidence.mean()
    }

    /// Largest number of jobs any single task used.
    pub fn max_jobs_single_task(&self) -> f64 {
        if self.jobs_per_task.count() == 0 {
            0.0
        } else {
            self.jobs_per_task.max()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_zeroed() {
        let r = DcaReport::new();
        assert_eq!(r.reliability(), 0.0);
        assert_eq!(r.cost_factor(), 0.0);
        assert_eq!(r.max_jobs_single_task(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let mut r = DcaReport::new();
        r.tasks_completed = 4;
        r.tasks_correct = 3;
        r.jobs_per_task.extend([3.0, 5.0, 7.0, 5.0]);
        assert_eq!(r.reliability(), 0.75);
        assert_eq!(r.cost_factor(), 5.0);
        assert_eq!(r.max_jobs_single_task(), 7.0);
    }
}
