//! Job bookkeeping: identities, outcomes, and the dispatch registry.

use crate::pool::NodeIndex;

/// Identifier of a dispatched job (dense index into the job registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) usize);

impl JobId {
    /// Returns the raw index.
    pub fn get(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// How a job's execution turned out, drawn when the job is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The node reports the correct value after its duration elapses.
    Correct,
    /// The node reports the colluding wrong value after its duration
    /// elapses (Byzantine worst case: all failures agree, §2.2).
    Wrong,
    /// The node never reports; the server's timeout resolves the job.
    NoResponse,
}

/// Registry entry for one dispatched job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSlot {
    /// The task this job belongs to.
    pub task: usize,
    /// The node executing it.
    pub node: NodeIndex,
    /// The predetermined outcome.
    pub outcome: JobOutcome,
    /// The task's replica attempt when the job was dispatched; replies
    /// from attempts superseded by an audit void/re-tally are dropped as
    /// stale.
    pub attempt: u32,
    /// Set once the job has been resolved (completion, timeout, or node
    /// departure) so late events for it are ignored.
    pub resolved: bool,
}

/// Dense registry of all jobs dispatched during a run.
#[derive(Debug, Clone, Default)]
pub struct JobRegistry {
    slots: Vec<JobSlot>,
}

impl JobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dispatched job and returns its id.
    pub fn dispatch(
        &mut self,
        task: usize,
        node: NodeIndex,
        outcome: JobOutcome,
        attempt: u32,
    ) -> JobId {
        let id = JobId(self.slots.len());
        self.slots.push(JobSlot {
            task,
            node,
            outcome,
            attempt,
            resolved: false,
        });
        id
    }

    /// Looks up a job.
    pub fn get(&self, id: JobId) -> &JobSlot {
        &self.slots[id.0]
    }

    /// Marks a job resolved, returning its slot. Returns `None` if it was
    /// already resolved (e.g. a timeout firing after a node-departure
    /// already settled the job).
    pub fn resolve(&mut self, id: JobId) -> Option<JobSlot> {
        let slot = &mut self.slots[id.0];
        if slot.resolved {
            None
        } else {
            slot.resolved = true;
            Some(*slot)
        }
    }

    /// Total jobs ever dispatched.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no job has been dispatched yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_assigns_sequential_ids() {
        let mut reg = JobRegistry::new();
        let a = reg.dispatch(0, 1, JobOutcome::Correct, 0);
        let b = reg.dispatch(0, 2, JobOutcome::Wrong, 1);
        assert_eq!(a.get(), 0);
        assert_eq!(b.get(), 1);
        assert_eq!(reg.get(b).attempt, 1);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn resolve_is_single_shot() {
        let mut reg = JobRegistry::new();
        let id = reg.dispatch(3, 7, JobOutcome::NoResponse, 0);
        let slot = reg.resolve(id).unwrap();
        assert_eq!(slot.task, 3);
        assert_eq!(slot.node, 7);
        assert_eq!(slot.outcome, JobOutcome::NoResponse);
        assert!(reg.resolve(id).is_none());
        assert!(reg.get(id).resolved);
    }

    #[test]
    fn display_formats_id() {
        assert_eq!(JobId(5).to_string(), "job-5");
    }
}
