//! Cross-check mode: recompute a [`DcaReport`] from a run's journal.
//!
//! The simulator builds its report incrementally as events fire; this
//! module derives the same report purely from the recorded
//! [`Journal`](smartred_desim::journal::Journal). Because every metric is a
//! fold over journal events in stream order — including the order-sensitive
//! Welford summaries — the two must agree **exactly**, so any drift between
//! the aggregate bookkeeping and the actual trajectory is a test failure,
//! not a silent skew.
//!
//! Replay needs the [`DcaConfig`] only for quantities the journal does not
//! carry: the task count (to derive stranded tasks) and the pool size (for
//! node-time capacity).

use smartred_desim::journal::{DepartureReason, EventKind, Journal, RunEvent};
use smartred_desim::time::SimTime;

use crate::config::DcaConfig;
use crate::metrics::DcaReport;

/// Per-task accumulation while folding over the event stream.
#[derive(Clone, Copy, Default)]
struct TaskAcc {
    first_dispatch: Option<SimTime>,
    jobs: u64,
    waves: u32,
}

/// Recomputes the full [`DcaReport`] of a journaled run from its journal.
///
/// For any [`run_journaled`](crate::sim::run_journaled) result, the output
/// equals [`JournaledRun::report`](crate::sim::JournaledRun) exactly
/// (`==`, including every Welford summary bit).
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::Traditional;
/// use smartred_dca::config::DcaConfig;
/// use smartred_dca::replay::report_from_journal;
/// use smartred_dca::sim::run_journaled;
///
/// let cfg = DcaConfig::paper_baseline(50, 10, 0.3, 9);
/// let run = run_journaled(Rc::new(Traditional::new(KVotes::new(3)?)), &cfg)?;
/// assert_eq!(report_from_journal(&run.journal, &cfg), run.report);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn report_from_journal(journal: &Journal, cfg: &DcaConfig) -> DcaReport {
    let mut report = DcaReport::new();
    let mut tasks = vec![TaskAcc::default(); cfg.tasks];
    for e in journal.events() {
        match e.event {
            RunEvent::JobDispatched { task, eta, .. } => {
                report.total_jobs += 1;
                // Same f64 and same addition order as the live run, which
                // accumulates each job's planned busy time at dispatch.
                report.busy_node_units += eta.since(e.at).as_units();
                let acc = &mut tasks[task as usize];
                if acc.first_dispatch.is_none() {
                    acc.first_dispatch = Some(e.at);
                }
            }
            RunEvent::WaveOpened { task, jobs, .. } => {
                let acc = &mut tasks[task as usize];
                acc.jobs += jobs as u64;
                acc.waves += 1;
            }
            RunEvent::JobTimedOut { .. } => report.timeouts += 1,
            RunEvent::JobRetried { .. } => report.retries += 1,
            RunEvent::NodeQuarantined { .. } => report.quarantines += 1,
            RunEvent::NodeDeparted { reason, .. } => match reason {
                DepartureReason::Blacklist => report.blacklisted += 1,
                DepartureReason::Crash => report.crashes += 1,
                DepartureReason::Churn => report.departures += 1,
            },
            RunEvent::NodeJoined { .. } => report.arrivals += 1,
            RunEvent::OutageStarted { .. } => report.outages += 1,
            RunEvent::FaultInjected { .. } => report.faults_injected += 1,
            RunEvent::VerdictReached {
                task,
                value,
                degraded,
                confidence,
            } => {
                report.tasks_completed += 1;
                if value {
                    report.tasks_correct += 1;
                }
                if degraded {
                    report.tasks_degraded += 1;
                    report.degraded_confidence.record(confidence);
                }
                let acc = tasks[task as usize];
                report.jobs_per_task.record(acc.jobs as f64);
                report.waves_per_task.record(acc.waves as f64);
                let response = match acc.first_dispatch {
                    Some(started) => e.at.since(started).as_units(),
                    // A task settled without ever dispatching (degraded
                    // acceptance under starvation) has zero response time.
                    None => 0.0,
                };
                report.response_time.record(response);
            }
            RunEvent::TaskCapped { .. } => report.tasks_capped += 1,
            RunEvent::HedgeLaunched { .. } => report.hedges_launched += 1,
            RunEvent::HedgeWon { .. } => report.hedges_won += 1,
            RunEvent::HedgeWasted { .. } => report.hedges_wasted += 1,
            RunEvent::AuditScheduled { .. } => report.audits += 1,
            RunEvent::AuditFailed { .. } => report.audit_failures += 1,
            // A void or re-tally restarts the task from wave 1 with a
            // fresh budget; only the final attempt's jobs and waves count
            // in the per-task summaries, mirroring the live bookkeeping.
            RunEvent::VerdictVoided { task } => {
                report.verdicts_voided += 1;
                let acc = &mut tasks[task as usize];
                acc.jobs = 0;
                acc.waves = 0;
            }
            RunEvent::TaskRetallied { task } => {
                report.tasks_retallied += 1;
                let acc = &mut tasks[task as usize];
                acc.jobs = 0;
                acc.waves = 0;
            }
            RunEvent::TransferStarted { bytes, .. } => {
                report.transfers += 1;
                report.bytes_moved += bytes;
            }
            RunEvent::RunEnded => report.makespan_units = e.at.as_units(),
            RunEvent::JobReturned { .. }
            | RunEvent::WaveClosed { .. }
            | RunEvent::VoteTallied { .. }
            | RunEvent::NodeReleased { .. }
            | RunEvent::WorkerCrashed { .. }
            | RunEvent::WorkerRestarted { .. }
            | RunEvent::TaskPoisoned { .. }
            | RunEvent::StaleReplyDropped { .. }
            | RunEvent::EpochAdvanced { .. }
            | RunEvent::TransferCompleted { .. }
            | RunEvent::StageDecided { .. }
            | RunEvent::PoisonPropagated { .. }
            | RunEvent::AuditPassed { .. }
            // Checkpoint seals are a WAL-compaction artifact of the live
            // runtime; simulator journals never carry one, and a seal
            // contributes nothing to the simulated metrics.
            | RunEvent::CheckpointTaken { .. } => {}
        }
    }
    debug_assert_eq!(
        journal.count(EventKind::RunEnded),
        1,
        "a complete journal carries exactly one run-ended event"
    );
    report.tasks_stranded = cfg.tasks - report.tasks_completed - report.tasks_capped;
    report.capacity_node_units = cfg.pool.size as f64 * report.makespan_units;
    report
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use smartred_core::params::{KVotes, VoteMargin};
    use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
    use smartred_core::strategy::{Iterative, Progressive, Traditional};

    use super::*;
    use crate::config::{ChurnConfig, TimeoutPolicy};
    use crate::faults::FaultPlan;
    use crate::sim::{run, run_journaled};

    #[test]
    fn replay_matches_live_report_on_baseline() {
        let cfg = DcaConfig::paper_baseline(400, 60, 0.3, 31);
        for strategy in [
            Rc::new(Traditional::new(KVotes::new(3).unwrap())) as crate::sim::SharedStrategy,
            Rc::new(Progressive::new(KVotes::new(9).unwrap())),
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
        ] {
            let journaled = run_journaled(strategy, &cfg).unwrap();
            assert_eq!(
                report_from_journal(&journaled.journal, &cfg),
                journaled.report
            );
        }
    }

    #[test]
    fn replay_matches_live_report_under_full_chaos() {
        let mut cfg = DcaConfig::paper_baseline(600, 50, 0.3, 32);
        cfg.pool.unresponsive_rate = 0.1;
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.degraded_accept = true;
        cfg.job_cap = Some(12);
        cfg.churn = Some(ChurnConfig {
            leave_rate: 0.3,
            join_rate: 0.3,
        });
        cfg.faults = Some(
            FaultPlan::new()
                .crash_at(1.0, 3)
                .hang_window(2.0, 4.0, 5)
                .straggler(1.5, 6.0, 7, 8.0)
                .collusion_burst(3.0, 2.0, 0.4)
                .blackout(6.0, 1.0),
        );
        let journaled =
            run_journaled(Rc::new(Iterative::new(VoteMargin::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(
            report_from_journal(&journaled.journal, &cfg),
            journaled.report
        );
    }

    #[test]
    fn replay_matches_under_reissue_policy() {
        let mut cfg = DcaConfig::paper_baseline(300, 40, 0.0, 33);
        cfg.pool.unresponsive_rate = 0.3;
        cfg.timeout_policy = TimeoutPolicy::Reissue;
        let journaled =
            run_journaled(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(
            report_from_journal(&journaled.journal, &cfg),
            journaled.report
        );
        assert!(journaled.report.timeouts > 0);
    }

    #[test]
    fn replay_matches_live_report_with_audits_and_cartel() {
        use smartred_core::audit::AuditPolicy;

        use crate::config::CartelConfig;

        let mut cfg = DcaConfig::paper_baseline(800, 50, 0.2, 35);
        cfg.pool.unresponsive_rate = 0.05;
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.audit = AuditPolicy::spot(0.2);
        cfg.cartel = Some(CartelConfig {
            members: 15,
            lie_rate: 0.3,
            dormancy_units: 5.0,
        });
        let journaled =
            run_journaled(Rc::new(Iterative::new(VoteMargin::new(3).unwrap())), &cfg).unwrap();
        assert!(journaled.report.audits > 0);
        assert!(journaled.report.verdicts_voided > 0);
        assert!(journaled.report.tasks_retallied > 0);
        assert_eq!(
            report_from_journal(&journaled.journal, &cfg),
            journaled.report
        );
    }

    #[test]
    fn replay_matches_live_report_with_network_charges() {
        use smartred_core::hedge::HedgePolicy;
        use smartred_desim::network::LinkSpec;
        use smartred_desim::time::SimDuration;

        use crate::config::NetworkConfig;

        let mut cfg = DcaConfig::paper_baseline(300, 40, 0.25, 36);
        cfg.network = Some(NetworkConfig {
            link: LinkSpec::new(48 * 1024, SimDuration::from_units(0.05)),
            payload_bytes: 16 * 1024,
        });
        cfg.hedge = Some(HedgePolicy::default());
        let journaled =
            run_journaled(Rc::new(Iterative::new(VoteMargin::new(3).unwrap())), &cfg).unwrap();
        // Every vote job and every hedge twin paid a transfer.
        assert_eq!(
            journaled.report.transfers,
            journaled.report.total_jobs + journaled.report.hedges_launched
        );
        assert_eq!(
            journaled.report.bytes_moved,
            journaled.report.transfers * 16 * 1024
        );
        assert_eq!(
            report_from_journal(&journaled.journal, &cfg),
            journaled.report
        );
        // Transfers lengthen the run relative to free communication.
        let free = run(
            Rc::new(Iterative::new(VoteMargin::new(3).unwrap())),
            &DcaConfig {
                network: None,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert!(journaled.report.makespan_units > free.makespan_units);
    }

    #[test]
    fn journaling_never_perturbs_the_run() {
        let mut cfg = DcaConfig::paper_baseline(500, 50, 0.3, 34);
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let plain = run(s(), &cfg).unwrap();
        let journaled = run_journaled(s(), &cfg).unwrap();
        assert_eq!(plain, journaled.report);
        assert!(!journaled.journal.is_empty());
    }
}
