//! The event-driven DCA model of Figure 1.
//!
//! A task server subdivides the computation into tasks, creates jobs, and
//! assigns each job to a random idle node; nodes return results after a
//! stochastic duration (or hang until the server's timeout); the strategy
//! decides wave by wave whether to deploy more jobs or accept a verdict.
//!
//! Two modeling choices worth calling out:
//!
//! * **Retry priority.** Top-up waves (wave ≥ 2) jump the job queue. In a
//!   saturated system (tasks ≫ nodes, as in the paper's runs) this keeps a
//!   task's response time equal to its own execution waves rather than
//!   coupling it to global queue depth — matching both BOINC's retry
//!   prioritization and the 1–3 time-unit response times of Figure 6.
//! * **Slow jobs time out.** A job whose execution would outlast the server
//!   timeout is indistinguishable from a hang, so it resolves via the
//!   timeout path.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use rand::Rng;
use smartred_core::analysis::confidence::confidence;
use smartred_core::audit::Cartel;
use smartred_core::error::ParamError;
use smartred_core::execution::{TaskExecution, WaveStep};
use smartred_core::hedge::HedgeTrigger;
use smartred_core::params::Reliability;
use smartred_core::resilience::DisciplineAction;
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::engine::Simulator;
use smartred_desim::journal::{DepartureReason, FaultKind, Journal, RunEvent};
use smartred_desim::network::NetworkModel;
use smartred_desim::rng::{backoff_duration, seeded_rng, SimRng};
use smartred_desim::time::{SimDuration, SimTime};
use smartred_desim::trace::Trace;

use crate::config::{DcaConfig, FailureConfig, TimeoutPolicy};
use crate::faults::FaultEvent;
use crate::job::{JobId, JobOutcome, JobRegistry};
use crate::metrics::DcaReport;
use crate::pool::{NodeIndex, NodePool};

/// A shared, immutable redundancy strategy driving every task of a run.
pub type SharedStrategy = Rc<dyn RedundancyStrategy<bool>>;

/// A task suffers at most this many audit voids: a verdict that
/// keeps coming back tainted (e.g. a majority cartel with no discipline to
/// thin it) is eventually accepted as-is rather than looping forever.
const MAX_TASK_VOIDS: u32 = 4;

struct TaskState {
    exec: TaskExecution<bool, SharedStrategy>,
    started_at: Option<SimTime>,
    used_nodes: Vec<NodeIndex>,
    shocked: bool,
    finished: bool,
    /// Timed-out jobs retried with backoff so far (`retry` policy).
    retries: u32,
    /// Recorded `(node, voted_correct)` pairs, kept under a quarantine
    /// policy (to strike vote-losers at finalization) or an audit policy
    /// (to identify liars at spot-check time).
    votes: Vec<(NodeIndex, bool)>,
    /// Replica attempt, bumped when an audit voids or re-tallies the task;
    /// in-flight jobs from older attempts resolve as stale replies.
    attempt: u32,
    /// Set when a probation-node result landed: the verdict must be
    /// audited before acceptance regardless of the spot-check draw.
    must_audit: bool,
    /// Audit voids suffered so far (see [`MAX_TASK_VOIDS`]).
    voids: u32,
}

/// Active fault-plan effects, updated by injected events and consulted at
/// every dispatch/outcome draw. Per-node vectors are indexed by
/// [`NodeIndex`] and grown on demand (churn can add nodes after a window
/// opened; latecomers are unaffected by node-targeted windows).
#[derive(Default)]
struct ChaosState {
    hang_until: Vec<SimTime>,
    slow_until: Vec<(SimTime, f64)>,
    colluding: Vec<bool>,
    collusion_until: SimTime,
    blackout_until: SimTime,
}

impl ChaosState {
    fn hang_active(&self, node: NodeIndex, now: SimTime) -> bool {
        self.hang_until.get(node).is_some_and(|&until| until > now)
    }

    fn slow_factor(&self, node: NodeIndex, now: SimTime) -> f64 {
        match self.slow_until.get(node) {
            Some(&(until, factor)) if until > now => factor,
            _ => 1.0,
        }
    }

    fn is_colluding(&self, node: NodeIndex, now: SimTime) -> bool {
        self.collusion_until > now && self.colluding.get(node).copied().unwrap_or(false)
    }

    fn set_hang(&mut self, node: NodeIndex, until: SimTime) {
        if self.hang_until.len() <= node {
            self.hang_until.resize(node + 1, SimTime::ZERO);
        }
        if until > self.hang_until[node] {
            self.hang_until[node] = until;
        }
    }

    fn set_slow(&mut self, node: NodeIndex, until: SimTime, factor: f64) {
        if self.slow_until.len() <= node {
            self.slow_until.resize(node + 1, (SimTime::ZERO, 1.0));
        }
        self.slow_until[node] = (until, factor);
    }
}

/// The mutable world threaded through every event.
struct World {
    cfg: DcaConfig,
    strategy: SharedStrategy,
    pool: NodePool,
    tasks: Vec<TaskState>,
    /// Pending job requests (task indices); top-up waves are pushed to the
    /// front (retry priority), first waves to the back.
    queue: VecDeque<usize>,
    jobs: JobRegistry,
    rng: SimRng,
    report: DcaReport,
    next_unstarted: usize,
    unfinished: usize,
    /// Per-region outage end times (empty unless `RegionalOutages` is
    /// configured). Node `i` belongs to region `i % regions.len()`.
    region_down_until: Vec<SimTime>,
    /// Active fault-plan effects.
    chaos: ChaosState,
    /// The adaptive cartel, prebuilt from `cfg.cartel` (lie schedule is a
    /// pure function of `(seed, task)`).
    cartel: Option<Cartel>,
    /// Cartel dormancy: members answer honestly until this time after an
    /// audit catches one of them.
    cartel_dormant_until: SimTime,
    /// Scheduler load trace (`queue_depth`, `idle_nodes`), sampled at every
    /// dispatch and resolution. Recorded only for journaled runs.
    trace: Trace,
    /// Online latency-quantile trigger for straggler hedging (`cfg.hedge`).
    hedge: Option<HedgeTrigger>,
    /// Dispatch time of every job ever registered, indexed by job id —
    /// feeds the hedge trigger's latency estimator at resolution.
    dispatched_at: Vec<SimTime>,
    /// Active hedge pairs, both directions: each member maps to its racing
    /// partner until the pair dissolves (first resolution).
    hedge_pair: HashMap<JobId, JobId>,
    /// Which jobs are hedge twins (mapped to their origin), kept until the
    /// twin settles as won or wasted.
    twin_origin: HashMap<JobId, JobId>,
    /// Transfer-charging network model (`cfg.network`); `None` keeps
    /// communication free and the event stream bit-identical to runs
    /// predating the model.
    network: Option<NetworkModel>,
}

type Sim = Simulator<World>;

/// Runs one DCA simulation and returns its metrics.
///
/// All randomness derives from `config.seed`; identical inputs produce
/// identical reports.
///
/// # Errors
///
/// Returns [`ParamError`] if the configuration fails
/// [`DcaConfig::validate`].
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::Traditional;
/// use smartred_dca::config::DcaConfig;
/// use smartred_dca::sim::run;
///
/// let cfg = DcaConfig::paper_baseline(200, 50, 0.3, 42);
/// let report = run(Rc::new(Traditional::new(KVotes::new(3)?)), &cfg)?;
/// assert_eq!(report.tasks_completed, 200);
/// assert_eq!(report.cost_factor(), 3.0);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn run(strategy: SharedStrategy, config: &DcaConfig) -> Result<DcaReport, ParamError> {
    run_inner(strategy, config, false).map(|r| r.report)
}

/// A journaled run: the aggregate report plus the structured event journal
/// and the scheduler load trace.
#[derive(Debug)]
pub struct JournaledRun {
    /// Aggregate metrics — identical to what [`run`] returns for the same
    /// configuration (journaling never perturbs the simulation).
    pub report: DcaReport,
    /// Every state transition of the run as typed, timestamped events.
    pub journal: Journal,
    /// `queue_depth` / `idle_nodes` samples taken at each dispatch and
    /// resolution.
    pub trace: Trace,
}

/// Runs one DCA simulation with event journaling enabled.
///
/// The returned [`JournaledRun::report`] is bit-identical to [`run`] on the
/// same inputs; the journal is a pure observer.
///
/// # Errors
///
/// Returns [`ParamError`] if the configuration fails
/// [`DcaConfig::validate`].
pub fn run_journaled(
    strategy: SharedStrategy,
    config: &DcaConfig,
) -> Result<JournaledRun, ParamError> {
    run_inner(strategy, config, true)
}

fn run_inner(
    strategy: SharedStrategy,
    config: &DcaConfig,
    journaled: bool,
) -> Result<JournaledRun, ParamError> {
    config.validate()?;
    let mut rng = seeded_rng(config.seed);
    let pool = NodePool::from_config(&config.pool, &mut rng);
    let mut world = World {
        cfg: config.clone(),
        strategy,
        pool,
        tasks: Vec::with_capacity(config.tasks.min(1 << 20)),
        queue: VecDeque::new(),
        jobs: JobRegistry::new(),
        rng,
        report: DcaReport::new(),
        next_unstarted: 0,
        unfinished: config.tasks,
        region_down_until: match config.failure {
            FailureConfig::RegionalOutages { regions, .. } => vec![SimTime::ZERO; regions],
            _ => Vec::new(),
        },
        chaos: ChaosState::default(),
        cartel: config
            .cartel
            .map(|c| Cartel::new(c.members as u32, c.lie_rate)),
        cartel_dormant_until: SimTime::ZERO,
        trace: Trace::new(),
        hedge: config
            .hedge
            .map(|p| HedgeTrigger::new(p).expect("hedge policy validated above")),
        dispatched_at: Vec::new(),
        hedge_pair: HashMap::new(),
        twin_origin: HashMap::new(),
        network: config.network.map(|n| NetworkModel::uniform(n.link)),
    };
    let mut sim = Sim::new();
    if journaled {
        sim.enable_journal();
    }
    if world.cartel.is_some() {
        // Make the standing adversary visible in the journal (and in
        // `faults_injected`), like any scheduled fault.
        world.report.faults_injected += 1;
        sim.emit(RunEvent::FaultInjected {
            kind: FaultKind::Cartel,
        });
    }
    if let FailureConfig::RegionalOutages { outage_rate, .. } = config.failure {
        if outage_rate > 0.0 {
            schedule_outage(&mut world, &mut sim);
        }
    }
    if let Some(churn) = config.churn {
        if churn.leave_rate > 0.0 {
            schedule_departure(&mut world, &mut sim);
        }
        if churn.join_rate > 0.0 {
            schedule_arrival(&mut world, &mut sim);
        }
    }
    // Inject the fault plan as first-class events: each entry becomes one
    // scheduled event that flips the corresponding chaos state (or departs
    // the crashed node) at its planned time.
    if let Some(plan) = &config.faults {
        for event in plan.events().iter().copied() {
            sim.schedule_at(SimTime::from_units(event.at()), move |world, sim| {
                inject_fault(world, sim, event);
            });
        }
    }
    pump(&mut world, &mut sim);
    sim.run(&mut world);
    // Graceful degradation for a starved pool: tasks that never reached a
    // verdict (every node departed/blacklisted with work still queued) are
    // settled on their best-available vote leader.
    if config.degraded_accept {
        for t in 0..world.tasks.len() {
            if !world.tasks[t].finished {
                accept_degraded(&mut world, &mut sim, t);
            }
        }
    }
    sim.emit(RunEvent::RunEnded);
    world.report.tasks_stranded =
        config.tasks - world.report.tasks_completed - world.report.tasks_capped;
    world.report.makespan_units = sim.now().as_units();
    world.report.capacity_node_units = config.pool.size as f64 * world.report.makespan_units;
    audit(&world);
    Ok(JournaledRun {
        report: world.report,
        journal: sim.take_journal(),
        trace: world.trace,
    })
}

/// End-of-run consistency audit: no task lost, the pool's idle set intact.
///
/// # Panics
///
/// Panics on violation — these are internal invariants, not user errors.
fn audit(world: &World) {
    if let Err(violation) = world.pool.check_invariants() {
        panic!("node pool invariant violated: {violation}");
    }
    let started_unfinished = world.tasks.iter().filter(|t| !t.finished).count();
    let never_started = world.cfg.tasks - world.next_unstarted;
    assert_eq!(
        world.unfinished,
        started_unfinished + never_started,
        "task accounting lost track of {} tasks",
        world.unfinished as i64 - (started_unfinished + never_started) as i64
    );
}

/// Applies one fault-plan event to the running world.
fn inject_fault(world: &mut World, sim: &mut Sim, event: FaultEvent) {
    world.report.faults_injected += 1;
    sim.emit(RunEvent::FaultInjected {
        kind: match event {
            FaultEvent::NodeCrash { .. } => FaultKind::Crash,
            FaultEvent::HangWindow { .. } => FaultKind::Hang,
            FaultEvent::Straggler { .. } => FaultKind::Straggler,
            FaultEvent::CollusionBurst { .. } => FaultKind::Collusion,
            FaultEvent::Blackout { .. } => FaultKind::Blackout,
        },
    });
    let now = sim.now();
    match event {
        FaultEvent::NodeCrash { node, .. } => {
            if world.pool.node(node).alive {
                world.report.crashes += 1;
                sim.emit(RunEvent::NodeDeparted {
                    node: node as u32,
                    reason: DepartureReason::Crash,
                });
                let orphaned = world.pool.depart(node);
                if let Some(job) = orphaned {
                    // The node vanished mid-job: the server sees a timeout.
                    resolve_job(world, sim, job, true);
                }
            }
        }
        FaultEvent::HangWindow { duration, node, .. } => {
            world
                .chaos
                .set_hang(node, now + SimDuration::from_units(duration));
        }
        FaultEvent::Straggler {
            duration,
            node,
            factor,
            ..
        } => {
            world
                .chaos
                .set_slow(node, now + SimDuration::from_units(duration), factor);
        }
        FaultEvent::CollusionBurst {
            duration, fraction, ..
        } => {
            let until = now + SimDuration::from_units(duration);
            if until > world.chaos.collusion_until {
                world.chaos.collusion_until = until;
            }
            // Draw the colluders from the seeded stream at burst start so
            // the cartel is reproducible but varies with the seed.
            world.chaos.colluding = (0..world.pool.capacity())
                .map(|_| world.rng.gen_bool(fraction))
                .collect();
        }
        FaultEvent::Blackout { duration, .. } => {
            let until = now + SimDuration::from_units(duration);
            if until > world.chaos.blackout_until {
                world.chaos.blackout_until = until;
            }
        }
    }
}

/// Greedily assigns queued jobs to idle nodes and lazily starts new tasks.
fn pump(world: &mut World, sim: &mut Sim) {
    loop {
        if world.pool.idle_count() == 0 {
            return;
        }
        if world.queue.is_empty() && !start_next_task(world, sim) {
            return;
        }
        let mut placed_any = false;
        for _ in 0..world.queue.len() {
            if world.pool.idle_count() == 0 {
                return;
            }
            let Some(task) = world.queue.pop_front() else {
                break;
            };
            debug_assert!(
                !world.tasks[task].finished,
                "finished task left jobs queued"
            );
            let node = world.pool.claim_idle(
                world.cfg.assignment,
                &world.tasks[task].used_nodes,
                &mut world.rng,
            );
            match node {
                Some(node) => {
                    dispatch_job(world, sim, task, node);
                    placed_any = true;
                }
                None => world.queue.push_back(task),
            }
        }
        if !placed_any && !start_next_task(world, sim) {
            return;
        }
    }
}

/// Creates the next task, if any remain, and queues its first wave.
fn start_next_task(world: &mut World, sim: &mut Sim) -> bool {
    if world.next_unstarted >= world.cfg.tasks {
        return false;
    }
    world.next_unstarted += 1;
    let mut exec = TaskExecution::new(world.strategy.clone());
    if let Some(cap) = world.cfg.job_cap {
        exec = exec.with_job_cap(cap);
    }
    let shocked = match world.cfg.failure {
        FailureConfig::Independent | FailureConfig::RegionalOutages { .. } => false,
        FailureConfig::CommonShock { shock_probability } => world.rng.gen_bool(shock_probability),
    };
    world.tasks.push(TaskState {
        exec,
        started_at: None,
        used_nodes: Vec::new(),
        shocked,
        finished: false,
        retries: 0,
        votes: Vec::new(),
        attempt: 0,
        must_audit: false,
        voids: 0,
    });
    let t = world.tasks.len() - 1;
    poll_task(world, sim, t, /* priority = */ false);
    true
}

/// Asks a task's strategy what to do next and queues any new wave.
fn poll_task(world: &mut World, sim: &mut Sim, t: usize, priority: bool) {
    if world.tasks[t].finished {
        return;
    }
    match world.tasks[t].exec.step_wave() {
        WaveStep::Wave { wave, jobs } => {
            sim.emit(RunEvent::WaveOpened {
                task: t as u32,
                wave: wave as u32,
                jobs: jobs as u32,
            });
            for _ in 0..jobs {
                if priority {
                    world.queue.push_front(t);
                } else {
                    world.queue.push_back(t);
                }
            }
        }
        WaveStep::Verdict(v) => finalize(world, sim, t, Some(v), None),
        WaveStep::Pending => {}
        WaveStep::Capped { .. } => {
            if !(world.cfg.degraded_accept && accept_degraded(world, sim, t)) {
                finalize(world, sim, t, None, None);
            }
        }
    }
}

/// Graceful degradation: settles a task on its current vote leader with
/// the Bayesian confidence `q(r, a, b)` of that verdict attached to the
/// report. Invoked at the job cap and at pool starvation under
/// [`DcaConfig::degraded_accept`]. Returns `false` (task untouched) when
/// there is no leader to accept.
fn accept_degraded(world: &mut World, sim: &mut Sim, t: usize) -> bool {
    let tally = world.tasks[t].exec.tally();
    let Some((&v, a)) = tally.leader() else {
        return false;
    };
    let b = tally.runner_up_count();
    // The server never knows true per-node reliability; the pool's mean is
    // its best estimate of r. A fully starved pool gives no information, so
    // fall back to the uninformative prior r = 1/2 (confidence 1/2).
    let r_est = if world.pool.alive_count() == 0 {
        0.5
    } else {
        world.pool.mean_reliability().clamp(0.0, 1.0)
    };
    let r = Reliability::new(r_est).expect("mean reliability lies in [0, 1]");
    let q = confidence(r, a, b);
    world.report.tasks_degraded += 1;
    world.report.degraded_confidence.record(q);
    finalize(world, sim, t, Some(v), Some(q));
    true
}

/// Records a task's terminal state in the run metrics. `degraded` carries
/// the Bayesian confidence of a degraded acceptance; `None` means the
/// verdict (if any) is firm.
fn finalize(
    world: &mut World,
    sim: &mut Sim,
    t: usize,
    verdict: Option<bool>,
    degraded: Option<f64>,
) {
    // Audit gate: a *firm* verdict is spot-checked before acceptance.
    // Degraded acceptances are never audited — they are already flagged as
    // low-confidence. A voided verdict restarts the task instead of
    // finishing it.
    let mut audited = false;
    if world.cfg.audit.is_enabled() && degraded.is_none() {
        if let Some(v) = verdict {
            match spot_check(world, sim, t, v) {
                SpotCheck::NotSelected => {}
                SpotCheck::Accepted => audited = true,
                SpotCheck::Voided => return,
            }
        }
    }
    match verdict {
        Some(v) => sim.emit(RunEvent::VerdictReached {
            task: t as u32,
            value: v,
            degraded: degraded.is_some(),
            confidence: degraded.unwrap_or(1.0),
        }),
        None => sim.emit(RunEvent::TaskCapped { task: t as u32 }),
    }
    let state = &mut world.tasks[t];
    debug_assert!(!state.finished);
    state.finished = true;
    world.unfinished -= 1;
    match verdict {
        Some(v) => {
            world.report.tasks_completed += 1;
            if v {
                world.report.tasks_correct += 1;
            }
            world
                .report
                .jobs_per_task
                .record(state.exec.jobs_deployed() as f64);
            world
                .report
                .waves_per_task
                .record(state.exec.waves() as f64);
            let started = state.started_at.unwrap_or_else(|| sim.now());
            world
                .report
                .response_time
                .record(sim.now().since(started).as_units());
        }
        None => world.report.tasks_capped += 1,
    }
    // Under a quarantine policy, nodes whose vote lost the election earn a
    // strike: repeated vote-losers are the simulation's stand-in for the
    // server's result-validation blacklist. An audited task already
    // charged its liars weighted strikes, so it is exempt.
    if world.cfg.quarantine.is_some() && !audited {
        if let Some(v) = verdict {
            let votes = std::mem::take(&mut world.tasks[t].votes);
            for (node, voted) in votes {
                if voted != v {
                    strike_node(world, sim, node);
                }
            }
        }
    }
}

/// What the audit layer decided about a would-be firm verdict.
enum SpotCheck {
    /// The task was not selected for audit; accept normally.
    NotSelected,
    /// The task was audited and the verdict may be accepted (clean, or
    /// liars caught but outvoted).
    Accepted,
    /// The audit voided the verdict; the task has been restarted.
    Voided,
}

/// Locally recomputes an audited task and acts on what it finds: liars
/// earn [`AuditPolicy::strike_weight`](smartred_core::audit::AuditPolicy)
/// strikes, a caught cartel goes dormant, open tasks the liars touched are
/// re-tallied, and a verdict the liars actually swung is voided and re-run.
fn spot_check(world: &mut World, sim: &mut Sim, t: usize, v: bool) -> SpotCheck {
    let policy = world.cfg.audit;
    let state = &world.tasks[t];
    // Escalation is a pure function of the report, so replay agrees.
    let escalated = world.report.audit_failures > 0;
    let selected = state.must_audit || policy.selects(world.cfg.seed, t as u64, escalated);
    if !selected || state.voids >= MAX_TASK_VOIDS {
        return SpotCheck::NotSelected;
    }
    sim.emit(RunEvent::AuditScheduled { task: t as u32 });
    world.report.audits += 1;
    // The recomputation itself: in this model a recorded vote *is* the
    // comparison against the honest value, so the liars are exactly the
    // wrong-voting returns. Timeouts never recorded a value and cannot be
    // contradicted.
    let liars: Vec<NodeIndex> = world.tasks[t]
        .votes
        .iter()
        .filter(|&&(_, voted)| !voted)
        .map(|&(node, _)| node)
        .collect();
    if liars.is_empty() && v {
        sim.emit(RunEvent::AuditPassed { task: t as u32 });
        world.tasks[t].must_audit = false;
        return SpotCheck::Accepted;
    }
    // Note: `liars` can be empty with `v == false` when every wrong vote
    // came from a timeout (CountAsWrong). Nobody can be struck, but the
    // recomputation still contradicts the verdict, so it is voided below.
    for &node in &liars {
        sim.emit(RunEvent::AuditFailed {
            task: t as u32,
            node: node as u32,
        });
        world.report.audit_failures += 1;
        strike_node_weighted(world, sim, node, policy.strike_weight);
    }
    // The cartel notices a member was caught and lies low for a while.
    if let Some(cartel_cfg) = world.cfg.cartel {
        if cartel_cfg.dormancy_units > 0.0 && liars.iter().any(|&n| n < cartel_cfg.members) {
            let until = sim.now() + SimDuration::from_units(cartel_cfg.dormancy_units);
            if until > world.cartel_dormant_until {
                world.cartel_dormant_until = until;
            }
        }
    }
    // Retaliation: every open task a caught liar touched loses its tally
    // (the liar's other answers are no more trustworthy than this one).
    let caught: Vec<NodeIndex> = {
        let mut c = liars.clone();
        c.sort_unstable();
        c.dedup();
        c
    };
    for u in 0..world.tasks.len() {
        if u == t || world.tasks[u].finished {
            continue;
        }
        if !world.tasks[u]
            .votes
            .iter()
            .any(|&(n, _)| caught.contains(&n))
        {
            continue;
        }
        sim.emit(RunEvent::TaskRetallied { task: u as u32 });
        world.report.tasks_retallied += 1;
        restart_task(world, sim, u);
    }
    if v {
        // Liars caught but outvoted: the verdict stands.
        return SpotCheck::Accepted;
    }
    sim.emit(RunEvent::VerdictVoided { task: t as u32 });
    world.report.verdicts_voided += 1;
    world.tasks[t].voids += 1;
    restart_task(world, sim, t);
    SpotCheck::Voided
}

/// Discards a task's tally and restarts it from wave 1 under a new
/// attempt: queued jobs are purged, in-flight jobs become stale, and the
/// strategy re-deploys with a fresh budget. The task's `started_at` is
/// kept — response time spans every attempt.
fn restart_task(world: &mut World, sim: &mut Sim, t: usize) {
    let state = &mut world.tasks[t];
    debug_assert!(!state.finished);
    state.attempt += 1;
    state.exec.reset();
    state.votes.clear();
    state.must_audit = false;
    sim.emit(RunEvent::EpochAdvanced {
        task: t as u32,
        epoch: state.attempt,
    });
    world.queue.retain(|&x| x != t);
    poll_task(world, sim, t, /* priority = */ true);
}

/// Charges `weight` strikes at once (an audit-caught lie), applying each
/// action the policy demands as it lands. No-op without a quarantine
/// policy, like [`strike_node`].
fn strike_node_weighted(world: &mut World, sim: &mut Sim, node: NodeIndex, weight: u32) {
    for _ in 0..weight.max(1) {
        strike_node(world, sim, node);
    }
}

/// Registers a strike against a node and applies the discipline the
/// quarantine policy demands. No-op without a policy or for departed
/// nodes.
fn strike_node(world: &mut World, sim: &mut Sim, node: NodeIndex) {
    let Some(policy) = world.cfg.quarantine else {
        return;
    };
    if !world.pool.node(node).alive {
        return;
    }
    match world.pool.node_mut(node).discipline.strike(&policy) {
        DisciplineAction::None => {}
        DisciplineAction::Quarantine => {
            world.report.quarantines += 1;
            sim.emit(RunEvent::NodeQuarantined { node: node as u32 });
            world.pool.quarantine(node);
            sim.schedule_in(
                SimDuration::from_units(policy.quarantine_units),
                move |world, sim| {
                    sim.emit(RunEvent::NodeReleased { node: node as u32 });
                    world.pool.unquarantine(node);
                    // Re-admission is probationary: the node's next results
                    // each flag their task for a mandatory audit.
                    if world.cfg.audit.is_enabled() {
                        world
                            .pool
                            .node_mut(node)
                            .discipline
                            .begin_probation(world.cfg.audit.probation_audits);
                    }
                    pump(world, sim);
                },
            );
        }
        DisciplineAction::Blacklist => {
            world.report.blacklisted += 1;
            sim.emit(RunEvent::NodeDeparted {
                node: node as u32,
                reason: DepartureReason::Blacklist,
            });
            let orphaned = world.pool.depart(node);
            if let Some(job) = orphaned {
                // The blacklisted node's in-flight job (for some other
                // task) is discarded; the server sees a timeout.
                resolve_job(world, sim, job, true);
            }
        }
    }
}

/// Dispatches one job of `task` on `node` (already claimed from the idle
/// set): draws its outcome and duration, registers it, and schedules its
/// resolution event.
fn dispatch_job(world: &mut World, sim: &mut Sim, task: usize, node: NodeIndex) {
    let outcome = draw_outcome(world, sim.now(), task, node);
    let (lo, hi) = world.cfg.duration_window;
    let base = if lo == hi {
        lo
    } else {
        world.rng.gen_range(lo..=hi)
    };
    let duration_units =
        base * world.pool.node(node).speed * world.chaos.slow_factor(node, sim.now());

    let job = world
        .jobs
        .dispatch(task, node, outcome, world.tasks[task].attempt);
    debug_assert_eq!(world.dispatched_at.len(), job.get());
    world.dispatched_at.push(sim.now());
    world.pool.node_mut(node).current_job = Some(job);
    world.report.total_jobs += 1;
    let state = &mut world.tasks[task];
    state.used_nodes.push(node);
    if state.started_at.is_none() {
        state.started_at = Some(sim.now());
    }

    let times_out = outcome == JobOutcome::NoResponse || duration_units > world.cfg.timeout_units;
    let delay = if times_out {
        SimDuration::from_units(world.cfg.timeout_units)
    } else {
        SimDuration::from_units(duration_units)
    };
    // Input transfer precedes service: the job's timeout and hedge clocks
    // start only once the payload has landed, and the node is busy (and
    // charged) for the transfer as well as the service window.
    let lead = charge_transfer(world, sim, job, task, node);
    world.report.busy_node_units += (lead + delay).as_units();
    sim.emit(RunEvent::JobDispatched {
        job: job.get() as u32,
        task: task as u32,
        node: node as u32,
        eta: sim.now() + lead + delay,
    });
    if sim.journal().is_enabled() {
        world
            .trace
            .record(sim.now(), "queue_depth", world.queue.len() as f64);
        world
            .trace
            .record(sim.now(), "idle_nodes", world.pool.idle_count() as f64);
    }
    sim.schedule_in(lead + delay, move |world, sim| {
        resolve_job(world, sim, job, times_out);
    });
    // Straggler hedging: once the latency estimator is warm, arm a check at
    // the quantile threshold. An armed check carries the dispatch epoch so
    // a void/re-tally between arming and firing disarms it — the same
    // guard that keeps audit re-execution and deadline reissue from
    // double-firing hedges for one task epoch.
    if let Some(trigger) = &world.hedge {
        if let Some(threshold) = trigger.threshold() {
            if threshold < world.cfg.timeout_units {
                let epoch = world.tasks[task].attempt;
                sim.schedule_in(
                    lead + SimDuration::from_units(threshold),
                    move |world, sim| {
                        hedge_check(world, sim, job, task, epoch);
                    },
                );
            }
        }
    }
}

/// Charges `job`'s input transfer to `node` when a network model is
/// configured, journaling the `TransferStarted`/`TransferCompleted` pair,
/// and returns the transfer duration (zero without a network — the legacy
/// free-communication event stream, bit for bit).
fn charge_transfer(
    world: &mut World,
    sim: &mut Sim,
    job: JobId,
    task: usize,
    node: NodeIndex,
) -> SimDuration {
    let Some(net) = world.network.as_mut() else {
        return SimDuration::ZERO;
    };
    let bytes = world
        .cfg
        .network
        .expect("network model exists only when configured")
        .payload_bytes;
    let start = sim.now();
    let eta = net.begin(
        sim,
        job.get() as u32,
        task as u32,
        node as u32,
        bytes,
        |_, _| {},
    );
    world.report.transfers += 1;
    world.report.bytes_moved += bytes;
    eta.since(start)
}

/// Fires when a dispatched job reaches the hedge threshold still
/// unresolved: launches a twin of the same logical replica on another
/// node. The twin bypasses the wave/job accounting entirely — the first
/// pair member to genuinely resolve supplies the replica's vote and the
/// loser is discarded.
fn hedge_check(world: &mut World, sim: &mut Sim, origin: JobId, t: usize, epoch: u32) {
    if world.jobs.get(origin).resolved || world.tasks[t].finished || world.tasks[t].attempt != epoch
    {
        return;
    }
    let Some(trigger) = &world.hedge else {
        return;
    };
    let policy = trigger.policy();
    if world.tasks[t].exec.hedges_launched() >= policy.max_per_task as usize {
        return;
    }
    let Some(node) = world.pool.claim_idle(
        world.cfg.assignment,
        &world.tasks[t].used_nodes,
        &mut world.rng,
    ) else {
        // No idle node to duplicate onto: hedging is best-effort.
        return;
    };
    let outcome = draw_outcome(world, sim.now(), t, node);
    let (lo, hi) = world.cfg.duration_window;
    let base = if lo == hi {
        lo
    } else {
        world.rng.gen_range(lo..=hi)
    };
    let duration_units =
        base * world.pool.node(node).speed * world.chaos.slow_factor(node, sim.now());
    let twin = world.jobs.dispatch(t, node, outcome, epoch);
    debug_assert_eq!(world.dispatched_at.len(), twin.get());
    world.dispatched_at.push(sim.now());
    world.pool.node_mut(node).current_job = Some(twin);
    world.tasks[t].used_nodes.push(node);
    world.tasks[t].exec.note_hedge();
    world.report.hedges_launched += 1;
    world.hedge_pair.insert(origin, twin);
    world.hedge_pair.insert(twin, origin);
    world.twin_origin.insert(twin, origin);
    // The twin's launch event replaces JobDispatched (its busy time is
    // likewise excluded from `busy_node_units` — hedge cost is tracked by
    // the hedge counters and `total_cost`, not the utilization metric).
    sim.emit(RunEvent::HedgeLaunched {
        job: twin.get() as u32,
        task: t as u32,
        origin: origin.get() as u32,
        epoch,
    });
    let times_out = outcome == JobOutcome::NoResponse || duration_units > world.cfg.timeout_units;
    let delay = if times_out {
        SimDuration::from_units(world.cfg.timeout_units)
    } else {
        SimDuration::from_units(duration_units)
    };
    // The twin runs on a different node, so it pays its own input
    // transfer — hedging under a network model races transfer + service
    // against the straggler's remaining service.
    let lead = charge_transfer(world, sim, twin, t, node);
    sim.schedule_in(lead + delay, move |world, sim| {
        resolve_job(world, sim, twin, times_out);
    });
}

/// Settles a hedge twin exactly once: `won` means its result supplied the
/// replica's vote; otherwise its work was discarded.
fn settle_twin(world: &mut World, sim: &mut Sim, twin: JobId, t: usize, won: bool) {
    let removed = world.twin_origin.remove(&twin);
    debug_assert!(removed.is_some(), "twin settled twice");
    if won {
        world.report.hedges_won += 1;
        sim.emit(RunEvent::HedgeWon {
            job: twin.get() as u32,
            task: t as u32,
        });
    } else {
        world.report.hedges_wasted += 1;
        sim.emit(RunEvent::HedgeWasted {
            job: twin.get() as u32,
            task: t as u32,
        });
    }
}

/// Feeds a genuinely resolved job's latency to the hedge estimator.
fn observe_latency(world: &mut World, now: SimTime, job: JobId) {
    if let Some(trigger) = world.hedge.as_mut() {
        trigger.observe(now.since(world.dispatched_at[job.get()]).as_units());
    }
}

/// Draws a job's outcome from the node's fault parameters, the task's
/// shock state, and any active regional outage.
fn draw_outcome(world: &mut World, now: SimTime, task: usize, node: NodeIndex) -> JobOutcome {
    if world.chaos.blackout_until > now || world.chaos.hang_active(node, now) {
        return JobOutcome::NoResponse;
    }
    if !world.region_down_until.is_empty() {
        let region = node % world.region_down_until.len();
        if world.region_down_until[region] > now {
            return JobOutcome::NoResponse;
        }
    }
    if world.chaos.is_colluding(node, now) {
        return JobOutcome::Wrong;
    }
    if let Some(cartel) = world.cartel {
        if cartel.is_member(node as u32)
            && now >= world.cartel_dormant_until
            && cartel.lies_on(world.cfg.seed, task as u64)
        {
            return JobOutcome::Wrong;
        }
    }
    let n = world.pool.node(node);
    if world.tasks[task].shocked && n.wrong_rate > 0.0 {
        return JobOutcome::Wrong;
    }
    let u: f64 = world.rng.gen();
    if u < n.unresponsive_rate {
        JobOutcome::NoResponse
    } else if u < n.unresponsive_rate + n.wrong_rate {
        JobOutcome::Wrong
    } else {
        JobOutcome::Correct
    }
}

/// Resolves a job: feeds its result (or its timeout) to the task and pumps
/// the scheduler. Idempotent — late events for already-resolved jobs (e.g.
/// after a node departure) are ignored.
fn resolve_job(world: &mut World, sim: &mut Sim, job: JobId, timed_out: bool) {
    let Some(slot) = world.jobs.resolve(job) else {
        return;
    };
    world.pool.release(slot.node);
    let t = slot.task;
    // Hedge-pair bookkeeping: dissolve this job's pairing (if any) up
    // front so exactly one pair member ever records a vote, a strike, or a
    // timeout for the shared logical replica.
    let is_twin = world.twin_origin.contains_key(&job);
    let partner = world.hedge_pair.remove(&job);
    if let Some(p) = partner {
        world.hedge_pair.remove(&p);
    }
    let partner_pending = partner.is_some_and(|p| !world.jobs.get(p).resolved);
    if world.tasks[t].finished {
        // Other replicas settled the task while this pair raced; any twin
        // still owes its terminal hedge event.
        if is_twin {
            settle_twin(world, sim, job, t, false);
        }
    } else if slot.attempt != world.tasks[t].attempt {
        // The job predates an audit void/re-tally of its task: its
        // reply (or timeout) belongs to a discarded tally and is
        // dropped without a vote, a strike, or a retry.
        if is_twin {
            settle_twin(world, sim, job, t, false);
        } else {
            sim.emit(RunEvent::StaleReplyDropped {
                job: job.get() as u32,
                task: t as u32,
                epoch: world.tasks[t].attempt,
            });
        }
    } else if timed_out {
        if partner_pending {
            // Suppressed: the partner is still racing for this replica's
            // vote, so the lapse charges no timeout, strike, or vote —
            // the surviving member carries the replica alone.
            if is_twin {
                settle_twin(world, sim, job, t, false);
            }
        } else {
            observe_latency(world, sim.now(), job);
            if is_twin {
                settle_twin(world, sim, job, t, false);
            }
            world.report.timeouts += 1;
            sim.emit(RunEvent::JobTimedOut {
                job: job.get() as u32,
                task: t as u32,
                node: slot.node as u32,
            });
            strike_node(world, sim, slot.node);
            if !retry_job(world, sim, t) {
                match world.cfg.timeout_policy {
                    TimeoutPolicy::CountAsWrong => {
                        world.tasks[t].exec.record(false);
                        emit_tally(world, sim, t, false);
                    }
                    TimeoutPolicy::Reissue => world.tasks[t].exec.abandon(1),
                }
                emit_wave_closed(world, sim, t);
                poll_task(world, sim, t, /* priority = */ true);
            }
        }
    } else {
        observe_latency(world, sim.now(), job);
        if partner_pending {
            // This copy won the race: cancel the loser and free its node
            // (its scheduled resolution will find it already resolved).
            let p = partner.expect("partner_pending implies a partner");
            let pslot = world.jobs.resolve(p).expect("partner was pending");
            world.pool.release(pslot.node);
            if !is_twin {
                settle_twin(world, sim, p, t, false);
            }
        }
        let correct = slot.outcome == JobOutcome::Correct;
        sim.emit(RunEvent::JobReturned {
            job: job.get() as u32,
            task: t as u32,
            node: slot.node as u32,
            value: correct,
        });
        if is_twin {
            settle_twin(world, sim, job, t, true);
        }
        world.tasks[t].exec.record(correct);
        emit_tally(world, sim, t, correct);
        if world.cfg.quarantine.is_some() || world.cfg.audit.is_enabled() {
            world.tasks[t].votes.push((slot.node, correct));
        }
        if world.cfg.audit.is_enabled()
            && world
                .pool
                .node_mut(slot.node)
                .discipline
                .consume_probation()
        {
            world.tasks[t].must_audit = true;
        }
        emit_wave_closed(world, sim, t);
        poll_task(world, sim, t, /* priority = */ true);
    }
    if sim.journal().is_enabled() {
        world
            .trace
            .record(sim.now(), "queue_depth", world.queue.len() as f64);
        world
            .trace
            .record(sim.now(), "idle_nodes", world.pool.idle_count() as f64);
    }
    pump(world, sim);
}

/// Emits the vote-tally snapshot after a vote landed in task `t`'s tally.
fn emit_tally(world: &World, sim: &mut Sim, t: usize, value: bool) {
    if !sim.journal().is_enabled() {
        return;
    }
    let (leader_count, runner_up) = world.tasks[t].exec.leader_counts();
    sim.emit(RunEvent::VoteTallied {
        task: t as u32,
        value,
        leader_count: leader_count as u32,
        runner_up: runner_up as u32,
    });
}

/// Emits a wave-closed event when task `t`'s current wave has just drained.
fn emit_wave_closed(world: &World, sim: &mut Sim, t: usize) {
    if sim.journal().is_enabled() && world.tasks[t].exec.wave_boundary() {
        sim.emit(RunEvent::WaveClosed {
            task: t as u32,
            wave: world.tasks[t].exec.waves() as u32,
        });
    }
}

/// Schedules a backoff-delayed retry of a timed-out job under the retry
/// policy, if the task has attempts left. Returns whether a retry was
/// scheduled (in which case the timeout is hidden from the vote).
fn retry_job(world: &mut World, sim: &mut Sim, t: usize) -> bool {
    let Some(policy) = world.cfg.retry else {
        return false;
    };
    let attempt = world.tasks[t].retries;
    if attempt >= policy.max_retries {
        return false;
    }
    world.tasks[t].retries = attempt + 1;
    world.report.retries += 1;
    sim.emit(RunEvent::JobRetried {
        task: t as u32,
        attempt: attempt + 1,
    });
    // Strike the timed-out job from the vote and re-deploy after a
    // jittered exponential backoff: the delayed poll re-queues one job
    // with retry priority.
    world.tasks[t].exec.abandon(1);
    emit_wave_closed(world, sim, t);
    let delay = backoff_duration(
        &mut world.rng,
        policy.base_units,
        policy.multiplier,
        attempt,
        policy.jitter,
    );
    sim.schedule_in(delay, move |world, sim| {
        poll_task(world, sim, t, /* priority = */ true);
        pump(world, sim);
    });
    true
}

/// Schedules the next regional outage (Poisson process): a random region
/// goes silent for the configured duration.
fn schedule_outage(world: &mut World, sim: &mut Sim) {
    let FailureConfig::RegionalOutages {
        outage_rate,
        outage_duration,
        ..
    } = world.cfg.failure
    else {
        unreachable!("outages scheduled only under RegionalOutages");
    };
    let delay = exponential_delay(&mut world.rng, outage_rate);
    sim.schedule_in(delay, move |world, sim| {
        if world.unfinished == 0 {
            return;
        }
        let region = world.rng.gen_range(0..world.region_down_until.len());
        let until = sim.now() + SimDuration::from_units(outage_duration);
        world.report.outages += 1;
        sim.emit(RunEvent::OutageStarted {
            region: region as u32,
        });
        if until > world.region_down_until[region] {
            world.region_down_until[region] = until;
        }
        schedule_outage(world, sim);
    });
}

fn exponential_delay(rng: &mut SimRng, rate: f64) -> SimDuration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    SimDuration::from_units(-u.ln() / rate)
}

/// Schedules the next volunteer departure (Poisson process).
fn schedule_departure(world: &mut World, sim: &mut Sim) {
    let rate = world.cfg.churn.expect("churn configured").leave_rate;
    let delay = exponential_delay(&mut world.rng, rate);
    sim.schedule_in(delay, |world, sim| {
        if world.unfinished == 0 {
            return; // computation over; stop the churn process
        }
        if let Some(idx) = world.pool.random_alive(&mut world.rng) {
            let orphaned = world.pool.depart(idx);
            world.report.departures += 1;
            sim.emit(RunEvent::NodeDeparted {
                node: idx as u32,
                reason: DepartureReason::Churn,
            });
            if let Some(job) = orphaned {
                // The node vanished mid-job: the server sees a timeout.
                resolve_job(world, sim, job, true);
            }
        }
        schedule_departure(world, sim);
    });
}

/// Schedules the next volunteer arrival (Poisson process).
fn schedule_arrival(world: &mut World, sim: &mut Sim) {
    let rate = world.cfg.churn.expect("churn configured").join_rate;
    let delay = exponential_delay(&mut world.rng, rate);
    sim.schedule_in(delay, |world, sim| {
        if world.unfinished == 0 {
            return;
        }
        let pool_cfg = world.cfg.pool;
        let idx = world.pool.spawn_node(&pool_cfg, &mut world.rng);
        world.report.arrivals += 1;
        sim.emit(RunEvent::NodeJoined { node: idx as u32 });
        pump(world, sim);
        schedule_arrival(world, sim);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_core::analysis;
    use smartred_core::params::{KVotes, Reliability, VoteMargin};
    use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
    use smartred_core::strategy::{Iterative, Progressive, Traditional};

    use crate::config::ChurnConfig;
    use crate::faults::FaultPlan;

    fn r07() -> Reliability {
        Reliability::new(0.7).unwrap()
    }

    #[test]
    fn traditional_cost_is_exactly_k() {
        let cfg = DcaConfig::paper_baseline(500, 100, 0.3, 1);
        let report = run(Rc::new(Traditional::new(KVotes::new(5).unwrap())), &cfg).unwrap();
        assert_eq!(report.tasks_completed, 500);
        assert_eq!(report.cost_factor(), 5.0);
        assert_eq!(report.total_jobs, 2500);
        assert_eq!(report.tasks_stranded, 0);
    }

    #[test]
    fn simulated_reliability_tracks_eq2() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 2);
        let k = KVotes::new(9).unwrap();
        let report = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let expected = analysis::traditional::reliability(k, r07());
        assert!(
            (report.reliability() - expected).abs() < 0.015,
            "{} vs {expected}",
            report.reliability()
        );
    }

    #[test]
    fn progressive_cost_tracks_eq3() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 3);
        let k = KVotes::new(9).unwrap();
        let report = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
        let expected = analysis::progressive::cost_series(k, r07());
        assert!(
            (report.cost_factor() - expected).abs() < 0.1,
            "{} vs {expected}",
            report.cost_factor()
        );
    }

    #[test]
    fn iterative_cost_and_reliability_track_eq5_eq6() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 4);
        let d = VoteMargin::new(4).unwrap();
        let report = run(Rc::new(Iterative::new(d)), &cfg).unwrap();
        let cost = analysis::iterative::cost(d, r07());
        let rel = analysis::iterative::reliability(d, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.15,
            "{} vs {cost}",
            report.cost_factor()
        );
        assert!((report.reliability() - rel).abs() < 0.015);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = DcaConfig::paper_baseline(300, 50, 0.3, 77);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    /// A config with enough node-speed spread to make stragglers, and a
    /// hedge trigger warm enough to fire on them.
    fn hedged_config(seed: u64) -> DcaConfig {
        use smartred_core::hedge::HedgePolicy;
        let mut cfg = DcaConfig::paper_baseline(300, 60, 0.3, seed);
        cfg.pool.speed_window = (1.0, 4.0);
        cfg.timeout_units = 10.0;
        cfg.hedge = Some(HedgePolicy {
            quantile: 0.7,
            min_samples: 10,
            multiplier: 1.0,
            max_per_task: 2,
        });
        cfg
    }

    #[test]
    fn hedging_fires_and_every_twin_settles() {
        let cfg = hedged_config(21);
        let report = run(Rc::new(Iterative::new(VoteMargin::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(report.tasks_completed, 300);
        assert!(report.hedges_launched > 0, "no hedges fired");
        assert_eq!(
            report.hedges_launched,
            report.hedges_won + report.hedges_wasted,
            "every launched twin must settle exactly once"
        );
        assert!(report.total_cost() >= report.total_jobs + report.hedges_launched);
    }

    #[test]
    fn hedged_journal_replays_to_identical_report() {
        let cfg = hedged_config(22);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let run_a = run_journaled(s(), &cfg).unwrap();
        assert!(run_a.report.hedges_launched > 0);
        assert_eq!(
            crate::replay::report_from_journal(&run_a.journal, &cfg),
            run_a.report
        );
        // Journaling is a pure observer even with hedging enabled.
        assert_eq!(run(s(), &cfg).unwrap(), run_a.report);
        // The hedged journal round-trips through JSONL bit for bit.
        let restored =
            smartred_desim::journal::Journal::from_jsonl(&run_a.journal.to_jsonl()).unwrap();
        assert_eq!(restored.digest(), run_a.journal.digest());
    }

    #[test]
    fn hedging_never_fires_before_the_estimator_warms() {
        use smartred_core::hedge::HedgePolicy;
        let mut cfg = hedged_config(23);
        // More samples demanded than the run can ever produce.
        cfg.hedge = Some(HedgePolicy {
            min_samples: u64::MAX,
            ..HedgePolicy::default()
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(report.hedges_launched, 0);
        assert_eq!(report.cost_factor(), 3.0);
    }

    #[test]
    fn assignment_policies_preserve_verdict_metrics() {
        use smartred_core::execution::Assignment;
        let k = KVotes::new(5).unwrap();
        for policy in Assignment::ALL {
            let mut cfg = DcaConfig::paper_baseline(200, 40, 0.3, 31);
            cfg.assignment = policy;
            let s = || Rc::new(Traditional::new(k));
            let a = run(s(), &cfg).unwrap();
            // Deterministic per policy, cost structure untouched.
            assert_eq!(a, run(s(), &cfg).unwrap(), "{}", policy.name());
            assert_eq!(a.tasks_completed, 200, "{}", policy.name());
            assert_eq!(a.cost_factor(), 5.0, "{}", policy.name());
            // Replay agrees under every policy.
            let journaled = run_journaled(s(), &cfg).unwrap();
            assert_eq!(
                crate::replay::report_from_journal(&journaled.journal, &cfg),
                journaled.report,
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn response_time_orders_tr_pr_ir() {
        // §5.2: TR responds fastest; PR and IR pay for their waves.
        let cfg = DcaConfig::paper_baseline(5_000, 2_000, 0.3, 5);
        let k = KVotes::new(9).unwrap();
        let tr = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let pr = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
        let d = analysis::improvement::matched_margin(
            k,
            r07(),
            analysis::improvement::MarginMatch::Nearest,
        )
        .unwrap();
        let ir = run(Rc::new(Iterative::new(d)), &cfg).unwrap();
        assert!(
            tr.mean_response() < pr.mean_response(),
            "TR {} !< PR {}",
            tr.mean_response(),
            pr.mean_response()
        );
        assert!(pr.mean_response() <= ir.mean_response() * 1.05);
        // Fig. 6 magnitudes: single-wave TR sits in [1, 1.5].
        assert!(tr.mean_response() > 0.9 && tr.mean_response() < 1.6);
    }

    #[test]
    fn unresponsive_nodes_cause_timeouts() {
        let mut cfg = DcaConfig::paper_baseline(1_000, 200, 0.2, 6);
        cfg.pool.unresponsive_rate = 0.1;
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.timeouts > 0);
        // Timeouts count as wrong votes: effective r ≈ 0.7.
        let expected = analysis::traditional::reliability(KVotes::new(3).unwrap(), r07());
        assert!((report.reliability() - expected).abs() < 0.05);
    }

    #[test]
    fn reissue_policy_keeps_reliability_at_cost() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 200, 0.0, 7);
        cfg.pool.unresponsive_rate = 0.3;
        cfg.timeout_policy = TimeoutPolicy::Reissue;
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        // Only hangs exist; re-issue hides them from the vote, so every
        // verdict is correct, at > k jobs per task.
        assert_eq!(report.reliability(), 1.0);
        assert!(report.cost_factor() > 3.0);
    }

    #[test]
    fn job_cap_caps_tasks() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 200, 0.5, 8);
        cfg.job_cap = Some(6);
        let report = run(Rc::new(Iterative::new(VoteMargin::new(5).unwrap())), &cfg).unwrap();
        assert!(report.tasks_capped > 0);
        assert_eq!(report.tasks_capped + report.tasks_completed, 2_000);
    }

    #[test]
    fn common_shock_defeats_redundancy() {
        let mut cfg = DcaConfig::paper_baseline(4_000, 300, 0.3, 9);
        cfg.failure = FailureConfig::CommonShock {
            shock_probability: 0.2,
        };
        let k = KVotes::new(9).unwrap();
        let shocked = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let baseline = run(
            Rc::new(Traditional::new(k)),
            &DcaConfig::paper_baseline(4_000, 300, 0.3, 9),
        )
        .unwrap();
        // Perfectly correlated failures are unfixable by redundancy (§2.2):
        // reliability drops by roughly the shock probability.
        assert!(shocked.reliability() < baseline.reliability() - 0.1);
    }

    #[test]
    fn churn_departures_and_arrivals_happen() {
        let mut cfg = DcaConfig::paper_baseline(3_000, 100, 0.3, 10);
        cfg.churn = Some(ChurnConfig {
            leave_rate: 0.5,
            join_rate: 0.5,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.departures > 0);
        assert!(report.arrivals > 0);
        assert_eq!(report.tasks_completed + report.tasks_capped, 3_000);
    }

    #[test]
    fn pool_smaller_than_wave_still_completes() {
        // k = 9 but only 4 nodes: node reuse is waived after exhaustion.
        let cfg = DcaConfig::paper_baseline(50, 4, 0.3, 11);
        let report = run(Rc::new(Traditional::new(KVotes::new(9).unwrap())), &cfg).unwrap();
        assert_eq!(report.tasks_completed, 50);
        assert_eq!(report.cost_factor(), 9.0);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = DcaConfig::paper_baseline(0, 10, 0.3, 1);
        assert!(run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).is_err());
    }

    #[test]
    fn makespan_scales_with_load() {
        let small = DcaConfig::paper_baseline(100, 100, 0.3, 12);
        let large = DcaConfig::paper_baseline(2_000, 100, 0.3, 12);
        let s = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &small).unwrap();
        let l = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &large).unwrap();
        assert!(l.makespan_units > s.makespan_units * 5.0);
    }

    #[test]
    fn utilization_is_near_one_under_task_heavy_load() {
        // §5.2: tasks ≫ nodes means no node is ever idle. Only the final
        // drain-out (when fewer jobs remain than nodes) leaves slack.
        let cfg = DcaConfig::paper_baseline(20_000, 100, 0.3, 14);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(
            report.utilization() > 0.97,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn utilization_is_low_when_nodes_outnumber_work() {
        let cfg = DcaConfig::paper_baseline(50, 5_000, 0.3, 15);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(
            report.utilization() < 0.2,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn regional_outages_cause_correlated_timeouts() {
        let mut cfg = DcaConfig::paper_baseline(10_000, 300, 0.3, 16);
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 5,
            outage_rate: 0.5,
            outage_duration: 5.0,
        };
        let report = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
        assert!(report.outages > 0, "outages should occur");
        assert!(report.timeouts > 0, "outaged jobs hang to timeout");
        // Every task still terminates.
        assert_eq!(
            report.tasks_completed + report.tasks_capped + report.tasks_stranded,
            10_000
        );
        // Outages act as extra unreliability: cost exceeds the calm run.
        let calm = run(
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
            &DcaConfig::paper_baseline(10_000, 300, 0.3, 16),
        )
        .unwrap();
        assert!(report.cost_factor() > calm.cost_factor());
    }

    #[test]
    fn retry_hides_transient_timeouts_from_the_vote() {
        let mut cfg = DcaConfig::paper_baseline(1_000, 100, 0.0, 20);
        cfg.pool.unresponsive_rate = 0.2;
        // Count-as-wrong charges every hang straight to the vote…
        let base = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        // …retry-with-backoff re-deploys hangs instead of charging them.
        cfg.retry = Some(RetryPolicy::default());
        let retried = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(retried.retries > 0);
        assert!(
            retried.reliability() > base.reliability(),
            "retry {} !> base {}",
            retried.reliability(),
            base.reliability()
        );
        assert!(retried.reliability() > 0.99);
    }

    #[test]
    fn exhausted_retry_budget_falls_back_to_timeout_policy() {
        let mut cfg = DcaConfig::paper_baseline(300, 20, 0.0, 21);
        cfg.pool.unresponsive_rate = 0.5;
        cfg.retry = Some(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        // Half the jobs hang; one retry per task cannot absorb them all, so
        // post-budget timeouts land as wrong votes and cost reliability.
        assert!(report.retries > 0);
        assert!(report.reliability() < 1.0);
        assert_eq!(report.tasks_completed, 300);
    }

    #[test]
    fn quarantine_pulls_repeat_offenders_from_the_pool() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 50, 0.0, 22);
        cfg.pool.unresponsive_rate = 0.3;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 2,
            quarantine_units: 5.0,
            blacklist_after: 1_000,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.quarantines > 0);
        assert_eq!(report.blacklisted, 0);
        assert_eq!(report.tasks_completed, 2_000);
    }

    #[test]
    fn blacklisting_removes_persistent_hangers() {
        let mut cfg = DcaConfig::paper_baseline(500, 40, 0.0, 23);
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 1,
            quarantine_units: 0.5,
            blacklist_after: 2,
        });
        // Node 0 hangs for the whole run: every job it gets times out.
        cfg.faults = Some(FaultPlan::new().hang_window(0.0, 1e9, 0));
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(
            report.blacklisted >= 1,
            "blacklisted {}",
            report.blacklisted
        );
        assert_eq!(report.tasks_completed, 500);
        assert_eq!(report.reliability(), 1.0);
    }

    #[test]
    fn vote_losers_earn_strikes() {
        // Perfectly reliable except for colluders, so every strike comes
        // from losing a vote, not from timeouts.
        let mut cfg = DcaConfig::paper_baseline(2_000, 50, 0.3, 24);
        cfg.pool.unresponsive_rate = 0.0;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 3,
            quarantine_units: 2.0,
            blacklist_after: 1_000,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(5).unwrap())), &cfg).unwrap();
        assert_eq!(report.timeouts, 0);
        assert!(report.quarantines > 0);
        // Quarantining liars raises reliability over the undisciplined run.
        let base = run(
            Rc::new(Traditional::new(KVotes::new(5).unwrap())),
            &DcaConfig::paper_baseline(2_000, 50, 0.3, 24),
        )
        .unwrap();
        assert!(
            report.reliability() >= base.reliability(),
            "disciplined {} < undisciplined {}",
            report.reliability(),
            base.reliability()
        );
    }

    #[test]
    fn degraded_accept_converts_capped_tasks_into_confident_verdicts() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 200, 0.5, 8);
        cfg.job_cap = Some(6);
        let capped = run(Rc::new(Iterative::new(VoteMargin::new(5).unwrap())), &cfg).unwrap();
        assert!(capped.tasks_capped > 0);
        cfg.degraded_accept = true;
        let report = run(Rc::new(Iterative::new(VoteMargin::new(5).unwrap())), &cfg).unwrap();
        assert!(report.tasks_degraded > 0);
        assert!(report.tasks_capped < capped.tasks_capped);
        assert_eq!(report.tasks_completed + report.tasks_capped, 2_000);
        let q = report.mean_degraded_confidence();
        assert!(q > 0.0 && q <= 1.0, "confidence {q}");
    }

    #[test]
    fn fault_plan_crashes_depart_nodes_once() {
        let mut cfg = DcaConfig::paper_baseline(1_000, 50, 0.3, 25);
        cfg.faults = Some(
            FaultPlan::new()
                .crash_at(1.0, 0)
                .crash_at(1.0, 1)
                .crash_at(2.0, 0),
        );
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert_eq!(report.faults_injected, 3);
        // The second crash of node 0 finds it already gone.
        assert_eq!(report.crashes, 2);
        assert_eq!(report.tasks_completed, 1_000);
    }

    #[test]
    fn blackout_stalls_every_job_in_the_window() {
        let mut cfg = DcaConfig::paper_baseline(1_000, 100, 0.0, 26);
        cfg.timeout_policy = TimeoutPolicy::Reissue;
        cfg.faults = Some(FaultPlan::new().blackout(1.0, 3.0));
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.timeouts > 0);
        assert_eq!(report.reliability(), 1.0);
        let calm = run(
            Rc::new(Traditional::new(KVotes::new(3).unwrap())),
            &DcaConfig::paper_baseline(1_000, 100, 0.0, 26),
        )
        .unwrap();
        assert_eq!(calm.timeouts, 0);
    }

    #[test]
    fn collusion_burst_injects_correlated_wrong_votes() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 100, 0.0, 27);
        cfg.faults = Some(FaultPlan::new().collusion_burst(0.5, 5.0, 0.8));
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        // Perfect nodes never lose a vote — only the cartel can.
        assert!(report.reliability() < 1.0);
        assert_eq!(report.tasks_completed, 2_000);
    }

    #[test]
    fn stragglers_run_into_the_timeout() {
        let mut cfg = DcaConfig::paper_baseline(500, 10, 0.0, 28);
        // 50× slowdown pushes durations (0.5–1.5) far past the 3-unit
        // timeout: every job node 0 receives in the window times out.
        cfg.faults = Some(FaultPlan::new().straggler(0.0, 1e9, 0, 50.0));
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.timeouts > 0);
        assert_eq!(report.tasks_completed, 500);
    }

    #[test]
    fn chaotic_runs_are_deterministic() {
        let mut cfg = DcaConfig::paper_baseline(800, 60, 0.3, 29);
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.degraded_accept = true;
        cfg.job_cap = Some(12);
        cfg.churn = Some(ChurnConfig {
            leave_rate: 0.3,
            join_rate: 0.3,
        });
        cfg.faults = Some(
            FaultPlan::new()
                .crash_at(1.0, 3)
                .hang_window(2.0, 4.0, 5)
                .straggler(1.5, 6.0, 7, 8.0)
                .collusion_burst(3.0, 2.0, 0.4)
                .blackout(6.0, 1.0),
        );
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faults_injected, 5);
    }

    #[test]
    fn audit_catches_cartel_that_replication_misses() {
        use smartred_core::audit::AuditPolicy;

        use crate::config::CartelConfig;

        // Honest nodes are perfect; the only wrong votes come from a 40%
        // coalition lying in concert on a quarter of the tasks — rarely
        // enough that vote-loser discipline cannot pin down who lied
        // (when the cartel wins the vote, the honest voters are the ones
        // struck).
        let base_cfg = |audit: AuditPolicy| {
            let mut cfg = DcaConfig::paper_baseline(2_000, 50, 0.0, 40);
            cfg.cartel = Some(CartelConfig {
                members: 20,
                lie_rate: 0.25,
                dormancy_units: 10.0,
            });
            cfg.quarantine = Some(QuarantinePolicy::default());
            cfg.audit = audit;
            cfg
        };
        let s = || Rc::new(Traditional::new(KVotes::new(3).unwrap()));
        let unaudited = run(s(), &base_cfg(AuditPolicy::disabled())).unwrap();
        assert_eq!(unaudited.audits, 0);
        assert_eq!(unaudited.verdicts_voided, 0);
        assert!(
            unaudited.reliability() < 0.97,
            "the cartel should swing verdicts, got {}",
            unaudited.reliability()
        );

        let audited = run(s(), &base_cfg(AuditPolicy::spot(0.15))).unwrap();
        assert!(audited.audits > 0);
        assert!(audited.audit_failures > 0);
        assert!(audited.verdicts_voided > 0);
        assert!(
            audited.reliability() > unaudited.reliability() + 0.02,
            "audited {} !> unaudited {} + margin",
            audited.reliability(),
            unaudited.reliability()
        );

        // Matched cost: raising replication instead (TR-5, audit-free)
        // costs more than TR-3 plus a 15% audit budget, yet the coalition
        // still beats it — the audit layer wins the frontier.
        let tr5 = run(
            Rc::new(Traditional::new(KVotes::new(5).unwrap())),
            &base_cfg(AuditPolicy::disabled()),
        )
        .unwrap();
        assert!(
            audited.total_cost() <= tr5.total_cost(),
            "audited cost {} !<= TR-5 cost {}",
            audited.total_cost(),
            tr5.total_cost()
        );
        assert!(
            audited.reliability() > tr5.reliability(),
            "audited {} !> TR-5 {}",
            audited.reliability(),
            tr5.reliability()
        );
    }

    #[test]
    fn probation_forces_audits_after_quarantine_release() {
        use smartred_core::audit::AuditPolicy;

        // spot_rate 0: every audit on the report must come from a
        // probation flag. Timeout strikes quarantine hangers; releases put
        // them on probation; their next results force audits.
        let mut cfg = DcaConfig::paper_baseline(2_000, 40, 0.0, 41);
        cfg.pool.unresponsive_rate = 0.2;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 2,
            quarantine_units: 1.0,
            blacklist_after: 1_000,
        });
        cfg.audit = AuditPolicy {
            spot_rate: 0.0,
            escalated_rate: 0.0,
            probation_audits: 2,
            strike_weight: 3,
        };
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.quarantines > 0);
        assert!(
            report.audits > 0,
            "probationary results must flag their tasks for audit"
        );
        // Hangs never record a value, so no one can be convicted of lying
        // — but audits still void verdicts that timeouts swung to wrong
        // (CountAsWrong), rescuing those tasks.
        assert_eq!(report.audit_failures, 0);
        assert!(report.verdicts_voided > 0);
    }

    #[test]
    fn caught_cartel_dormancy_evades_further_detection() {
        use smartred_core::audit::AuditPolicy;

        use crate::config::CartelConfig;

        let run_with_dormancy = |dormancy_units: f64| {
            let mut cfg = DcaConfig::paper_baseline(2_000, 50, 0.0, 42);
            cfg.cartel = Some(CartelConfig {
                members: 20,
                lie_rate: 0.3,
                dormancy_units,
            });
            cfg.quarantine = Some(QuarantinePolicy::default());
            cfg.audit = AuditPolicy::spot(0.2);
            run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap()
        };
        let brazen = run_with_dormancy(0.0);
        let adaptive = run_with_dormancy(30.0);
        // An adaptive cartel that lies low after a member is caught gives
        // the auditor far less evidence than one that keeps lying.
        assert!(brazen.audit_failures > 0);
        assert!(
            adaptive.audit_failures < brazen.audit_failures,
            "adaptive {} !< brazen {}",
            adaptive.audit_failures,
            brazen.audit_failures
        );
    }

    #[test]
    fn audited_runs_are_deterministic() {
        use smartred_core::audit::AuditPolicy;

        use crate::config::CartelConfig;

        let mut cfg = DcaConfig::paper_baseline(800, 60, 0.2, 43);
        cfg.pool.unresponsive_rate = 0.05;
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        cfg.audit = AuditPolicy::spot(0.2);
        cfg.cartel = Some(CartelConfig {
            members: 15,
            lie_rate: 0.3,
            dormancy_units: 5.0,
        });
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.audits > 0);
    }

    #[test]
    fn zero_outage_rate_matches_independent() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 100, 0.3, 17);
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 4,
            outage_rate: 0.0,
            outage_duration: 1.0,
        };
        let with = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        let without = run(
            Rc::new(Traditional::new(KVotes::new(3).unwrap())),
            &DcaConfig::paper_baseline(2_000, 100, 0.3, 17),
        )
        .unwrap();
        assert_eq!(with.outages, 0);
        assert_eq!(with.reliability(), without.reliability());
        assert_eq!(with.total_jobs, without.total_jobs);
    }
}
