//! The event-driven DCA model of Figure 1.
//!
//! A task server subdivides the computation into tasks, creates jobs, and
//! assigns each job to a random idle node; nodes return results after a
//! stochastic duration (or hang until the server's timeout); the strategy
//! decides wave by wave whether to deploy more jobs or accept a verdict.
//!
//! Two modeling choices worth calling out:
//!
//! * **Retry priority.** Top-up waves (wave ≥ 2) jump the job queue. In a
//!   saturated system (tasks ≫ nodes, as in the paper's runs) this keeps a
//!   task's response time equal to its own execution waves rather than
//!   coupling it to global queue depth — matching both BOINC's retry
//!   prioritization and the 1–3 time-unit response times of Figure 6.
//! * **Slow jobs time out.** A job whose execution would outlast the server
//!   timeout is indistinguishable from a hang, so it resolves via the
//!   timeout path.

use std::collections::VecDeque;
use std::rc::Rc;

use rand::Rng;
use smartred_core::error::ParamError;
use smartred_core::execution::{Poll, TaskExecution};
use smartred_core::strategy::RedundancyStrategy;
use smartred_desim::engine::Simulator;
use smartred_desim::rng::{seeded_rng, SimRng};
use smartred_desim::time::{SimDuration, SimTime};

use crate::config::{DcaConfig, FailureConfig, TimeoutPolicy};
use crate::job::{JobId, JobOutcome, JobRegistry};
use crate::metrics::DcaReport;
use crate::pool::{NodeIndex, NodePool};

/// A shared, immutable redundancy strategy driving every task of a run.
pub type SharedStrategy = Rc<dyn RedundancyStrategy<bool>>;

struct TaskState {
    exec: TaskExecution<bool, SharedStrategy>,
    started_at: Option<SimTime>,
    used_nodes: Vec<NodeIndex>,
    shocked: bool,
    finished: bool,
}

/// The mutable world threaded through every event.
struct World {
    cfg: DcaConfig,
    strategy: SharedStrategy,
    pool: NodePool,
    tasks: Vec<TaskState>,
    /// Pending job requests (task indices); top-up waves are pushed to the
    /// front (retry priority), first waves to the back.
    queue: VecDeque<usize>,
    jobs: JobRegistry,
    rng: SimRng,
    report: DcaReport,
    next_unstarted: usize,
    unfinished: usize,
    /// Per-region outage end times (empty unless `RegionalOutages` is
    /// configured). Node `i` belongs to region `i % regions.len()`.
    region_down_until: Vec<SimTime>,
}

type Sim = Simulator<World>;

/// Runs one DCA simulation and returns its metrics.
///
/// All randomness derives from `config.seed`; identical inputs produce
/// identical reports.
///
/// # Errors
///
/// Returns [`ParamError`] if the configuration fails
/// [`DcaConfig::validate`].
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::Traditional;
/// use smartred_dca::config::DcaConfig;
/// use smartred_dca::sim::run;
///
/// let cfg = DcaConfig::paper_baseline(200, 50, 0.3, 42);
/// let report = run(Rc::new(Traditional::new(KVotes::new(3)?)), &cfg)?;
/// assert_eq!(report.tasks_completed, 200);
/// assert_eq!(report.cost_factor(), 3.0);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn run(strategy: SharedStrategy, config: &DcaConfig) -> Result<DcaReport, ParamError> {
    config.validate()?;
    let mut rng = seeded_rng(config.seed);
    let pool = NodePool::from_config(&config.pool, &mut rng);
    let mut world = World {
        cfg: config.clone(),
        strategy,
        pool,
        tasks: Vec::with_capacity(config.tasks.min(1 << 20)),
        queue: VecDeque::new(),
        jobs: JobRegistry::new(),
        rng,
        report: DcaReport::new(),
        next_unstarted: 0,
        unfinished: config.tasks,
        region_down_until: match config.failure {
            FailureConfig::RegionalOutages { regions, .. } => vec![SimTime::ZERO; regions],
            _ => Vec::new(),
        },
    };
    let mut sim = Sim::new();
    if let FailureConfig::RegionalOutages { outage_rate, .. } = config.failure {
        if outage_rate > 0.0 {
            schedule_outage(&mut world, &mut sim);
        }
    }
    if let Some(churn) = config.churn {
        if churn.leave_rate > 0.0 {
            schedule_departure(&mut world, &mut sim);
        }
        if churn.join_rate > 0.0 {
            schedule_arrival(&mut world, &mut sim);
        }
    }
    pump(&mut world, &mut sim);
    sim.run(&mut world);
    world.report.tasks_stranded =
        config.tasks - world.report.tasks_completed - world.report.tasks_capped;
    world.report.makespan_units = sim.now().as_units();
    world.report.capacity_node_units = config.pool.size as f64 * world.report.makespan_units;
    Ok(world.report)
}

/// Greedily assigns queued jobs to idle nodes and lazily starts new tasks.
fn pump(world: &mut World, sim: &mut Sim) {
    loop {
        if world.pool.idle_count() == 0 {
            return;
        }
        if world.queue.is_empty() && !start_next_task(world, sim) {
            return;
        }
        let mut placed_any = false;
        for _ in 0..world.queue.len() {
            if world.pool.idle_count() == 0 {
                return;
            }
            let Some(task) = world.queue.pop_front() else {
                break;
            };
            debug_assert!(!world.tasks[task].finished, "finished task left jobs queued");
            let node = world
                .pool
                .claim_random_idle(&world.tasks[task].used_nodes, &mut world.rng);
            match node {
                Some(node) => {
                    dispatch_job(world, sim, task, node);
                    placed_any = true;
                }
                None => world.queue.push_back(task),
            }
        }
        if !placed_any && !start_next_task(world, sim) {
            return;
        }
    }
}

/// Creates the next task, if any remain, and queues its first wave.
fn start_next_task(world: &mut World, sim: &mut Sim) -> bool {
    if world.next_unstarted >= world.cfg.tasks {
        return false;
    }
    world.next_unstarted += 1;
    let mut exec = TaskExecution::new(world.strategy.clone());
    if let Some(cap) = world.cfg.job_cap {
        exec = exec.with_job_cap(cap);
    }
    let shocked = match world.cfg.failure {
        FailureConfig::Independent | FailureConfig::RegionalOutages { .. } => false,
        FailureConfig::CommonShock { shock_probability } => {
            world.rng.gen_bool(shock_probability)
        }
    };
    world.tasks.push(TaskState {
        exec,
        started_at: None,
        used_nodes: Vec::new(),
        shocked,
        finished: false,
    });
    let t = world.tasks.len() - 1;
    poll_task(world, sim, t, /* priority = */ false);
    true
}

/// Asks a task's strategy what to do next and queues any new wave.
fn poll_task(world: &mut World, sim: &mut Sim, t: usize, priority: bool) {
    if world.tasks[t].finished {
        return;
    }
    match world.tasks[t].exec.poll() {
        Ok(Poll::Deploy(n)) => {
            for _ in 0..n {
                if priority {
                    world.queue.push_front(t);
                } else {
                    world.queue.push_back(t);
                }
            }
        }
        Ok(Poll::Complete(v)) => finalize(world, sim, t, Some(v)),
        Ok(Poll::Pending) => {}
        Err(_capped) => finalize(world, sim, t, None),
    }
}

/// Records a task's terminal state in the run metrics.
fn finalize(world: &mut World, sim: &mut Sim, t: usize, verdict: Option<bool>) {
    let state = &mut world.tasks[t];
    debug_assert!(!state.finished);
    state.finished = true;
    world.unfinished -= 1;
    match verdict {
        Some(v) => {
            world.report.tasks_completed += 1;
            if v {
                world.report.tasks_correct += 1;
            }
            world
                .report
                .jobs_per_task
                .record(state.exec.jobs_deployed() as f64);
            world
                .report
                .waves_per_task
                .record(state.exec.waves() as f64);
            let started = state.started_at.unwrap_or_else(|| sim.now());
            world
                .report
                .response_time
                .record(sim.now().since(started).as_units());
        }
        None => world.report.tasks_capped += 1,
    }
}

/// Dispatches one job of `task` on `node` (already claimed from the idle
/// set): draws its outcome and duration, registers it, and schedules its
/// resolution event.
fn dispatch_job(world: &mut World, sim: &mut Sim, task: usize, node: NodeIndex) {
    let outcome = draw_outcome(world, sim.now(), task, node);
    let (lo, hi) = world.cfg.duration_window;
    let base = if lo == hi {
        lo
    } else {
        world.rng.gen_range(lo..=hi)
    };
    let duration_units = base * world.pool.node(node).speed;

    let job = world.jobs.dispatch(task, node, outcome);
    world.pool.node_mut(node).current_job = Some(job);
    world.report.total_jobs += 1;
    let state = &mut world.tasks[task];
    state.used_nodes.push(node);
    if state.started_at.is_none() {
        state.started_at = Some(sim.now());
    }

    let times_out =
        outcome == JobOutcome::NoResponse || duration_units > world.cfg.timeout_units;
    let delay = if times_out {
        SimDuration::from_units(world.cfg.timeout_units)
    } else {
        SimDuration::from_units(duration_units)
    };
    world.report.busy_node_units += delay.as_units();
    sim.schedule_in(delay, move |world, sim| {
        resolve_job(world, sim, job, times_out);
    });
}

/// Draws a job's outcome from the node's fault parameters, the task's
/// shock state, and any active regional outage.
fn draw_outcome(world: &mut World, now: SimTime, task: usize, node: NodeIndex) -> JobOutcome {
    if !world.region_down_until.is_empty() {
        let region = node % world.region_down_until.len();
        if world.region_down_until[region] > now {
            return JobOutcome::NoResponse;
        }
    }
    let n = world.pool.node(node);
    if world.tasks[task].shocked && n.wrong_rate > 0.0 {
        return JobOutcome::Wrong;
    }
    let u: f64 = world.rng.gen();
    if u < n.unresponsive_rate {
        JobOutcome::NoResponse
    } else if u < n.unresponsive_rate + n.wrong_rate {
        JobOutcome::Wrong
    } else {
        JobOutcome::Correct
    }
}

/// Resolves a job: feeds its result (or its timeout) to the task and pumps
/// the scheduler. Idempotent — late events for already-resolved jobs (e.g.
/// after a node departure) are ignored.
fn resolve_job(world: &mut World, sim: &mut Sim, job: JobId, timed_out: bool) {
    let Some(slot) = world.jobs.resolve(job) else {
        return;
    };
    world.pool.release(slot.node);
    let t = slot.task;
    if !world.tasks[t].finished {
        if timed_out {
            world.report.timeouts += 1;
            match world.cfg.timeout_policy {
                TimeoutPolicy::CountAsWrong => world.tasks[t].exec.record(false),
                TimeoutPolicy::Reissue => world.tasks[t].exec.abandon(1),
            }
        } else {
            world.tasks[t].exec.record(slot.outcome == JobOutcome::Correct);
        }
        poll_task(world, sim, t, /* priority = */ true);
    }
    pump(world, sim);
}

/// Schedules the next regional outage (Poisson process): a random region
/// goes silent for the configured duration.
fn schedule_outage(world: &mut World, sim: &mut Sim) {
    let FailureConfig::RegionalOutages {
        outage_rate,
        outage_duration,
        ..
    } = world.cfg.failure
    else {
        unreachable!("outages scheduled only under RegionalOutages");
    };
    let delay = exponential_delay(&mut world.rng, outage_rate);
    sim.schedule_in(delay, move |world, sim| {
        if world.unfinished == 0 {
            return;
        }
        let region = world.rng.gen_range(0..world.region_down_until.len());
        let until = sim.now() + SimDuration::from_units(outage_duration);
        world.report.outages += 1;
        if until > world.region_down_until[region] {
            world.region_down_until[region] = until;
        }
        schedule_outage(world, sim);
    });
}

fn exponential_delay(rng: &mut SimRng, rate: f64) -> SimDuration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    SimDuration::from_units(-u.ln() / rate)
}

/// Schedules the next volunteer departure (Poisson process).
fn schedule_departure(world: &mut World, sim: &mut Sim) {
    let rate = world.cfg.churn.expect("churn configured").leave_rate;
    let delay = exponential_delay(&mut world.rng, rate);
    sim.schedule_in(delay, |world, sim| {
        if world.unfinished == 0 {
            return; // computation over; stop the churn process
        }
        if let Some(idx) = world.pool.random_alive(&mut world.rng) {
            let orphaned = world.pool.depart(idx);
            world.report.departures += 1;
            if let Some(job) = orphaned {
                // The node vanished mid-job: the server sees a timeout.
                resolve_job(world, sim, job, true);
            }
        }
        schedule_departure(world, sim);
    });
}

/// Schedules the next volunteer arrival (Poisson process).
fn schedule_arrival(world: &mut World, sim: &mut Sim) {
    let rate = world.cfg.churn.expect("churn configured").join_rate;
    let delay = exponential_delay(&mut world.rng, rate);
    sim.schedule_in(delay, |world, sim| {
        if world.unfinished == 0 {
            return;
        }
        let pool_cfg = world.cfg.pool;
        world.pool.spawn_node(&pool_cfg, &mut world.rng);
        world.report.arrivals += 1;
        pump(world, sim);
        schedule_arrival(world, sim);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_core::analysis;
    use smartred_core::params::{KVotes, Reliability, VoteMargin};
    use smartred_core::strategy::{Iterative, Progressive, Traditional};

    use crate::config::ChurnConfig;

    fn r07() -> Reliability {
        Reliability::new(0.7).unwrap()
    }

    #[test]
    fn traditional_cost_is_exactly_k() {
        let cfg = DcaConfig::paper_baseline(500, 100, 0.3, 1);
        let report = run(Rc::new(Traditional::new(KVotes::new(5).unwrap())), &cfg).unwrap();
        assert_eq!(report.tasks_completed, 500);
        assert_eq!(report.cost_factor(), 5.0);
        assert_eq!(report.total_jobs, 2500);
        assert_eq!(report.tasks_stranded, 0);
    }

    #[test]
    fn simulated_reliability_tracks_eq2() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 2);
        let k = KVotes::new(9).unwrap();
        let report = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let expected = analysis::traditional::reliability(k, r07());
        assert!(
            (report.reliability() - expected).abs() < 0.015,
            "{} vs {expected}",
            report.reliability()
        );
    }

    #[test]
    fn progressive_cost_tracks_eq3() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 3);
        let k = KVotes::new(9).unwrap();
        let report = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
        let expected = analysis::progressive::cost_series(k, r07());
        assert!(
            (report.cost_factor() - expected).abs() < 0.1,
            "{} vs {expected}",
            report.cost_factor()
        );
    }

    #[test]
    fn iterative_cost_and_reliability_track_eq5_eq6() {
        let cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 4);
        let d = VoteMargin::new(4).unwrap();
        let report = run(Rc::new(Iterative::new(d)), &cfg).unwrap();
        let cost = analysis::iterative::cost(d, r07());
        let rel = analysis::iterative::reliability(d, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.15,
            "{} vs {cost}",
            report.cost_factor()
        );
        assert!((report.reliability() - rel).abs() < 0.015);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = DcaConfig::paper_baseline(300, 50, 0.3, 77);
        let s = || Rc::new(Iterative::new(VoteMargin::new(3).unwrap()));
        let a = run(s(), &cfg).unwrap();
        let b = run(s(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn response_time_orders_tr_pr_ir() {
        // §5.2: TR responds fastest; PR and IR pay for their waves.
        let cfg = DcaConfig::paper_baseline(5_000, 2_000, 0.3, 5);
        let k = KVotes::new(9).unwrap();
        let tr = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let pr = run(Rc::new(Progressive::new(k)), &cfg).unwrap();
        let d = analysis::improvement::matched_margin(
            k,
            r07(),
            analysis::improvement::MarginMatch::Nearest,
        )
        .unwrap();
        let ir = run(Rc::new(Iterative::new(d)), &cfg).unwrap();
        assert!(
            tr.mean_response() < pr.mean_response(),
            "TR {} !< PR {}",
            tr.mean_response(),
            pr.mean_response()
        );
        assert!(pr.mean_response() <= ir.mean_response() * 1.05);
        // Fig. 6 magnitudes: single-wave TR sits in [1, 1.5].
        assert!(tr.mean_response() > 0.9 && tr.mean_response() < 1.6);
    }

    #[test]
    fn unresponsive_nodes_cause_timeouts() {
        let mut cfg = DcaConfig::paper_baseline(1_000, 200, 0.2, 6);
        cfg.pool.unresponsive_rate = 0.1;
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.timeouts > 0);
        // Timeouts count as wrong votes: effective r ≈ 0.7.
        let expected =
            analysis::traditional::reliability(KVotes::new(3).unwrap(), r07());
        assert!((report.reliability() - expected).abs() < 0.05);
    }

    #[test]
    fn reissue_policy_keeps_reliability_at_cost() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 200, 0.0, 7);
        cfg.pool.unresponsive_rate = 0.3;
        cfg.timeout_policy = TimeoutPolicy::Reissue;
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        // Only hangs exist; re-issue hides them from the vote, so every
        // verdict is correct, at > k jobs per task.
        assert_eq!(report.reliability(), 1.0);
        assert!(report.cost_factor() > 3.0);
    }

    #[test]
    fn job_cap_caps_tasks() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 200, 0.5, 8);
        cfg.job_cap = Some(6);
        let report = run(Rc::new(Iterative::new(VoteMargin::new(5).unwrap())), &cfg).unwrap();
        assert!(report.tasks_capped > 0);
        assert_eq!(
            report.tasks_capped + report.tasks_completed,
            2_000
        );
    }

    #[test]
    fn common_shock_defeats_redundancy() {
        let mut cfg = DcaConfig::paper_baseline(4_000, 300, 0.3, 9);
        cfg.failure = FailureConfig::CommonShock {
            shock_probability: 0.2,
        };
        let k = KVotes::new(9).unwrap();
        let shocked = run(Rc::new(Traditional::new(k)), &cfg).unwrap();
        let baseline = run(
            Rc::new(Traditional::new(k)),
            &DcaConfig::paper_baseline(4_000, 300, 0.3, 9),
        )
        .unwrap();
        // Perfectly correlated failures are unfixable by redundancy (§2.2):
        // reliability drops by roughly the shock probability.
        assert!(shocked.reliability() < baseline.reliability() - 0.1);
    }

    #[test]
    fn churn_departures_and_arrivals_happen() {
        let mut cfg = DcaConfig::paper_baseline(3_000, 100, 0.3, 10);
        cfg.churn = Some(ChurnConfig {
            leave_rate: 0.5,
            join_rate: 0.5,
        });
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(report.departures > 0);
        assert!(report.arrivals > 0);
        assert_eq!(report.tasks_completed + report.tasks_capped, 3_000);
    }

    #[test]
    fn pool_smaller_than_wave_still_completes() {
        // k = 9 but only 4 nodes: node reuse is waived after exhaustion.
        let cfg = DcaConfig::paper_baseline(50, 4, 0.3, 11);
        let report = run(Rc::new(Traditional::new(KVotes::new(9).unwrap())), &cfg).unwrap();
        assert_eq!(report.tasks_completed, 50);
        assert_eq!(report.cost_factor(), 9.0);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = DcaConfig::paper_baseline(0, 10, 0.3, 1);
        assert!(run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).is_err());
    }

    #[test]
    fn makespan_scales_with_load() {
        let small = DcaConfig::paper_baseline(100, 100, 0.3, 12);
        let large = DcaConfig::paper_baseline(2_000, 100, 0.3, 12);
        let s = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &small).unwrap();
        let l = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &large).unwrap();
        assert!(l.makespan_units > s.makespan_units * 5.0);
    }

    #[test]
    fn utilization_is_near_one_under_task_heavy_load() {
        // §5.2: tasks ≫ nodes means no node is ever idle. Only the final
        // drain-out (when fewer jobs remain than nodes) leaves slack.
        let cfg = DcaConfig::paper_baseline(20_000, 100, 0.3, 14);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(
            report.utilization() > 0.97,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn utilization_is_low_when_nodes_outnumber_work() {
        let cfg = DcaConfig::paper_baseline(50, 5_000, 0.3, 15);
        let report = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        assert!(
            report.utilization() < 0.2,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn regional_outages_cause_correlated_timeouts() {
        let mut cfg = DcaConfig::paper_baseline(10_000, 300, 0.3, 16);
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 5,
            outage_rate: 0.5,
            outage_duration: 5.0,
        };
        let report = run(Rc::new(Iterative::new(VoteMargin::new(4).unwrap())), &cfg).unwrap();
        assert!(report.outages > 0, "outages should occur");
        assert!(report.timeouts > 0, "outaged jobs hang to timeout");
        // Every task still terminates.
        assert_eq!(
            report.tasks_completed + report.tasks_capped + report.tasks_stranded,
            10_000
        );
        // Outages act as extra unreliability: cost exceeds the calm run.
        let calm = run(
            Rc::new(Iterative::new(VoteMargin::new(4).unwrap())),
            &DcaConfig::paper_baseline(10_000, 300, 0.3, 16),
        )
        .unwrap();
        assert!(report.cost_factor() > calm.cost_factor());
    }

    #[test]
    fn zero_outage_rate_matches_independent() {
        let mut cfg = DcaConfig::paper_baseline(2_000, 100, 0.3, 17);
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 4,
            outage_rate: 0.0,
            outage_duration: 1.0,
        };
        let with = run(Rc::new(Traditional::new(KVotes::new(3).unwrap())), &cfg).unwrap();
        let without = run(
            Rc::new(Traditional::new(KVotes::new(3).unwrap())),
            &DcaConfig::paper_baseline(2_000, 100, 0.3, 17),
        )
        .unwrap();
        assert_eq!(with.outages, 0);
        assert_eq!(with.reliability(), without.reliability());
        assert_eq!(with.total_jobs, without.total_jobs);
    }
}