//! Configuration of a DCA simulation run.

use smartred_core::audit::AuditPolicy;
use smartred_core::error::ParamError;
use smartred_core::execution::Assignment;
use smartred_core::hedge::HedgePolicy;
use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};
use smartred_desim::network::LinkSpec;

use crate::faults::FaultPlan;

/// How node fault rates are distributed across the pool.
///
/// In every profile, *wrong rate* is the probability that a job on the node
/// returns the colluding wrong value (the Byzantine worst case of §2.2);
/// the paper's pool-average reliability is `r = 1 − mean wrong rate −
/// unresponsive rate` when timeouts count as failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReliabilityProfile {
    /// Every node has the same wrong rate (the paper's base assumption 1).
    Uniform {
        /// Per-job probability of returning the wrong value.
        wrong_rate: f64,
    },
    /// Wrong rates drawn uniformly from `mean ± half_width`, clipped to
    /// `[0, 1]` — the §5.3 relaxation with heterogeneous reliabilities but
    /// the same pool mean.
    Spread {
        /// Mean per-job wrong rate across the pool.
        mean_wrong: f64,
        /// Half-width of the uniform spread around the mean.
        half_width: f64,
    },
    /// A reliable majority plus a colluding Byzantine cartel — the cartel's
    /// members fail at `byzantine_wrong` (typically 1.0) while honest nodes
    /// fail at `honest_wrong`.
    TwoClass {
        /// Wrong rate of honest nodes (models accidental faults).
        honest_wrong: f64,
        /// Wrong rate of cartel members.
        byzantine_wrong: f64,
        /// Fraction of the pool in the cartel.
        byzantine_fraction: f64,
    },
}

impl ReliabilityProfile {
    /// Mean wrong rate implied by the profile.
    pub fn mean_wrong_rate(&self) -> f64 {
        match *self {
            ReliabilityProfile::Uniform { wrong_rate } => wrong_rate,
            ReliabilityProfile::Spread { mean_wrong, .. } => mean_wrong,
            ReliabilityProfile::TwoClass {
                honest_wrong,
                byzantine_wrong,
                byzantine_fraction,
            } => honest_wrong * (1.0 - byzantine_fraction) + byzantine_wrong * byzantine_fraction,
        }
    }

    /// Largest wrong rate any node drawn from the profile can have.
    ///
    /// Used to validate that `wrong_rate + unresponsive_rate ≤ 1` holds for
    /// *every* node, not just on average: the three per-job outcomes
    /// (correct, wrong, hang) are mutually exclusive, so their
    /// probabilities must sum to at most 1 per node.
    pub fn max_wrong_rate(&self) -> f64 {
        match *self {
            ReliabilityProfile::Uniform { wrong_rate } => wrong_rate,
            ReliabilityProfile::Spread {
                mean_wrong,
                half_width,
            } => (mean_wrong + half_width).min(1.0),
            ReliabilityProfile::TwoClass {
                honest_wrong,
                byzantine_wrong,
                byzantine_fraction,
            } => {
                if byzantine_fraction > 0.0 {
                    honest_wrong.max(byzantine_wrong)
                } else {
                    honest_wrong
                }
            }
        }
    }

    fn validate(&self) -> Result<(), ParamError> {
        let check = |name: &'static str, v: f64| {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                Err(ParamError::OutOfRange {
                    name,
                    value: v,
                    expected: "[0, 1]",
                })
            } else {
                Ok(())
            }
        };
        match *self {
            ReliabilityProfile::Uniform { wrong_rate } => check("wrong_rate", wrong_rate),
            ReliabilityProfile::Spread {
                mean_wrong,
                half_width,
            } => {
                check("mean_wrong", mean_wrong)?;
                check("half_width", half_width)
            }
            ReliabilityProfile::TwoClass {
                honest_wrong,
                byzantine_wrong,
                byzantine_fraction,
            } => {
                check("honest_wrong", honest_wrong)?;
                check("byzantine_wrong", byzantine_wrong)?;
                check("byzantine_fraction", byzantine_fraction)
            }
        }
    }
}

/// Node-pool shape and behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Number of nodes initially in the pool (the paper uses 10,000).
    pub size: usize,
    /// Distribution of wrong rates.
    pub profile: ReliabilityProfile,
    /// Per-job probability that a node hangs and never reports (resolved by
    /// the server's timeout).
    pub unresponsive_rate: f64,
    /// Node speed multipliers drawn uniformly from this window; job duration
    /// is the base draw times the node's speed factor.
    pub speed_window: (f64, f64),
}

impl PoolConfig {
    /// A homogeneous pool matching the paper's §4.1 setup: `size` nodes,
    /// every job wrong with probability `wrong_rate`, no hangs, unit speed.
    pub fn uniform(size: usize, wrong_rate: f64) -> Self {
        Self {
            size,
            profile: ReliabilityProfile::Uniform { wrong_rate },
            unresponsive_rate: 0.0,
            speed_window: (1.0, 1.0),
        }
    }
}

/// What the server does when a job times out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeoutPolicy {
    /// Treat the missing report as a colluding wrong vote — the paper's
    /// reading ("a node that does not report a result in a timely fashion
    /// [is assumed] to have failed", §2.2).
    #[default]
    CountAsWrong,
    /// Abandon the job and let the strategy re-deploy — BOINC's actual
    /// re-issue behavior.
    Reissue,
}

/// Correlation structure of failures (§5.3 relaxation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailureConfig {
    /// Failures independent across jobs (base assumption 3).
    #[default]
    Independent,
    /// With probability `shock_probability`, a task is "shocked": every
    /// fallible node deterministically fails on its jobs, modeling a common
    /// cause such as a coordinated cartel attack.
    CommonShock {
        /// Per-task probability of the common shock.
        shock_probability: f64,
    },
    /// Geographically correlated failures — §5.3's "if a node in one part
    /// of the world fails because of a natural disaster, others near it
    /// are more likely to fail as well". Nodes are spread round-robin over
    /// `regions`; outages strike random regions as a Poisson process and
    /// silence every node there (jobs hang until the server timeout) for
    /// `outage_duration` time units.
    RegionalOutages {
        /// Number of geographic regions.
        regions: usize,
        /// Expected outages per simulated time unit (across all regions).
        outage_rate: f64,
        /// How long each outage lasts, in time units.
        outage_duration: f64,
    },
}

/// An adaptive colluding cartel: the first `members` initial pool indices
/// lie in concert on a seeded per-task schedule
/// ([`Cartel::lies_on`](smartred_core::audit::Cartel::lies_on)), throttled
/// by `lie_rate` to stay under vote-loser strike thresholds, and go
/// dormant for `dormancy_units` of simulated time whenever an audit
/// catches a member — the adversary model the audit layer is measured
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartelConfig {
    /// Number of colluding nodes (initial pool indices `0..members`).
    pub members: usize,
    /// Fraction of tasks the cartel lies on, in `[0, 1]`.
    pub lie_rate: f64,
    /// Simulated time the cartel stays dormant after an audit catches any
    /// member; `0` disables the adaptation (the cartel never backs off).
    pub dormancy_units: f64,
}

impl CartelConfig {
    fn validate(&self, pool_size: usize) -> Result<(), ParamError> {
        if self.members > pool_size {
            return Err(ParamError::OutOfRange {
                name: "cartel.members",
                value: self.members as f64,
                expected: "at most the pool size",
            });
        }
        if !(0.0..=1.0).contains(&self.lie_rate) || !self.lie_rate.is_finite() {
            return Err(ParamError::OutOfRange {
                name: "cartel.lie_rate",
                value: self.lie_rate,
                expected: "[0, 1]",
            });
        }
        if !(self.dormancy_units.is_finite() && self.dormancy_units >= 0.0) {
            return Err(ParamError::OutOfRange {
                name: "cartel.dormancy_units",
                value: self.dormancy_units,
                expected: "finite and non-negative",
            });
        }
        Ok(())
    }
}

/// Network/resource model: every dispatched job must receive its input
/// payload over the node's link before service begins (see
/// [`smartred_desim::network::NetworkModel`]). Transfers are journaled as
/// `TransferStarted`/`TransferCompleted` pairs and charged to node busy
/// time; the job's timeout and hedge clocks start only once the payload
/// has landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Uniform link budget for every node.
    pub link: LinkSpec,
    /// Input payload bytes each job moves before starting.
    pub payload_bytes: u64,
}

/// Node churn: volunteers joining and leaving mid-computation (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Expected node departures per simulated time unit.
    pub leave_rate: f64,
    /// Expected node arrivals per simulated time unit.
    pub join_rate: f64,
}

/// Full configuration of a DCA simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DcaConfig {
    /// Number of tasks in the computation.
    pub tasks: usize,
    /// Node pool.
    pub pool: PoolConfig,
    /// Base job-duration window in time units (the paper's `U[0.5, 1.5]`).
    pub duration_window: (f64, f64),
    /// Server-side job timeout in time units.
    pub timeout_units: f64,
    /// Timeout handling policy.
    pub timeout_policy: TimeoutPolicy,
    /// Optional per-task job cap (see `TaskExecution::with_job_cap`).
    pub job_cap: Option<usize>,
    /// Failure correlation structure.
    pub failure: FailureConfig,
    /// Optional churn process.
    pub churn: Option<ChurnConfig>,
    /// Optional retry-with-backoff for timed-out jobs; when present, a
    /// timeout is abandoned and re-deployed after a jittered exponential
    /// backoff until the task's retry budget is spent, and only then does
    /// [`TimeoutPolicy`] apply.
    pub retry: Option<RetryPolicy>,
    /// Optional strike-based node discipline: nodes that repeatedly time
    /// out or vote against accepted verdicts are quarantined, and
    /// repeatedly quarantined nodes are blacklisted.
    pub quarantine: Option<QuarantinePolicy>,
    /// Graceful degradation: when a task hits its job cap or the run ends
    /// with the pool starved, accept the current vote leader as a
    /// *degraded* verdict (with its Bayesian confidence `q(r, a, b)`
    /// recorded) instead of counting the task as failed.
    pub degraded_accept: bool,
    /// Optional deterministic fault-injection schedule.
    pub faults: Option<FaultPlan>,
    /// Coordinator-side audit layer: spot-check fraction, escalation, and
    /// probation (disabled by default). Firm verdicts are locally
    /// recomputed when selected; caught liars earn weighted strikes and
    /// tainted verdicts are voided and re-run.
    pub audit: AuditPolicy,
    /// Optional adaptive colluding cartel layered over the pool's base
    /// fault profile.
    pub cartel: Option<CartelConfig>,
    /// Optional straggler hedging: a job that outlives the online
    /// latency-quantile estimate gets a duplicate twin on another node, and
    /// the first copy to answer supplies the replica's vote.
    pub hedge: Option<HedgePolicy>,
    /// Node-assignment policy for job dispatch. `Random` reproduces the
    /// paper's uniform pick (and the golden journals); the alternatives
    /// trade randomness for spread or load balance.
    pub assignment: Assignment,
    /// Optional network model: when present, each job pays its input
    /// transfer before service. `None` (the default) keeps communication
    /// free and event streams bit-identical to earlier versions.
    pub network: Option<NetworkConfig>,
    /// Root seed for all randomness in the run.
    pub seed: u64,
}

impl DcaConfig {
    /// A configuration mirroring the paper's XDEVS runs, scaled by the
    /// caller: `tasks` tasks, `nodes` homogeneous nodes with job wrong rate
    /// `wrong_rate`, durations `U[0.5, 1.5]`, timeouts counted as wrong.
    pub fn paper_baseline(tasks: usize, nodes: usize, wrong_rate: f64, seed: u64) -> Self {
        Self {
            tasks,
            pool: PoolConfig::uniform(nodes, wrong_rate),
            duration_window: (0.5, 1.5),
            timeout_units: 3.0,
            timeout_policy: TimeoutPolicy::CountAsWrong,
            job_cap: None,
            failure: FailureConfig::Independent,
            churn: None,
            retry: None,
            quarantine: None,
            degraded_accept: false,
            faults: None,
            audit: AuditPolicy::disabled(),
            cartel: None,
            hedge: None,
            assignment: Assignment::Random,
            network: None,
            seed,
        }
    }

    /// Validates ranges that the type system cannot enforce.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on empty pools, zero-task runs, inverted
    /// duration windows, probabilities outside `[0, 1]`, or non-positive
    /// timeouts.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.tasks == 0 {
            return Err(ParamError::OutOfRange {
                name: "tasks",
                value: 0.0,
                expected: "at least 1",
            });
        }
        if self.pool.size == 0 {
            return Err(ParamError::OutOfRange {
                name: "pool.size",
                value: 0.0,
                expected: "at least 1",
            });
        }
        self.pool.profile.validate()?;
        if !(0.0..=1.0).contains(&self.pool.unresponsive_rate) {
            return Err(ParamError::OutOfRange {
                name: "unresponsive_rate",
                value: self.pool.unresponsive_rate,
                expected: "[0, 1]",
            });
        }
        // Per-node outcome probabilities (wrong, hang, correct) are
        // mutually exclusive: a profile whose worst node has
        // `wrong + unresponsive > 1` would silently clamp reliability to 0
        // and skew the drawn outcome mix, so reject it outright.
        let max_wrong = self.pool.profile.max_wrong_rate();
        if max_wrong + self.pool.unresponsive_rate > 1.0 {
            return Err(ParamError::OutOfRange {
                name: "wrong_rate + unresponsive_rate",
                value: max_wrong + self.pool.unresponsive_rate,
                expected: "at most 1 for every node profile",
            });
        }
        let (lo, hi) = self.duration_window;
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
            return Err(ParamError::OutOfRange {
                name: "duration_window",
                value: lo,
                expected: "0 <= lo <= hi",
            });
        }
        let (slo, shi) = self.pool.speed_window;
        if !(slo.is_finite() && shi.is_finite() && 0.0 < slo && slo <= shi) {
            return Err(ParamError::OutOfRange {
                name: "speed_window",
                value: slo,
                expected: "0 < lo <= hi",
            });
        }
        if !(self.timeout_units.is_finite() && self.timeout_units > 0.0) {
            return Err(ParamError::OutOfRange {
                name: "timeout_units",
                value: self.timeout_units,
                expected: "positive",
            });
        }
        match self.failure {
            FailureConfig::Independent => {}
            FailureConfig::CommonShock { shock_probability } => {
                if !(0.0..=1.0).contains(&shock_probability) {
                    return Err(ParamError::OutOfRange {
                        name: "shock_probability",
                        value: shock_probability,
                        expected: "[0, 1]",
                    });
                }
            }
            FailureConfig::RegionalOutages {
                regions,
                outage_rate,
                outage_duration,
            } => {
                if regions == 0 {
                    return Err(ParamError::OutOfRange {
                        name: "regions",
                        value: 0.0,
                        expected: "at least 1",
                    });
                }
                if !(outage_rate.is_finite() && outage_rate >= 0.0) {
                    return Err(ParamError::OutOfRange {
                        name: "outage_rate",
                        value: outage_rate,
                        expected: "non-negative",
                    });
                }
                if !(outage_duration.is_finite() && outage_duration > 0.0) {
                    return Err(ParamError::OutOfRange {
                        name: "outage_duration",
                        value: outage_duration,
                        expected: "positive",
                    });
                }
            }
        }
        if let Some(churn) = self.churn {
            if churn.leave_rate < 0.0 || churn.join_rate < 0.0 {
                return Err(ParamError::OutOfRange {
                    name: "churn rate",
                    value: churn.leave_rate.min(churn.join_rate),
                    expected: "non-negative",
                });
            }
        }
        if let Some(retry) = self.retry {
            retry.validate()?;
        }
        if let Some(quarantine) = self.quarantine {
            quarantine.validate()?;
        }
        if let Some(faults) = &self.faults {
            faults.validate(self.pool.size)?;
        }
        if self.audit.validate().is_err() {
            return Err(ParamError::OutOfRange {
                name: "audit",
                value: self.audit.spot_rate,
                expected: "rates in [0, 1], escalated_rate >= spot_rate, strike_weight >= 1",
            });
        }
        if let Some(cartel) = self.cartel {
            cartel.validate(self.pool.size)?;
        }
        if let Some(hedge) = self.hedge {
            hedge.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_valid() {
        let cfg = DcaConfig::paper_baseline(1000, 100, 0.3, 1);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.duration_window, (0.5, 1.5));
        assert_eq!(cfg.timeout_policy, TimeoutPolicy::CountAsWrong);
    }

    #[test]
    fn mean_wrong_rate_per_profile() {
        assert_eq!(
            ReliabilityProfile::Uniform { wrong_rate: 0.3 }.mean_wrong_rate(),
            0.3
        );
        assert_eq!(
            ReliabilityProfile::Spread {
                mean_wrong: 0.2,
                half_width: 0.1
            }
            .mean_wrong_rate(),
            0.2
        );
        let two = ReliabilityProfile::TwoClass {
            honest_wrong: 0.0,
            byzantine_wrong: 1.0,
            byzantine_fraction: 0.3,
        };
        assert!((two.mean_wrong_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_tasks_and_nodes() {
        let mut cfg = DcaConfig::paper_baseline(0, 10, 0.3, 1);
        assert!(cfg.validate().is_err());
        cfg.tasks = 10;
        cfg.pool.size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut cfg = DcaConfig::paper_baseline(10, 10, 1.5, 1);
        assert!(cfg.validate().is_err());
        cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.pool.unresponsive_rate = -0.1;
        assert!(cfg.validate().is_err());
        cfg.pool.unresponsive_rate = 0.0;
        cfg.failure = FailureConfig::CommonShock {
            shock_probability: 2.0,
        };
        assert!(cfg.validate().is_err());
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 0,
            outage_rate: 1.0,
            outage_duration: 1.0,
        };
        assert!(cfg.validate().is_err());
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 4,
            outage_rate: -1.0,
            outage_duration: 1.0,
        };
        assert!(cfg.validate().is_err());
        cfg.failure = FailureConfig::RegionalOutages {
            regions: 4,
            outage_rate: 1.0,
            outage_duration: 0.0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_wrong_plus_unresponsive_over_one() {
        // Uniform: 0.7 wrong + 0.4 hang = 1.1 per node → invalid.
        let mut cfg = DcaConfig::paper_baseline(10, 10, 0.7, 1);
        cfg.pool.unresponsive_rate = 0.4;
        assert!(cfg.validate().is_err());
        cfg.pool.unresponsive_rate = 0.3;
        assert!(cfg.validate().is_ok());

        // Spread: the *worst* node (mean + half-width) must stay legal.
        cfg.pool.profile = ReliabilityProfile::Spread {
            mean_wrong: 0.5,
            half_width: 0.3,
        };
        cfg.pool.unresponsive_rate = 0.25;
        assert!(cfg.validate().is_err());
        cfg.pool.unresponsive_rate = 0.2;
        assert!(cfg.validate().is_ok());

        // TwoClass: a fully Byzantine cartel member leaves no room for
        // hangs.
        cfg.pool.profile = ReliabilityProfile::TwoClass {
            honest_wrong: 0.1,
            byzantine_wrong: 1.0,
            byzantine_fraction: 0.2,
        };
        cfg.pool.unresponsive_rate = 0.05;
        assert!(cfg.validate().is_err());
        cfg.pool.unresponsive_rate = 0.0;
        assert!(cfg.validate().is_ok());

        // An empty cartel is exempt from the byzantine bound.
        cfg.pool.profile = ReliabilityProfile::TwoClass {
            honest_wrong: 0.1,
            byzantine_wrong: 1.0,
            byzantine_fraction: 0.0,
        };
        cfg.pool.unresponsive_rate = 0.5;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validates_resilience_policies() {
        use smartred_core::resilience::{QuarantinePolicy, RetryPolicy};

        let mut cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.retry = Some(RetryPolicy::default());
        cfg.quarantine = Some(QuarantinePolicy::default());
        assert!(cfg.validate().is_ok());

        cfg.retry = Some(RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::default()
        });
        assert!(cfg.validate().is_err());
        cfg.retry = None;
        cfg.quarantine = Some(QuarantinePolicy {
            strike_limit: 0,
            ..QuarantinePolicy::default()
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validates_fault_plans_against_pool_size() {
        use crate::faults::FaultPlan;

        let mut cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.faults = Some(FaultPlan::new().crash_at(1.0, 9));
        assert!(cfg.validate().is_ok());
        cfg.faults = Some(FaultPlan::new().crash_at(1.0, 10));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validates_audit_policy_and_cartel() {
        let mut cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.audit = AuditPolicy::spot(0.1);
        cfg.cartel = Some(CartelConfig {
            members: 3,
            lie_rate: 0.2,
            dormancy_units: 5.0,
        });
        assert!(cfg.validate().is_ok());
        cfg.cartel = Some(CartelConfig {
            members: 11,
            lie_rate: 0.2,
            dormancy_units: 5.0,
        });
        assert!(cfg.validate().is_err());
        cfg.cartel = Some(CartelConfig {
            members: 3,
            lie_rate: 1.5,
            dormancy_units: 5.0,
        });
        assert!(cfg.validate().is_err());
        cfg.cartel = Some(CartelConfig {
            members: 3,
            lie_rate: 0.2,
            dormancy_units: -1.0,
        });
        assert!(cfg.validate().is_err());
        cfg.cartel = None;
        cfg.audit = AuditPolicy {
            spot_rate: 2.0,
            ..AuditPolicy::disabled()
        };
        assert!(cfg.validate().is_err());
        cfg.audit = AuditPolicy {
            spot_rate: 0.2,
            escalated_rate: 0.1,
            probation_audits: 0,
            strike_weight: 3,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_windows_and_timeouts() {
        let mut cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.duration_window = (2.0, 1.0);
        assert!(cfg.validate().is_err());
        cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.timeout_units = 0.0;
        assert!(cfg.validate().is_err());
        cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.pool.speed_window = (0.0, 1.0);
        assert!(cfg.validate().is_err());
        cfg = DcaConfig::paper_baseline(10, 10, 0.3, 1);
        cfg.churn = Some(ChurnConfig {
            leave_rate: -1.0,
            join_rate: 0.0,
        });
        assert!(cfg.validate().is_err());
    }
}
