//! The volunteer node pool of Figure 1: random selection, busy tracking,
//! and churn.

use rand::Rng;
use smartred_core::execution::Assignment;
use smartred_core::node::NodeId;
use smartred_core::resilience::NodeDiscipline;

use crate::config::{PoolConfig, ReliabilityProfile};
use crate::job::JobId;

/// One worker node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Stable identity (survives busy/idle transitions, not departure).
    pub id: NodeId,
    /// Per-job probability of reporting the colluding wrong value.
    pub wrong_rate: f64,
    /// Per-job probability of hanging (no report until the server times
    /// out).
    pub unresponsive_rate: f64,
    /// Duration multiplier (1.0 = nominal speed; larger is slower).
    pub speed: f64,
    /// Whether the node is still in the pool.
    pub alive: bool,
    /// Whether the node is serving a quarantine (alive but excluded from
    /// assignment).
    pub quarantined: bool,
    /// Strike/quarantine counters for the discipline policy.
    pub discipline: NodeDiscipline,
    /// The job currently executing on this node, if any.
    pub current_job: Option<JobId>,
    /// Jobs ever assigned to this node — the load signal the
    /// least-loaded assignment policy balances on.
    pub assigned: u64,
}

impl Node {
    /// Probability that a job on this node reports the correct value.
    pub fn reliability(&self) -> f64 {
        (1.0 - self.wrong_rate - self.unresponsive_rate).max(0.0)
    }
}

/// Index of a node within the pool's dense storage.
pub type NodeIndex = usize;

/// The node pool: dense node storage plus an O(1)-sampling idle set.
#[derive(Debug, Clone)]
pub struct NodePool {
    nodes: Vec<Node>,
    /// Indices of idle, alive nodes; `idle_pos[i]` is the position of node
    /// `i` within `idle`, if idle.
    idle: Vec<NodeIndex>,
    idle_pos: Vec<Option<usize>>,
    alive_count: usize,
    next_id: u64,
    /// Round-robin dispatch cursor (node index of the next preferred pick).
    rr_cursor: u32,
}

impl NodePool {
    /// Builds a pool from configuration, drawing per-node parameters with
    /// `rng`.
    pub fn from_config<R: Rng + ?Sized>(config: &PoolConfig, rng: &mut R) -> Self {
        let mut pool = Self {
            nodes: Vec::with_capacity(config.size),
            idle: Vec::with_capacity(config.size),
            idle_pos: Vec::with_capacity(config.size),
            alive_count: 0,
            next_id: 0,
            rr_cursor: 0,
        };
        for _ in 0..config.size {
            pool.spawn_node(config, rng);
        }
        pool
    }

    /// Adds a freshly drawn node (a volunteer joining) and returns its
    /// index.
    pub fn spawn_node<R: Rng + ?Sized>(&mut self, config: &PoolConfig, rng: &mut R) -> NodeIndex {
        let wrong_rate = match config.profile {
            ReliabilityProfile::Uniform { wrong_rate } => wrong_rate,
            ReliabilityProfile::Spread {
                mean_wrong,
                half_width,
            } => {
                if half_width == 0.0 {
                    mean_wrong
                } else {
                    rng.gen_range(mean_wrong - half_width..=mean_wrong + half_width)
                        .clamp(0.0, 1.0)
                }
            }
            ReliabilityProfile::TwoClass {
                honest_wrong,
                byzantine_wrong,
                byzantine_fraction,
            } => {
                if rng.gen_bool(byzantine_fraction) {
                    byzantine_wrong
                } else {
                    honest_wrong
                }
            }
        };
        let (lo, hi) = config.speed_window;
        let speed = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        let index = self.nodes.len();
        self.nodes.push(Node {
            id: NodeId::new(self.next_id),
            wrong_rate,
            unresponsive_rate: config.unresponsive_rate,
            speed,
            alive: true,
            quarantined: false,
            discipline: NodeDiscipline::default(),
            current_job: None,
            assigned: 0,
        });
        self.next_id += 1;
        self.idle_pos.push(None);
        self.alive_count += 1;
        self.push_idle(index);
        index
    }

    /// Number of nodes still in the pool.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of idle, alive nodes.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Total nodes ever created (including departed ones).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Shared access to a node.
    pub fn node(&self, index: NodeIndex) -> &Node {
        &self.nodes[index]
    }

    /// Exclusive access to a node.
    pub fn node_mut(&mut self, index: NodeIndex) -> &mut Node {
        &mut self.nodes[index]
    }

    /// Empirical mean reliability over alive nodes.
    pub fn mean_reliability(&self) -> f64 {
        if self.alive_count == 0 {
            return 0.0;
        }
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.reliability())
            .sum::<f64>()
            / self.alive_count as f64
    }

    fn push_idle(&mut self, index: NodeIndex) {
        debug_assert!(self.idle_pos[index].is_none());
        self.idle_pos[index] = Some(self.idle.len());
        self.idle.push(index);
    }

    fn remove_idle(&mut self, index: NodeIndex) {
        let pos = self.idle_pos[index].expect("node not idle");
        let last = self.idle.len() - 1;
        self.idle.swap(pos, last);
        let moved = self.idle[pos];
        self.idle_pos[moved] = Some(pos);
        self.idle.pop();
        self.idle_pos[index] = None;
    }

    /// Selects a random idle node not in `exclude`, marks it busy, and
    /// returns it.
    ///
    /// The exclusion implements "independent, randomly chosen nodes": a node
    /// never runs two jobs of the same task. If every idle node is excluded
    /// but the exclusion already spans the whole pool (a task larger than
    /// the pool), the constraint is waived — the alternative would deadlock.
    pub fn claim_random_idle<R: Rng + ?Sized>(
        &mut self,
        exclude: &[NodeIndex],
        rng: &mut R,
    ) -> Option<NodeIndex> {
        if self.idle.is_empty() {
            return None;
        }
        let waive_exclusion = exclude.len() >= self.alive_count;
        // A few random probes first (fast path for large pools)…
        for _ in 0..8 {
            let candidate = self.idle[rng.gen_range(0..self.idle.len())];
            if waive_exclusion || !exclude.contains(&candidate) {
                self.remove_idle(candidate);
                self.nodes[candidate].current_job = None;
                self.nodes[candidate].assigned += 1;
                return Some(candidate);
            }
        }
        // …then an exhaustive scan starting at a random offset so small
        // pools stay unbiased.
        let start = rng.gen_range(0..self.idle.len());
        for i in 0..self.idle.len() {
            let candidate = self.idle[(start + i) % self.idle.len()];
            if waive_exclusion || !exclude.contains(&candidate) {
                self.remove_idle(candidate);
                self.nodes[candidate].current_job = None;
                self.nodes[candidate].assigned += 1;
                return Some(candidate);
            }
        }
        None
    }

    /// Selects an idle node under the given assignment `policy`, marks it
    /// busy, and returns it.
    ///
    /// [`Assignment::Random`] takes the exact
    /// [`claim_random_idle`](Self::claim_random_idle) code path — same RNG
    /// draws, same probe sequence — so runs configured with the default
    /// policy reproduce the historical (golden) journals bit for bit. The
    /// deterministic policies never touch `rng` at all, so layers that
    /// share the stream (fault plans, vote draws) are likewise undisturbed.
    pub fn claim_idle<R: Rng + ?Sized>(
        &mut self,
        policy: Assignment,
        exclude: &[NodeIndex],
        rng: &mut R,
    ) -> Option<NodeIndex> {
        if policy == Assignment::Random {
            return self.claim_random_idle(exclude, rng);
        }
        if self.idle.is_empty() {
            return None;
        }
        let waive_exclusion = exclude.len() >= self.alive_count;
        let mut eligible: Vec<u32> = self
            .idle
            .iter()
            .copied()
            .filter(|i| waive_exclusion || !exclude.contains(i))
            .map(|i| i as u32)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Sort so the pick is a function of the eligible *set*, not of the
        // incidental order of the swap-remove idle list.
        eligible.sort_unstable();
        let loads: Vec<u64> = eligible
            .iter()
            .map(|&i| self.nodes[i as usize].assigned)
            .collect();
        let pos = policy.pick(&eligible, &loads, self.rr_cursor, 0);
        let candidate = eligible[pos] as usize;
        self.rr_cursor = eligible[pos].wrapping_add(1);
        self.remove_idle(candidate);
        self.nodes[candidate].current_job = None;
        self.nodes[candidate].assigned += 1;
        Some(candidate)
    }

    /// Returns a node to the idle set after it finishes (or abandons) a
    /// job. Departed and quarantined nodes are not re-queued.
    pub fn release(&mut self, index: NodeIndex) {
        self.nodes[index].current_job = None;
        if self.nodes[index].alive
            && !self.nodes[index].quarantined
            && self.idle_pos[index].is_none()
        {
            self.push_idle(index);
        }
    }

    /// Pulls a node from the assignment pool without removing it: it stays
    /// alive (and finishes any running job) but receives no new work until
    /// [`unquarantine`](Self::unquarantine). Idempotent.
    pub fn quarantine(&mut self, index: NodeIndex) {
        if self.nodes[index].quarantined || !self.nodes[index].alive {
            return;
        }
        self.nodes[index].quarantined = true;
        if self.idle_pos[index].is_some() {
            self.remove_idle(index);
        }
    }

    /// Ends a node's quarantine, returning it to the idle set if it is
    /// alive and not mid-job. Idempotent.
    pub fn unquarantine(&mut self, index: NodeIndex) {
        if !self.nodes[index].quarantined {
            return;
        }
        self.nodes[index].quarantined = false;
        if self.nodes[index].alive
            && self.nodes[index].current_job.is_none()
            && self.idle_pos[index].is_none()
        {
            self.push_idle(index);
        }
    }

    /// Number of alive nodes currently serving a quarantine.
    pub fn quarantined_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && n.quarantined)
            .count()
    }

    /// Checks the pool's structural invariants, returning a description of
    /// the first violation found.
    ///
    /// Invariants:
    ///
    /// 1. `alive_count` equals the number of alive nodes.
    /// 2. `idle` and `idle_pos` agree: `idle_pos[i] = Some(p)` iff
    ///    `idle[p] = i`, with no duplicates.
    /// 3. Every idle node is alive, unquarantined, and has no running job
    ///    (no node is double-assigned).
    /// 4. Departed nodes hold no job.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let alive = self.nodes.iter().filter(|n| n.alive).count();
        if alive != self.alive_count {
            return Err(format!(
                "alive_count {} but {} alive nodes",
                self.alive_count, alive
            ));
        }
        if self.idle_pos.len() != self.nodes.len() {
            return Err(format!(
                "idle_pos len {} != nodes len {}",
                self.idle_pos.len(),
                self.nodes.len()
            ));
        }
        for (pos, &index) in self.idle.iter().enumerate() {
            if index >= self.nodes.len() {
                return Err(format!("idle entry {index} out of bounds"));
            }
            if self.idle_pos[index] != Some(pos) {
                return Err(format!(
                    "idle[{pos}] = {index} but idle_pos[{index}] = {:?}",
                    self.idle_pos[index]
                ));
            }
            let node = &self.nodes[index];
            if !node.alive {
                return Err(format!("departed node {index} in idle set"));
            }
            if node.quarantined {
                return Err(format!("quarantined node {index} in idle set"));
            }
            if let Some(job) = node.current_job {
                return Err(format!("idle node {index} still holds {job}"));
            }
        }
        for (index, pos) in self.idle_pos.iter().enumerate() {
            if let Some(p) = *pos {
                if self.idle.get(p).copied() != Some(index) {
                    return Err(format!(
                        "idle_pos[{index}] = Some({p}) but idle[{p}] != {index}"
                    ));
                }
            }
        }
        for (index, node) in self.nodes.iter().enumerate() {
            if !node.alive && node.current_job.is_some() {
                return Err(format!("departed node {index} holds a job"));
            }
        }
        Ok(())
    }

    /// Removes a node from the pool (volunteer leaving). Returns the job it
    /// was running, if any, so the caller can resolve it.
    pub fn depart(&mut self, index: NodeIndex) -> Option<JobId> {
        if !self.nodes[index].alive {
            return None;
        }
        self.nodes[index].alive = false;
        self.alive_count -= 1;
        if self.idle_pos[index].is_some() {
            self.remove_idle(index);
        }
        self.nodes[index].current_job.take()
    }

    /// Picks a uniformly random alive node, if any.
    pub fn random_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIndex> {
        if self.alive_count == 0 {
            return None;
        }
        loop {
            let candidate = rng.gen_range(0..self.nodes.len());
            if self.nodes[candidate].alive {
                return Some(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_desim::rng::seeded_rng;

    fn pool(size: usize) -> (NodePool, smartred_desim::rng::SimRng) {
        let mut rng = seeded_rng(1);
        let cfg = PoolConfig::uniform(size, 0.3);
        (NodePool::from_config(&cfg, &mut rng), rng)
    }

    #[test]
    fn builds_requested_size_all_idle() {
        let (p, _) = pool(100);
        assert_eq!(p.alive_count(), 100);
        assert_eq!(p.idle_count(), 100);
        assert!((p.mean_reliability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn claim_marks_busy_release_marks_idle() {
        let (mut p, mut rng) = pool(10);
        let n = p.claim_random_idle(&[], &mut rng).unwrap();
        assert_eq!(p.idle_count(), 9);
        p.release(n);
        assert_eq!(p.idle_count(), 10);
    }

    #[test]
    fn exclusion_is_respected() {
        let (mut p, mut rng) = pool(3);
        let exclude = vec![0, 1];
        for _ in 0..20 {
            let n = p.claim_random_idle(&exclude, &mut rng).unwrap();
            assert_eq!(n, 2);
            p.release(n);
        }
    }

    #[test]
    fn full_exclusion_waives_constraint() {
        let (mut p, mut rng) = pool(2);
        let exclude = vec![0, 1];
        // Task has already used every node: reuse is allowed over deadlock.
        assert!(p.claim_random_idle(&exclude, &mut rng).is_some());
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let (mut p, mut rng) = pool(2);
        assert!(p.claim_random_idle(&[], &mut rng).is_some());
        assert!(p.claim_random_idle(&[], &mut rng).is_some());
        assert!(p.claim_random_idle(&[], &mut rng).is_none());
    }

    #[test]
    fn depart_removes_from_idle_and_alive() {
        let (mut p, _) = pool(5);
        assert!(p.depart(3).is_none());
        assert_eq!(p.alive_count(), 4);
        assert_eq!(p.idle_count(), 4);
        assert!(!p.node(3).alive);
        // Departing twice is a no-op.
        assert!(p.depart(3).is_none());
        assert_eq!(p.alive_count(), 4);
    }

    #[test]
    fn departed_node_is_not_re_queued_on_release() {
        let (mut p, mut rng) = pool(2);
        let n = p.claim_random_idle(&[], &mut rng).unwrap();
        p.depart(n);
        p.release(n);
        assert_eq!(p.idle_count(), 1);
    }

    #[test]
    fn spawn_grows_pool_with_fresh_ids() {
        let (mut p, mut rng) = pool(2);
        let cfg = PoolConfig::uniform(2, 0.3);
        let n = p.spawn_node(&cfg, &mut rng);
        assert_eq!(p.alive_count(), 3);
        assert_eq!(p.node(n).id.get(), 2);
    }

    #[test]
    fn two_class_profile_mixes_rates() {
        let mut rng = seeded_rng(9);
        let cfg = PoolConfig {
            size: 2000,
            profile: ReliabilityProfile::TwoClass {
                honest_wrong: 0.0,
                byzantine_wrong: 1.0,
                byzantine_fraction: 0.25,
            },
            unresponsive_rate: 0.0,
            speed_window: (1.0, 1.0),
        };
        let p = NodePool::from_config(&cfg, &mut rng);
        let byz = (0..p.capacity())
            .filter(|&i| p.node(i).wrong_rate == 1.0)
            .count();
        let frac = byz as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.03, "byzantine fraction {frac}");
        assert!((p.mean_reliability() - 0.75).abs() < 0.03);
    }

    #[test]
    fn spread_profile_clips_to_unit_interval() {
        let mut rng = seeded_rng(10);
        let cfg = PoolConfig {
            size: 500,
            profile: ReliabilityProfile::Spread {
                mean_wrong: 0.1,
                half_width: 0.3,
            },
            unresponsive_rate: 0.0,
            speed_window: (1.0, 1.0),
        };
        let p = NodePool::from_config(&cfg, &mut rng);
        for i in 0..p.capacity() {
            let w = p.node(i).wrong_rate;
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn random_alive_skips_departed() {
        let (mut p, mut rng) = pool(3);
        p.depart(0);
        p.depart(1);
        for _ in 0..10 {
            assert_eq!(p.random_alive(&mut rng), Some(2));
        }
        p.depart(2);
        assert_eq!(p.random_alive(&mut rng), None);
    }

    #[test]
    fn reliability_accounts_for_hangs() {
        let node = Node {
            id: NodeId::new(0),
            wrong_rate: 0.2,
            unresponsive_rate: 0.1,
            speed: 1.0,
            alive: true,
            quarantined: false,
            discipline: NodeDiscipline::default(),
            current_job: None,
            assigned: 0,
        };
        assert!((node.reliability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn quarantine_excludes_from_assignment() {
        let (mut p, mut rng) = pool(2);
        p.quarantine(0);
        assert_eq!(p.idle_count(), 1);
        assert_eq!(p.quarantined_count(), 1);
        for _ in 0..10 {
            let n = p.claim_random_idle(&[], &mut rng).unwrap();
            assert_eq!(n, 1);
            p.release(n);
        }
        // Quarantine is idempotent and alive_count is untouched.
        p.quarantine(0);
        assert_eq!(p.alive_count(), 2);
        p.unquarantine(0);
        assert_eq!(p.idle_count(), 2);
        assert_eq!(p.quarantined_count(), 0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn busy_node_quarantined_mid_job_returns_only_after_unquarantine() {
        let (mut p, mut rng) = pool(1);
        let n = p.claim_random_idle(&[], &mut rng).unwrap();
        p.quarantine(n);
        // Finishing the job must not put a quarantined node back in idle.
        p.release(n);
        assert_eq!(p.idle_count(), 0);
        p.unquarantine(n);
        assert_eq!(p.idle_count(), 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn depart_during_quarantine_is_sound() {
        let (mut p, _) = pool(3);
        p.quarantine(1);
        assert!(p.depart(1).is_none());
        p.unquarantine(1); // must not resurrect a departed node
        assert_eq!(p.idle_count(), 2);
        assert_eq!(p.alive_count(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn random_policy_matches_claim_random_idle_exactly() {
        // Same seed, same call sequence → identical picks: the Random
        // branch of claim_idle must be the claim_random_idle code path.
        let (mut a, mut rng_a) = pool(10);
        let (mut b, mut rng_b) = pool(10);
        for _ in 0..5 {
            let x = a.claim_random_idle(&[2], &mut rng_a).unwrap();
            let y = b.claim_idle(Assignment::Random, &[2], &mut rng_b).unwrap();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn round_robin_cycles_through_the_pool() {
        let (mut p, mut rng) = pool(4);
        let picks: Vec<_> = (0..4)
            .map(|_| p.claim_idle(Assignment::RoundRobin, &[], &mut rng).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
        for i in picks {
            p.release(i);
        }
        // The cursor wraps: the next pick starts the cycle over.
        assert_eq!(p.claim_idle(Assignment::RoundRobin, &[], &mut rng), Some(0));
    }

    #[test]
    fn round_robin_respects_exclusion() {
        let (mut p, mut rng) = pool(3);
        let n = p
            .claim_idle(Assignment::RoundRobin, &[0], &mut rng)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn least_loaded_balances_assignments() {
        let (mut p, mut rng) = pool(3);
        // Pre-load node 0 heavily; least-loaded must prefer the others.
        p.node_mut(0).assigned = 5;
        let a = p
            .claim_idle(Assignment::LeastLoaded, &[], &mut rng)
            .unwrap();
        p.release(a);
        let b = p
            .claim_idle(Assignment::LeastLoaded, &[], &mut rng)
            .unwrap();
        p.release(b);
        assert_eq!((a, b), (1, 2));
        // Ties break by lowest index.
        let c = p
            .claim_idle(Assignment::LeastLoaded, &[], &mut rng)
            .unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn deterministic_policies_do_not_touch_the_rng() {
        use rand::RngCore;
        let (mut p, mut rng) = pool(4);
        let mut probe = rng.clone();
        let expected = probe.next_u64();
        p.claim_idle(Assignment::RoundRobin, &[], &mut rng).unwrap();
        p.claim_idle(Assignment::LeastLoaded, &[], &mut rng)
            .unwrap();
        assert_eq!(rng.next_u64(), expected);
    }

    #[test]
    fn check_invariants_catches_corruption() {
        let (mut p, _) = pool(3);
        p.check_invariants().unwrap();
        p.alive_count = 7;
        assert!(p.check_invariants().is_err());
    }
}
