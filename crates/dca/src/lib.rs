//! # smartred-dca — the distributed-computation-architecture model
//!
//! An executable version of the DCA of Figure 1 in the paper: a task server
//! subdividing a computation into tasks, a job queue, and a pool of
//! volunteer nodes that are selected at random, may fail Byzantine-style
//! (colluding on a single wrong value, §2.2), may hang until a server
//! timeout, and may join or leave mid-computation.
//!
//! Built on the deterministic discrete-event engine of `smartred-desim`,
//! this crate is the stand-in for the paper's XDEVS simulations (§4.1): the
//! runs behind Figures 5(a) and 6 are [`sim::run`] invocations with the
//! paper's parameters (10,000 nodes, ≥10⁶ tasks, durations `U[0.5, 1.5]`,
//! mean reliability 0.7).
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use smartred_core::params::VoteMargin;
//! use smartred_core::strategy::Iterative;
//! use smartred_dca::config::DcaConfig;
//! use smartred_dca::sim::run;
//!
//! // A scaled-down Figure 5(a) point: iterative redundancy with d = 4.
//! let cfg = DcaConfig::paper_baseline(2_000, 200, 0.3, 7);
//! let report = run(Rc::new(Iterative::new(VoteMargin::new(4)?)), &cfg)?;
//! assert!(report.reliability() > 0.9);
//! assert!(report.cost_factor() < 19.0); // far below TR at k = 19
//! # Ok::<(), smartred_core::error::ParamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod config;
pub mod faults;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod replay;
pub mod sim;

pub use config::{ChurnConfig, DcaConfig, FailureConfig, PoolConfig, TimeoutPolicy};
pub use faults::{FaultEvent, FaultPlan};
pub use metrics::DcaReport;
pub use replay::report_from_journal;
pub use sim::{run, run_journaled, JournaledRun, SharedStrategy};
