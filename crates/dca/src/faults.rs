//! Deterministic fault injection: a seed-reproducible schedule of crashes,
//! hangs, stragglers, collusion bursts, and pool blackouts.
//!
//! The paper's base model draws node failures i.i.d. per job (§2.2). A
//! [`FaultPlan`] layers *scheduled* adversity on top: every entry names a
//! simulated time at which something breaks, and the plan is injected as
//! first-class discrete events in the `smartred-desim` engine when the run
//! starts. Because the plan is data (not callbacks) and every random draw
//! it triggers comes from the run's seeded stream, a `(seed, plan)` pair
//! reproduces the run bit for bit — which is what makes chaos tests
//! assertable.
//!
//! # Examples
//!
//! ```
//! use smartred_dca::faults::FaultPlan;
//!
//! let plan = FaultPlan::new()
//!     .crash_at(2.0, 7)                  // node 7 departs at t = 2
//!     .hang_window(3.0, 4.0, 11)         // node 11 answers nothing in [3, 7)
//!     .straggler(1.0, 10.0, 3, 4.0)      // node 3 runs 4× slower in [1, 11)
//!     .collusion_burst(5.0, 2.0, 0.3)    // 30% of the pool lies in [5, 7)
//!     .blackout(8.0, 1.5);               // nobody answers in [8, 9.5)
//! assert_eq!(plan.events().len(), 5);
//! assert!(plan.validate(64).is_ok());
//! ```

use smartred_core::error::ParamError;

use crate::pool::NodeIndex;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The node leaves the pool permanently at `at` (its running job, if
    /// any, is seen by the server as a timeout).
    NodeCrash {
        /// Injection time, in time units.
        at: f64,
        /// Index of the crashing node.
        node: NodeIndex,
    },
    /// Every job dispatched to the node during `[at, at + duration)` hangs
    /// until the server timeout.
    HangWindow {
        /// Window start, in time units.
        at: f64,
        /// Window length, in time units.
        duration: f64,
        /// Index of the hanging node.
        node: NodeIndex,
    },
    /// Jobs dispatched to the node during `[at, at + duration)` run
    /// `factor` times slower (slow enough jobs become timeouts).
    Straggler {
        /// Window start, in time units.
        at: f64,
        /// Window length, in time units.
        duration: f64,
        /// Index of the straggling node.
        node: NodeIndex,
        /// Slowdown multiplier (≥ 1).
        factor: f64,
    },
    /// During `[at, at + duration)` a random `fraction` of the pool (drawn
    /// from the run's seeded stream when the burst starts) returns the
    /// colluding wrong value on every job — a correlated Byzantine attack.
    CollusionBurst {
        /// Window start, in time units.
        at: f64,
        /// Window length, in time units.
        duration: f64,
        /// Fraction of the pool that colludes, in `[0, 1]`.
        fraction: f64,
    },
    /// During `[at, at + duration)` no node answers anything: every job
    /// dispatched in the window hangs to the server timeout (a total
    /// network partition between server and pool).
    Blackout {
        /// Window start, in time units.
        at: f64,
        /// Window length, in time units.
        duration: f64,
    },
}

impl FaultEvent {
    /// The simulated time at which the fault is injected.
    pub fn at(&self) -> f64 {
        match *self {
            FaultEvent::NodeCrash { at, .. }
            | FaultEvent::HangWindow { at, .. }
            | FaultEvent::Straggler { at, .. }
            | FaultEvent::CollusionBurst { at, .. }
            | FaultEvent::Blackout { at, .. } => at,
        }
    }

    fn validate(&self, pool_size: usize) -> Result<(), ParamError> {
        let time_ok = |name: &'static str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(ParamError::OutOfRange {
                    name,
                    value: v,
                    expected: "finite and non-negative",
                })
            }
        };
        let duration_ok = |name: &'static str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(ParamError::OutOfRange {
                    name,
                    value: v,
                    expected: "positive",
                })
            }
        };
        let node_ok = |node: NodeIndex| {
            if node < pool_size {
                Ok(())
            } else {
                Err(ParamError::OutOfRange {
                    name: "fault.node",
                    value: node as f64,
                    expected: "an initial pool index",
                })
            }
        };
        match *self {
            FaultEvent::NodeCrash { at, node } => {
                time_ok("fault.at", at)?;
                node_ok(node)
            }
            FaultEvent::HangWindow { at, duration, node } => {
                time_ok("fault.at", at)?;
                duration_ok("fault.duration", duration)?;
                node_ok(node)
            }
            FaultEvent::Straggler {
                at,
                duration,
                node,
                factor,
            } => {
                time_ok("fault.at", at)?;
                duration_ok("fault.duration", duration)?;
                node_ok(node)?;
                if factor.is_finite() && factor >= 1.0 {
                    Ok(())
                } else {
                    Err(ParamError::OutOfRange {
                        name: "fault.factor",
                        value: factor,
                        expected: "at least 1",
                    })
                }
            }
            FaultEvent::CollusionBurst {
                at,
                duration,
                fraction,
            } => {
                time_ok("fault.at", at)?;
                duration_ok("fault.duration", duration)?;
                if (0.0..=1.0).contains(&fraction) && fraction.is_finite() {
                    Ok(())
                } else {
                    Err(ParamError::OutOfRange {
                        name: "fault.fraction",
                        value: fraction,
                        expected: "[0, 1]",
                    })
                }
            }
            FaultEvent::Blackout { at, duration } => {
                time_ok("fault.at", at)?;
                duration_ok("fault.duration", duration)
            }
        }
    }
}

/// A deterministic schedule of faults, built fluently and injected into
/// the event queue when a run starts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a permanent node crash.
    #[must_use]
    pub fn crash_at(mut self, at: f64, node: NodeIndex) -> Self {
        self.events.push(FaultEvent::NodeCrash { at, node });
        self
    }

    /// Schedules a hang window on one node.
    #[must_use]
    pub fn hang_window(mut self, at: f64, duration: f64, node: NodeIndex) -> Self {
        self.events
            .push(FaultEvent::HangWindow { at, duration, node });
        self
    }

    /// Schedules a straggler window on one node.
    #[must_use]
    pub fn straggler(mut self, at: f64, duration: f64, node: NodeIndex, factor: f64) -> Self {
        self.events.push(FaultEvent::Straggler {
            at,
            duration,
            node,
            factor,
        });
        self
    }

    /// Schedules a correlated collusion burst over a pool fraction.
    #[must_use]
    pub fn collusion_burst(mut self, at: f64, duration: f64, fraction: f64) -> Self {
        self.events.push(FaultEvent::CollusionBurst {
            at,
            duration,
            fraction,
        });
        self
    }

    /// Schedules a total pool blackout.
    #[must_use]
    pub fn blackout(mut self, at: f64, duration: f64) -> Self {
        self.events.push(FaultEvent::Blackout { at, duration });
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates every event against the initial pool size.
    ///
    /// Node-targeted faults must name an *initial* pool index; nodes that
    /// join through churn cannot be targeted (their indices are not known
    /// ahead of the run).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for negative or non-finite times,
    /// non-positive durations, out-of-pool node indices, straggler factors
    /// below 1, or collusion fractions outside `[0, 1]`.
    pub fn validate(&self, pool_size: usize) -> Result<(), ParamError> {
        for event in &self.events {
            event.validate(pool_size)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let plan = FaultPlan::new()
            .crash_at(1.0, 0)
            .blackout(2.0, 1.0)
            .collusion_burst(3.0, 1.0, 0.5);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.events()[0].at(), 1.0);
        assert_eq!(plan.events()[2].at(), 3.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn validate_accepts_sound_plans() {
        let plan = FaultPlan::new()
            .crash_at(0.0, 9)
            .hang_window(1.0, 2.0, 5)
            .straggler(0.5, 3.0, 2, 4.0)
            .collusion_burst(2.0, 2.0, 1.0)
            .blackout(4.0, 0.1);
        assert!(plan.validate(10).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_pool_nodes() {
        assert!(FaultPlan::new().crash_at(1.0, 10).validate(10).is_err());
        assert!(FaultPlan::new()
            .hang_window(1.0, 1.0, 99)
            .validate(10)
            .is_err());
    }

    #[test]
    fn validate_rejects_bad_numbers() {
        assert!(FaultPlan::new().crash_at(-1.0, 0).validate(10).is_err());
        assert!(FaultPlan::new().crash_at(f64::NAN, 0).validate(10).is_err());
        assert!(FaultPlan::new()
            .hang_window(1.0, 0.0, 0)
            .validate(10)
            .is_err());
        assert!(FaultPlan::new()
            .straggler(1.0, 1.0, 0, 0.5)
            .validate(10)
            .is_err());
        assert!(FaultPlan::new()
            .collusion_burst(1.0, 1.0, 1.5)
            .validate(10)
            .is_err());
        assert!(FaultPlan::new().blackout(1.0, -2.0).validate(10).is_err());
    }
}
