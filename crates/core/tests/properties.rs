//! Property-based tests of the paper's theorems and the cross-derivation
//! identities that the analysis module promises.

use proptest::prelude::*;

use smartred_core::analysis::confidence::confidence;
use smartred_core::analysis::{iterative, progressive, traditional, walk};
use smartred_core::execution::TaskExecution;
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, RedundancyStrategy, Traditional};
use smartred_core::tally::VoteTally;

fn rel(r: f64) -> Reliability {
    Reliability::new(r).unwrap()
}

fn votes(k: usize) -> KVotes {
    KVotes::new(k).unwrap()
}

fn margin(d: usize) -> VoteMargin {
    VoteMargin::new(d).unwrap()
}

proptest! {
    /// Theorem 1: q(r, a, b) = q(r, a + j, b + j).
    #[test]
    fn theorem_1_shift_invariance(
        r in 0.01f64..0.99,
        a in 0usize..60,
        b in 0usize..60,
        j in 0usize..500,
    ) {
        let base = confidence(rel(r), a, b);
        let shifted = confidence(rel(r), a + j, b + j);
        prop_assert!((base - shifted).abs() < 1e-9,
            "q({r},{a},{b})={base} but q({r},{},{})={shifted}", a + j, b + j);
    }

    /// Theorem 2: after a (b+d)-to-b split, the posterior that the majority
    /// is the biased side depends only on d — equivalently, Eq. (6) equals
    /// q at every shifted split.
    #[test]
    fn theorem_2_posterior_depends_only_on_margin(
        r in 0.51f64..0.99,
        d in 1usize..30,
        b in 0usize..200,
    ) {
        let c = iterative::reliability(margin(d), rel(r));
        let split = confidence(rel(r), b + d, b);
        prop_assert!((c - split).abs() < 1e-9);
    }

    /// The complement identity q(r, a, b) + q(r, b, a) = 1.
    #[test]
    fn confidence_complement(
        r in 0.01f64..0.99,
        a in 0usize..80,
        b in 0usize..80,
    ) {
        let sum = confidence(rel(r), a, b) + confidence(rel(r), b, a);
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Eq. (5): the closed form, the literal series, and the wave DP agree.
    #[test]
    fn iterative_cost_derivations_agree(
        r in 0.05f64..0.95,
        d in 1usize..10,
    ) {
        let closed = iterative::cost(margin(d), rel(r));
        let series = iterative::cost_series(margin(d), rel(r), 1e-12);
        prop_assert!((closed - series).abs() < 1e-5,
            "closed {closed} vs series {series} at r={r}, d={d}");
        let dp = iterative::profile(margin(d), rel(r), (0.5, 1.5), 1e-12).expected_jobs;
        prop_assert!((closed - dp).abs() < 1e-5,
            "closed {closed} vs dp {dp} at r={r}, d={d}");
    }

    /// Eq. (3): the literal series and the exact wave DP agree.
    #[test]
    fn progressive_cost_derivations_agree(
        r in 0.0f64..1.0,
        half_k in 0usize..15,
    ) {
        let k = votes(2 * half_k + 1);
        let series = progressive::cost_series(k, rel(r));
        let dp = progressive::profile(k, rel(r), (0.5, 1.5)).expected_jobs;
        prop_assert!((series - dp).abs() < 1e-8,
            "series {series} vs dp {dp} at r={r}, k={k}");
    }

    /// Eq. (4): progressive reliability equals traditional reliability, and
    /// the wave DP reproduces both.
    #[test]
    fn progressive_reliability_equals_traditional(
        r in 0.0f64..1.0,
        half_k in 0usize..15,
    ) {
        let k = votes(2 * half_k + 1);
        let eq2 = traditional::reliability(k, rel(r));
        let eq4 = progressive::reliability(k, rel(r));
        prop_assert!((eq2 - eq4).abs() < 1e-12);
        let dp = progressive::profile(k, rel(r), (0.5, 1.5)).reliability;
        prop_assert!((dp - eq2).abs() < 1e-8);
    }

    /// Frontier dominance: the iterative reliability-vs-cost frontier
    /// (allowing randomized mixtures of adjacent margins, which interpolate
    /// both cost and reliability linearly) dominates progressive redundancy
    /// at every (k, r). Strict per-point dominance can fail by a fraction of
    /// a percent because d is discrete — see `small_k_exception` — but the
    /// mixture frontier never loses, which is the precise sense in which the
    /// paper's §3.3 optimality claim holds.
    #[test]
    fn ir_frontier_dominates_pr(
        r in 0.55f64..0.99,
        half_k in 1usize..12,
    ) {
        use smartred_core::analysis::improvement::{matched_margin, MarginMatch};
        let k = votes(2 * half_k + 1);
        let pr_cost = progressive::cost_series(k, rel(r));
        let pr_rel = progressive::reliability(k, rel(r));
        let d_hi = matched_margin(k, rel(r), MarginMatch::AtLeast).unwrap();
        let hi = (iterative::cost(d_hi, rel(r)), iterative::reliability(d_hi, rel(r)));
        let frontier_rel_at_pr_cost = if hi.0 <= pr_cost {
            hi.1 // matched-or-better reliability at no more cost
        } else {
            // Mix d_hi with d_hi − 1 (or with "no jobs" when d_hi = 1) to
            // hit PR's cost exactly; reliability interpolates linearly.
            let lo = if d_hi.get() == 1 {
                (0.0, 0.5)
            } else {
                let d_lo = margin(d_hi.get() - 1);
                (iterative::cost(d_lo, rel(r)), iterative::reliability(d_lo, rel(r)))
            };
            let t = (pr_cost - lo.0) / (hi.0 - lo.0);
            prop_assert!((0.0..=1.0).contains(&t));
            lo.1 + t * (hi.1 - lo.1)
        };
        prop_assert!(frontier_rel_at_pr_cost >= pr_rel - 1e-9,
            "IR frontier {frontier_rel_at_pr_cost} < PR {pr_rel} at r={r}, k={k}");
        prop_assert!(pr_cost <= (k.get() as f64) + 1e-9);
    }

    /// The first-passage distribution is a probability distribution whose
    /// correct-side mass matches Eq. (6).
    #[test]
    fn first_passage_is_consistent(
        r in 0.1f64..0.9,
        d in 1usize..8,
    ) {
        let fp = walk::first_passage(d, r, 1e-12, 2_000_000);
        let total: f64 = fp.outcomes.iter().map(|&(_, p, q)| p + q).sum();
        prop_assert!((total + fp.truncated_mass - 1.0).abs() < 1e-9);
        prop_assert!((fp.p_correct() - walk::absorption_probability(d, r)).abs() < 1e-6);
    }

    /// Reliability is monotone: more margin never hurts when r > ½, never
    /// helps when r < ½.
    #[test]
    fn iterative_reliability_monotone_in_d(
        r in 0.51f64..0.999,
        d in 1usize..40,
    ) {
        let lo = iterative::reliability(margin(d), rel(r));
        let hi = iterative::reliability(margin(d + 1), rel(r));
        prop_assert!(hi >= lo);
        let lo_bad = iterative::reliability(margin(d), rel(1.0 - r));
        let hi_bad = iterative::reliability(margin(d + 1), rel(1.0 - r));
        prop_assert!(hi_bad <= lo_bad);
    }
}

/// Drives a strategy over an arbitrary boolean result tape and returns
/// `(jobs, waves, verdict, final_tally)`.
fn drive<S: RedundancyStrategy<bool>>(
    strategy: S,
    tape: &[bool],
) -> Option<(usize, usize, bool, VoteTally<bool>)> {
    let mut task = TaskExecution::new(strategy);
    let mut cursor = 0usize;
    loop {
        match task.poll().unwrap() {
            smartred_core::execution::Poll::Complete(v) => {
                return Some((task.jobs_deployed(), task.waves(), v, task.tally().clone()));
            }
            smartred_core::execution::Poll::Pending => unreachable!(),
            smartred_core::execution::Poll::Deploy(n) => {
                if cursor + n > tape.len() {
                    return None; // tape exhausted; discard this case
                }
                for i in 0..n {
                    task.record(tape[cursor + i]);
                }
                cursor += n;
            }
        }
    }
}

proptest! {
    /// Traditional redundancy always uses exactly k jobs in one wave and
    /// accepts the majority of the tape prefix.
    #[test]
    fn traditional_execution_invariants(
        half_k in 0usize..10,
        tape in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let k = 2 * half_k + 1;
        let (jobs, waves, verdict, tally) =
            drive(Traditional::new(votes(k)), &tape).unwrap();
        prop_assert_eq!(jobs, k);
        prop_assert_eq!(waves, 1);
        let trues = tape[..k].iter().filter(|&&b| b).count();
        prop_assert_eq!(verdict, trues > k / 2);
        prop_assert_eq!(tally.total(), k);
    }

    /// Progressive redundancy never exceeds k jobs on binary tapes, and its
    /// verdict always holds a consensus.
    #[test]
    fn progressive_execution_invariants(
        half_k in 0usize..10,
        tape in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let k = 2 * half_k + 1;
        let consensus = k.div_ceil(2);
        let (jobs, waves, verdict, tally) =
            drive(Progressive::new(votes(k)), &tape).unwrap();
        prop_assert!(jobs <= k);
        prop_assert!(waves <= consensus);
        prop_assert_eq!(tally.count(&verdict), consensus);
        prop_assert!(tally.count(&!verdict) < consensus);
    }

    /// Iterative redundancy terminates with margin exactly d (never
    /// overshoots — the wave-boundary absorption property the analysis
    /// relies on).
    #[test]
    fn iterative_execution_ends_at_exact_margin(
        d in 1usize..8,
        tape in proptest::collection::vec(any::<bool>(), 256),
    ) {
        if let Some((jobs, _waves, verdict, tally)) =
            drive(Iterative::new(margin(d)), &tape)
        {
            let a = tally.count(&verdict);
            let b = tally.count(&!verdict);
            prop_assert_eq!(a - b, d, "terminated with margin {} != d={}", a - b, d);
            prop_assert_eq!(jobs, a + b);
            prop_assert_eq!((jobs as i64 - d as i64) % 2, 0, "job parity violated");
        }
    }

    /// A tally built from any permutation of a vote sequence is identical.
    #[test]
    fn tally_is_order_independent(
        mut values in proptest::collection::vec(0u8..5, 0..40),
    ) {
        let forward: VoteTally<u8> = values.iter().copied().collect();
        values.reverse();
        let backward: VoteTally<u8> = values.iter().copied().collect();
        prop_assert_eq!(forward, backward);
    }
}

/// Documents the small-k exception to IR-dominates-PR: at k = 3 and high r,
/// progressive redundancy's two-job consensus floor beats the cheapest
/// iterative margin that matches its reliability. The paper's comparisons
/// (k = 19) are far from this regime.
#[test]
fn small_k_exception_pr_can_beat_ir() {
    use smartred_core::analysis::improvement::{improvement, MarginMatch};
    let imp = improvement(votes(3), rel(0.92), MarginMatch::Nearest).unwrap();
    assert!(
        imp.ir_cost > imp.pr_cost,
        "expected the documented exception: IR {} vs PR {}",
        imp.ir_cost,
        imp.pr_cost
    );
    // But IR buys strictly more reliability for that extra cost.
    assert!(imp.ir_reliability > imp.tr_reliability);
}

proptest! {
    /// Strategy conformance: on ANY tally, every strategy either deploys a
    /// positive wave or accepts a value that actually received votes
    /// (accepting an unvoted value would be a validator fabricating
    /// results).
    #[test]
    fn strategies_accept_only_voted_values(
        trues in 0usize..40,
        falses in 0usize..40,
        half_k in 0usize..8,
        d in 1usize..8,
    ) {
        let mut tally: VoteTally<bool> = VoteTally::new();
        tally.record_n(true, trues);
        tally.record_n(false, falses);
        let k = votes(2 * half_k + 1);
        let strategies: Vec<Box<dyn RedundancyStrategy<bool>>> = vec![
            Box::new(Traditional::new(k)),
            Box::new(Progressive::new(k)),
            Box::new(Iterative::new(margin(d))),
            Box::new(smartred_core::strategy::Budgeted::new(Iterative::new(margin(d)), 64)),
        ];
        for strategy in &strategies {
            match strategy.decide(&tally) {
                smartred_core::strategy::Decision::Deploy(n) => {
                    prop_assert!(n.get() >= 1);
                }
                smartred_core::strategy::Decision::Accept(v) => {
                    prop_assert!(tally.count(&v) > 0,
                        "{} accepted unvoted value {v:?} on tally {tally:?}",
                        strategy.name());
                }
            }
        }
    }

    /// Budgeted wrapping preserves the inner strategy's verdicts whenever
    /// the inner strategy finishes within budget.
    #[test]
    fn budgeted_is_transparent_within_budget(
        tape in proptest::collection::vec(any::<bool>(), 128),
        d in 1usize..5,
    ) {
        let inner = Iterative::new(margin(d));
        let wrapped = smartred_core::strategy::Budgeted::new(inner, 1024);
        let a = drive(inner, &tape);
        let b = drive(wrapped, &tape);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.0, b.0, "jobs differ");
            prop_assert_eq!(a.2, b.2, "verdicts differ");
        }
    }
}

proptest! {
    /// The hedge trigger never fires before its warm-up completes,
    /// whatever latencies it has seen and however extreme the elapsed
    /// time — the "never hedges cold" half of the steady-state contract.
    #[test]
    fn trigger_never_fires_before_min_samples(
        min_samples in 5u64..50,
        latencies in proptest::collection::vec(0.0f64..1.0e4, 0..49),
        elapsed in 0.0f64..1.0e9,
    ) {
        use smartred_core::hedge::{HedgePolicy, HedgeTrigger};
        let mut t = HedgeTrigger::new(HedgePolicy {
            min_samples,
            ..HedgePolicy::default()
        })
        .unwrap();
        for &l in latencies.iter().take((min_samples - 1) as usize) {
            t.observe(l);
        }
        prop_assert!(t.observations() < min_samples);
        prop_assert_eq!(t.threshold(), None);
        prop_assert!(!t.should_hedge(elapsed));
    }

    /// At steady state the trigger never hedges before the configured
    /// quantile: the threshold is bounded below by `multiplier` × the
    /// smallest observed latency and above by `multiplier` × the largest,
    /// so a job is only ever hedged after outliving a latency some worker
    /// actually exhibited (scaled by the safety multiplier) — and any
    /// elapsed time at or below the min-latency threshold never fires.
    #[test]
    fn steady_state_threshold_is_bounded_by_observed_latencies(
        quantile in 0.05f64..0.95,
        multiplier in 1.0f64..4.0,
        latencies in proptest::collection::vec(0.001f64..1.0e4, 20..120),
    ) {
        use smartred_core::hedge::{HedgePolicy, HedgeTrigger};
        let mut t = HedgeTrigger::new(HedgePolicy {
            quantile,
            min_samples: 20,
            multiplier,
            max_per_task: 1,
        })
        .unwrap();
        for &l in &latencies {
            t.observe(l);
        }
        let lo = latencies.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let threshold = t.threshold().expect("past warm-up");
        prop_assert!(
            (lo * multiplier..=hi * multiplier).contains(&threshold),
            "threshold {threshold} escaped [{}, {}]",
            lo * multiplier,
            hi * multiplier
        );
        prop_assert!(!t.should_hedge(lo * multiplier));
        prop_assert!(t.should_hedge(hi * multiplier + 1.0));
    }

    /// The trigger is a pure fold over the latency stream: two triggers
    /// fed the same stream agree on every threshold and every hedging
    /// decision bit for bit — the property that keeps DCA, volunteer, and
    /// live-runtime hedging decisions identical at matched parameters.
    #[test]
    fn identical_streams_yield_identical_decisions(
        quantile in 0.05f64..0.95,
        latencies in proptest::collection::vec(0.0f64..1.0e4, 0..100),
        probes in proptest::collection::vec(0.0f64..2.0e4, 1..20),
    ) {
        use smartred_core::hedge::{HedgePolicy, HedgeTrigger};
        let policy = HedgePolicy {
            quantile,
            min_samples: 10,
            multiplier: 1.5,
            max_per_task: 2,
        };
        let mut a = HedgeTrigger::new(policy).unwrap();
        let mut b = HedgeTrigger::new(policy).unwrap();
        for &l in &latencies {
            a.observe(l);
            b.observe(l);
        }
        prop_assert_eq!(a.threshold(), b.threshold());
        for &e in &probes {
            prop_assert_eq!(a.should_hedge(e), b.should_hedge(e));
        }
    }
}
