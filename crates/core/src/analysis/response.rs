//! Response-time building blocks (paper §5.2).
//!
//! The paper's simulations draw job completion times uniformly from
//! `[0.5, 1.5]` time units. A wave of `m` parallel jobs finishes when its
//! slowest job does, so the expected wave latency is the expected maximum of
//! `m` uniforms; a technique's expected response time is the sum of its
//! expected wave latencies along the (random) wave path.

/// The paper's default job-duration window, in simulated time units.
pub const DEFAULT_JOB_DURATION: (f64, f64) = (0.5, 1.5);

/// Expected maximum of `m` independent `Uniform(lo, hi)` draws:
/// `lo + (hi − lo) · m / (m + 1)`.
///
/// # Panics
///
/// Panics if `m == 0` or `hi < lo`.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::response::expected_max_uniform;
///
/// // A single job takes 1.0 on average; a large wave approaches 1.5.
/// assert!((expected_max_uniform(1, 0.5, 1.5) - 1.0).abs() < 1e-12);
/// assert!(expected_max_uniform(1000, 0.5, 1.5) > 1.49);
/// ```
pub fn expected_max_uniform(m: usize, lo: f64, hi: f64) -> f64 {
    assert!(m > 0, "a wave has at least one job");
    assert!(hi >= lo, "duration window must be ordered");
    lo + (hi - lo) * (m as f64) / (m as f64 + 1.0)
}

/// Expected response time of traditional `k`-vote redundancy: a single wave
/// of `k` jobs.
pub fn traditional_response(k: usize, lo: f64, hi: f64) -> f64 {
    expected_max_uniform(k, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_draw_is_the_mean() {
        assert!((expected_max_uniform(1, 0.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grows_toward_upper_bound() {
        let mut last = 0.0;
        for m in 1..50 {
            let v = expected_max_uniform(m, 0.5, 1.5);
            assert!(v > last && v < 1.5);
            last = v;
        }
    }

    #[test]
    fn traditional_response_is_one_wave() {
        let (lo, hi) = DEFAULT_JOB_DURATION;
        assert_eq!(
            traditional_response(19, lo, hi),
            expected_max_uniform(19, lo, hi)
        );
        // k = 19 → 0.5 + 19/20 = 1.45.
        assert!((traditional_response(19, lo, hi) - 1.45).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_wave_panics() {
        expected_max_uniform(0, 0.5, 1.5);
    }

    #[test]
    #[should_panic(expected = "must be ordered")]
    fn inverted_window_panics() {
        expected_max_uniform(1, 1.5, 0.5);
    }
}
