//! Analytic cost and reliability of progressive redundancy (Eqs. 3–4).
//!
//! Two independent derivations of the expected cost are provided:
//! [`cost_series`] is the paper's Eq. (3) transcribed literally, and
//! [`profile`] is an exact dynamic program over the wave process. The test
//! suite requires them to agree to ~1e-9, guarding against transcription
//! errors in either.

use std::collections::HashMap;

use crate::analysis::math::{binomial_pmf, ln_binomial};
use crate::analysis::response::expected_max_uniform;
use crate::params::{KVotes, Reliability};

/// System reliability of `k`-vote progressive redundancy — Eq. (4), equal to
/// traditional redundancy's Eq. (2).
pub fn reliability(k: KVotes, r: Reliability) -> f64 {
    crate::analysis::traditional::reliability(k, r)
}

/// Expected cost factor of `k`-vote progressive redundancy — the literal
/// series of Eq. (3):
///
/// ```text
/// C_PR(r) = (k+1)/2 + Σ_{i=(k+3)/2}^{k} Σ_{j=i−(k+1)/2}^{(k−1)/2}
///            C(i−1, j) r^{i−1−j} (1−r)^j
/// ```
///
/// The inner sum is `P(no consensus among the first i−1 results)`, so the
/// outer sum is `Σ P(at least i jobs are needed)` — the standard tail-sum
/// form of an expectation.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::progressive;
/// use smartred_core::params::{KVotes, Reliability};
///
/// // Paper §3.2: k = 19, r = 0.7 costs "14.2 times as many resources".
/// let c = progressive::cost_series(KVotes::new(19)?, Reliability::new(0.7)?);
/// assert!((c - 14.2).abs() < 0.05);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn cost_series(k: KVotes, r: Reliability) -> f64 {
    let k = k.get();
    let r = r.get();
    let consensus = k.div_ceil(2);
    let mut cost = consensus as f64;
    for i in (consensus + 1)..=k {
        let mut p_no_consensus = 0.0;
        // j = number of wrong results among the first i−1; no consensus means
        // both the right count (i−1−j) and the wrong count (j) are below the
        // consensus size.
        let j_lo = i - consensus;
        let j_hi = (k - 1) / 2;
        for j in j_lo..=j_hi.min(i - 1) {
            let ln_term = ln_binomial(i - 1, j);
            if ln_term == f64::NEG_INFINITY {
                continue;
            }
            let term = if r == 0.0 {
                if i - 1 - j == 0 {
                    ln_term.exp()
                } else {
                    0.0
                }
            } else if r == 1.0 {
                if j == 0 {
                    ln_term.exp()
                } else {
                    0.0
                }
            } else {
                (ln_term + ((i - 1 - j) as f64) * r.ln() + (j as f64) * (1.0 - r).ln()).exp()
            };
            p_no_consensus += term;
        }
        cost += p_no_consensus;
    }
    cost
}

/// Exact wave-process statistics of progressive redundancy.
///
/// Computed by dynamic programming over vote states `(a, b)` — `a` correct
/// and `b` wrong votes so far — with exact binomial wave transitions. No
/// truncation is involved: the process always terminates within `k` jobs for
/// binary results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveProfile {
    /// Expected total jobs per task (the cost factor).
    pub expected_jobs: f64,
    /// Expected number of waves (deployment rounds).
    pub expected_waves: f64,
    /// Expected response time, with each wave costing the expected maximum
    /// of its job durations (uniform window `duration`).
    pub expected_response: f64,
    /// Probability the accepted result is correct (must equal Eq. 4).
    pub reliability: f64,
}

/// Computes the exact [`WaveProfile`] of `k`-vote progressive redundancy.
///
/// `duration` is the `(lo, hi)` uniform job-duration window used for the
/// response-time expectation; pass
/// [`DEFAULT_JOB_DURATION`](crate::analysis::response::DEFAULT_JOB_DURATION)
/// to match the paper's simulations.
pub fn profile(k: KVotes, r: Reliability, duration: (f64, f64)) -> WaveProfile {
    let consensus = k.consensus();
    let r = r.get();
    let mut memo: HashMap<(usize, usize), Stats> = HashMap::new();
    let stats = wave_stats(0, 0, consensus, r, duration, &mut memo);
    WaveProfile {
        expected_jobs: stats.jobs,
        expected_waves: stats.waves,
        expected_response: stats.response,
        reliability: stats.reliability,
    }
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    jobs: f64,
    waves: f64,
    response: f64,
    reliability: f64,
}

fn wave_stats(
    a: usize,
    b: usize,
    consensus: usize,
    r: f64,
    duration: (f64, f64),
    memo: &mut HashMap<(usize, usize), Stats>,
) -> Stats {
    if let Some(&s) = memo.get(&(a, b)) {
        return s;
    }
    let m = consensus - a.max(b);
    debug_assert!(m >= 1, "unabsorbed state must deploy at least one job");
    let mut stats = Stats {
        jobs: m as f64,
        waves: 1.0,
        response: expected_max_uniform(m, duration.0, duration.1),
        reliability: 0.0,
    };
    for j in 0..=m {
        let p = binomial_pmf(m, j, r);
        if p == 0.0 {
            continue;
        }
        let (na, nb) = (a + j, b + m - j);
        if na >= consensus {
            stats.reliability += p;
        } else if nb >= consensus {
            // absorbed wrong: contributes nothing further
        } else {
            let sub = wave_stats(na, nb, consensus, r, duration, memo);
            stats.jobs += p * sub.jobs;
            stats.waves += p * sub.waves;
            stats.response += p * sub.response;
            stats.reliability += p * sub.reliability;
        }
    }
    memo.insert((a, b), stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::response::DEFAULT_JOB_DURATION;

    fn k(v: usize) -> KVotes {
        KVotes::new(v).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn paper_example_cost_14_2() {
        let c = cost_series(k(19), r(0.7));
        assert!((c - 14.2).abs() < 0.05, "C_PR = {c}");
    }

    #[test]
    fn series_and_dp_agree() {
        for &kk in &[1usize, 3, 5, 9, 19, 39] {
            for &rr in &[0.0, 0.3, 0.5, 0.55, 0.7, 0.86, 0.99, 1.0] {
                let series = cost_series(k(kk), r(rr));
                let dp = profile(k(kk), r(rr), DEFAULT_JOB_DURATION).expected_jobs;
                assert!(
                    (series - dp).abs() < 1e-9,
                    "k={kk} r={rr}: series {series} vs dp {dp}"
                );
            }
        }
    }

    #[test]
    fn dp_reliability_matches_eq4() {
        for &kk in &[3usize, 9, 19] {
            for &rr in &[0.55, 0.7, 0.9] {
                let dp = profile(k(kk), r(rr), DEFAULT_JOB_DURATION).reliability;
                let eq4 = reliability(k(kk), r(rr));
                assert!(
                    (dp - eq4).abs() < 1e-9,
                    "k={kk} r={rr}: dp {dp} vs eq4 {eq4}"
                );
            }
        }
    }

    #[test]
    fn k1_degenerates_to_single_job() {
        let p = profile(k(1), r(0.7), DEFAULT_JOB_DURATION);
        assert!((p.expected_jobs - 1.0).abs() < 1e-12);
        assert!((p.expected_waves - 1.0).abs() < 1e-12);
        assert!((p.reliability - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cost_bounded_by_consensus_and_k() {
        for &kk in &[3usize, 9, 19] {
            for &rr in &[0.55, 0.7, 0.9] {
                let c = cost_series(k(kk), r(rr));
                assert!(c >= (kk.div_ceil(2)) as f64);
                assert!(c <= kk as f64);
            }
        }
    }

    #[test]
    fn perfect_pool_costs_exactly_consensus() {
        // r = 1: the first wave is unanimous.
        let p = profile(k(19), r(1.0), DEFAULT_JOB_DURATION);
        assert!((p.expected_jobs - 10.0).abs() < 1e-12);
        assert!((p.expected_waves - 1.0).abs() < 1e-12);
        assert_eq!(p.reliability, 1.0);
    }

    #[test]
    fn cheaper_than_traditional_for_nontrivial_k() {
        for &rr in &[0.55, 0.7, 0.86, 0.95] {
            let c = cost_series(k(19), r(rr));
            assert!(c < 19.0, "r={rr}: C_PR {c} should beat k");
        }
    }

    #[test]
    fn waves_bounded_by_consensus() {
        // Paper §5.2: no more than (k−1)/2 waves beyond the first.
        let p = profile(k(19), r(0.55), DEFAULT_JOB_DURATION);
        assert!(p.expected_waves <= 10.0);
        assert!(p.expected_waves >= 1.0);
    }

    #[test]
    fn response_time_exceeds_one_wave() {
        let p = profile(k(19), r(0.7), DEFAULT_JOB_DURATION);
        // More than one wave on average, so response beats a single k-wave's
        // expected latency divided by… simply: it exceeds the single-wave
        // latency of the first wave (10 jobs → ≈1.409).
        assert!(p.expected_response > expected_max_uniform(10, 0.5, 1.5));
    }
}
