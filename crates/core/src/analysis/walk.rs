//! Random-walk (gambler's-ruin) view of iterative redundancy.
//!
//! Treat each job as a ±1 step: +1 with probability `r` (a correct result),
//! −1 otherwise. Iterative redundancy with margin `d` stops exactly when the
//! walk, started at 0, first hits `+d` (correct verdict) or `−d` (wrong
//! verdict). Because a wave of `d − |s|` jobs can reach `±d` only on its
//! final job (see `analysis::iterative`), the per-job walk and the per-wave
//! algorithm deploy identical job counts — so first-passage quantities of
//! this walk *are* the cost quantities of Eq. (5).

/// First-passage distribution of the ±`d` walk, truncated at small residual
/// mass.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstPassage {
    /// Margin of the walk.
    pub d: usize,
    /// Per-step absorption probabilities: `(steps, p_correct, p_wrong)`,
    /// where `steps` runs over `d, d+2, d+4, …` (absorption parity).
    pub outcomes: Vec<(usize, f64, f64)>,
    /// Probability mass still unabsorbed when the iteration stopped.
    pub truncated_mass: f64,
}

impl FirstPassage {
    /// Total probability of ending with the correct verdict (should match
    /// Eq. 6 up to the truncated mass).
    pub fn p_correct(&self) -> f64 {
        self.outcomes.iter().map(|&(_, p, _)| p).sum()
    }

    /// Expected number of steps (jobs), counting only absorbed mass.
    pub fn expected_steps_lower_bound(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|&(n, p, q)| (n as f64) * (p + q))
            .sum()
    }
}

/// Probability the walk is absorbed at `+d` — Eq. (6), `R_IR(r) =
/// r^d / (r^d + (1−r)^d)`, computed in the stable odds form.
pub fn absorption_probability(d: usize, r: f64) -> f64 {
    debug_assert!(d >= 1);
    debug_assert!((0.0..=1.0).contains(&r));
    if r == 0.5 {
        return 0.5;
    }
    if r == 1.0 {
        return 1.0;
    }
    if r == 0.0 {
        return 0.0;
    }
    let theta = (1.0 - r) / r;
    1.0 / (1.0 + theta.powi(d as i32))
}

/// Expected number of steps to absorption — the closed form of Eq. (5).
///
/// For `r ≠ ½` this is `d·(2w − 1)/(2r − 1)` with `w` the absorption
/// probability; for `r = ½` it is `d²` (the classic symmetric ruin
/// duration). The paper's approximation `C_IR ≈ d/(2r−1)` is the `w → 1`
/// limit of this expression.
pub fn expected_steps(d: usize, r: f64) -> f64 {
    debug_assert!(d >= 1);
    debug_assert!((0.0..=1.0).contains(&r));
    if r == 0.5 {
        return (d * d) as f64;
    }
    let w = absorption_probability(d, r);
    (d as f64) * (2.0 * w - 1.0) / (2.0 * r - 1.0)
}

/// Exact first-passage distribution via forward dynamic programming.
///
/// Iterates the probability vector over interior positions `−d+1 … d−1`
/// until the unabsorbed mass falls below `eps` or `max_steps` is reached.
/// The walk is absorbed almost surely for every `r ∈ [0, 1]`, so for any
/// positive `eps` this terminates.
pub fn first_passage(d: usize, r: f64, eps: f64, max_steps: usize) -> FirstPassage {
    debug_assert!(d >= 1);
    debug_assert!((0.0..=1.0).contains(&r));
    let width = 2 * d - 1; // interior positions, index i ↦ position i − (d−1)
    let mut mass = vec![0.0_f64; width];
    mass[d - 1] = 1.0; // start at position 0
    let mut outcomes = Vec::new();
    let mut remaining = 1.0_f64;
    let mut next = vec![0.0_f64; width];

    for step in 1..=max_steps {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut absorbed_plus = 0.0;
        let mut absorbed_minus = 0.0;
        for (i, &p) in mass.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            // Step up with probability r.
            if i + 1 == width {
                absorbed_plus += p * r;
            } else {
                next[i + 1] += p * r;
            }
            // Step down with probability 1 − r.
            if i == 0 {
                absorbed_minus += p * (1.0 - r);
            } else {
                next[i - 1] += p * (1.0 - r);
            }
        }
        std::mem::swap(&mut mass, &mut next);
        if absorbed_plus > 0.0 || absorbed_minus > 0.0 {
            outcomes.push((step, absorbed_plus, absorbed_minus));
            remaining -= absorbed_plus + absorbed_minus;
        }
        if remaining < eps {
            break;
        }
    }
    FirstPassage {
        d,
        outcomes,
        truncated_mass: remaining.max(0.0),
    }
}

/// Expected steps computed by summing the first-passage series (the literal
/// Eq. (5)), with a rigorous bound on the truncation error added in.
///
/// The returned value is the series sum plus `truncated_mass` times the
/// worst-case expected remainder; the remainder bound is `d²` for `r = ½`
/// and `2d/|2r−1|` otherwise — the maximum expected absorption time over
/// all interior states, up to a constant.
pub fn expected_steps_series(d: usize, r: f64, eps: f64) -> f64 {
    let max_steps = series_step_budget(d, r);
    let fp = first_passage(d, r, eps, max_steps);
    let absorbed_sum = fp.expected_steps_lower_bound();
    let last_step = fp.outcomes.last().map(|&(n, _, _)| n).unwrap_or(0);
    let tail_per_unit = if r == 0.5 {
        (2 * d * d) as f64
    } else {
        (2 * d) as f64 / (2.0 * r - 1.0).abs()
    };
    absorbed_sum + fp.truncated_mass * (last_step as f64 + tail_per_unit)
}

/// Mean and variance of the absorption time, from the first-passage
/// distribution (truncated at `eps`; both moments are computed over the
/// absorbed mass, a tight approximation for small `eps`).
///
/// Useful for analytic error bars on simulated cost factors: the standard
/// error of a mean over `n` tasks is `sqrt(variance / n)`.
pub fn steps_moments(d: usize, r: f64, eps: f64) -> (f64, f64) {
    let fp = first_passage(d, r, eps, series_step_budget(d, r));
    let mass: f64 = fp.outcomes.iter().map(|&(_, p, q)| p + q).sum();
    if mass == 0.0 {
        return (0.0, 0.0);
    }
    let mean: f64 = fp
        .outcomes
        .iter()
        .map(|&(n, p, q)| n as f64 * (p + q))
        .sum::<f64>()
        / mass;
    let second: f64 = fp
        .outcomes
        .iter()
        .map(|&(n, p, q)| (n as f64) * (n as f64) * (p + q))
        .sum::<f64>()
        / mass;
    (mean, (second - mean * mean).max(0.0))
}

fn series_step_budget(d: usize, r: f64) -> usize {
    // Heuristic budget: far beyond the expected absorption time so the
    // truncated mass is negligible for eps ≥ 1e-15.
    let expected = if r == 0.5 {
        (d * d) as f64
    } else {
        (d as f64) / (2.0 * r - 1.0).abs().max(1e-3)
    };
    ((expected * 200.0) as usize).clamp(10_000, 5_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn absorption_probability_matches_eq6() {
        let expected = 0.7_f64.powi(4) / (0.7_f64.powi(4) + 0.3_f64.powi(4));
        close(absorption_probability(4, 0.7), expected, 1e-12);
        assert_eq!(absorption_probability(3, 0.5), 0.5);
        assert_eq!(absorption_probability(3, 1.0), 1.0);
        assert_eq!(absorption_probability(3, 0.0), 0.0);
    }

    #[test]
    fn expected_steps_paper_example() {
        // r = 0.7, d = 4 → ≈ 9.35 ("9.4 times as many resources", §3.3).
        close(expected_steps(4, 0.7), 9.35, 0.01);
    }

    #[test]
    fn expected_steps_symmetric_is_d_squared() {
        assert_eq!(expected_steps(3, 0.5), 9.0);
        assert_eq!(expected_steps(10, 0.5), 100.0);
    }

    #[test]
    fn expected_steps_limit_approaches_d_over_bias() {
        // For large d with r > ½ the cost approaches d/(2r−1) (paper note).
        let d = 40;
        close(expected_steps(d, 0.8), d as f64 / 0.6, 1e-6);
    }

    #[test]
    fn series_matches_closed_form() {
        for &(d, r) in &[
            (1usize, 0.7),
            (4, 0.7),
            (4, 0.55),
            (7, 0.86),
            (3, 0.5),
            (5, 0.95),
        ] {
            let series = expected_steps_series(d, r, 1e-13);
            let closed = expected_steps(d, r);
            close(series, closed, 1e-6);
        }
    }

    #[test]
    fn series_handles_unreliable_pools() {
        // r < ½: the walk is absorbed (usually at −d); cost is still finite
        // and symmetric to 1 − r.
        close(
            expected_steps_series(4, 0.3, 1e-13),
            expected_steps_series(4, 0.7, 1e-13),
            1e-6,
        );
    }

    #[test]
    fn first_passage_probabilities_sum_to_eq6() {
        let fp = first_passage(4, 0.7, 1e-14, 1_000_000);
        close(fp.p_correct(), absorption_probability(4, 0.7), 1e-10);
        assert!(fp.truncated_mass < 1e-13);
    }

    #[test]
    fn first_passage_parity() {
        // Absorption can only happen at steps d, d+2, d+4, …
        let fp = first_passage(3, 0.7, 1e-12, 100_000);
        for &(n, _, _) in &fp.outcomes {
            assert_eq!((n - 3) % 2, 0, "absorption at step {n} violates parity");
        }
        assert_eq!(fp.outcomes.first().map(|o| o.0), Some(3));
    }

    #[test]
    fn first_passage_d1_is_geometric() {
        // d = 1 absorbs on the first step with certainty.
        let fp = first_passage(1, 0.7, 1e-12, 10);
        assert_eq!(fp.outcomes.len(), 1);
        let (n, p, q) = fp.outcomes[0];
        assert_eq!(n, 1);
        close(p, 0.7, 1e-15);
        close(q, 0.3, 1e-15);
    }

    #[test]
    fn moments_mean_matches_closed_form() {
        for &(d, r) in &[(1usize, 0.7), (4, 0.7), (4, 0.55), (3, 0.5)] {
            let (mean, _var) = steps_moments(d, r, 1e-13);
            close(mean, expected_steps(d, r), 1e-6);
        }
    }

    #[test]
    fn moments_variance_is_sane() {
        // d = 1 absorbs in exactly one step: zero variance.
        let (_m, v1) = steps_moments(1, 0.7, 1e-13);
        close(v1, 0.0, 1e-9);
        // At r = ½ the duration is the classic ruin time with positive
        // variance; check against a direct Monte-Carlo estimate.
        let (mean, var) = steps_moments(3, 0.5, 1e-13);
        close(mean, 9.0, 1e-6);
        assert!(var > 10.0 && var < 100.0, "variance {var}");
    }

    #[test]
    fn moments_variance_shrinks_with_reliability() {
        let (_m1, v_low) = steps_moments(4, 0.6, 1e-13);
        let (_m2, v_high) = steps_moments(4, 0.95, 1e-13);
        assert!(v_high < v_low, "variance should shrink as r -> 1");
    }
}
