//! Numerical verification of the §3.3 optimality claim.
//!
//! The paper asserts iterative redundancy "is guaranteed to use the
//! minimum amount of computation needed to achieve the desired system
//! reliability". This module checks that claim against *all implementable
//! stopping policies*, not just margin thresholds.
//!
//! An implementable validator observes only the votes, never the truth. By
//! Theorem 1 the posterior that the current leader is correct depends only
//! on the absolute margin `m`, so `m` is a sufficient statistic and the
//! observable process is a Markov chain on `m ≥ 0` whose *predictive*
//! agree-probability is `p(m) = post(m)·r + (1 − post(m))·(1 − r)` with
//! `post(m) = 1/(1 + θ^m)`. Any stopping policy — stationary or not — is a
//! stopping rule on this chain; its reliability is `E[post at stop]` (tower
//! rule) and its cost is `E[jobs]`.
//!
//! For a Lagrange multiplier `λ ≥ 0`, backward induction computes the
//! policy maximizing `λ·P(correct) − E[jobs]` exactly over a finite
//! horizon; sweeping `λ` traces the achievable (cost, reliability) Pareto
//! frontier. The tests verify Wald–Wolfowitz-style optimality numerically:
//! every iterative-redundancy point `(C_IR(d), R_IR(d))` lies on the
//! frontier, every frontier point *is* a margin threshold, and traditional
//! redundancy is strictly dominated.

use crate::params::Reliability;

/// One point of the optimal cost/reliability frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// The Lagrange multiplier that produced this policy.
    pub lambda: f64,
    /// Expected jobs of the optimal policy at this multiplier.
    pub cost: f64,
    /// Probability of a correct verdict under that policy.
    pub reliability: f64,
}

/// Posterior that the leader is correct at absolute margin `m` (Eq. 6 /
/// Theorem 2).
fn post(r: f64, m: usize) -> f64 {
    if r == 0.5 {
        return 0.5;
    }
    let theta = (1.0 - r) / r;
    1.0 / (1.0 + theta.powi(m as i32))
}

/// Predictive probability that the next vote agrees with the current
/// leader, given absolute margin `m`.
fn p_agree(r: f64, m: usize) -> f64 {
    let q = post(r, m);
    q * r + (1.0 - q) * (1.0 - r)
}

/// Solves the λ-relaxed stopping problem by backward induction over the
/// observable margin chain and evaluates the greedy policy forward.
/// Returns `(expected_jobs, reliability)`.
fn solve_lambda(r: Reliability, lambda: f64, horizon: usize) -> (f64, f64) {
    let r = r.get();
    let width = horizon + 2; // margins 0..=horizon+1 (padding for m+1)
                             // Terminal layer: forced stop.
    let mut value: Vec<f64> = (0..width).map(|m| lambda * post(r, m)).collect();
    for _ in 0..horizon {
        let mut next = value.clone();
        for m in 0..width - 1 {
            let stop = lambda * post(r, m);
            let up = if m == 0 { 1.0 } else { p_agree(r, m) };
            let down = 1.0 - up;
            let down_state = m.saturating_sub(1);
            let cont = -1.0 + up * value[m + 1] + down * value[down_state];
            next[m] = stop.max(cont);
        }
        value = next;
    }
    let stop_at = |m: usize| -> bool {
        if m >= width - 1 {
            return true;
        }
        let stop = lambda * post(r, m);
        let up = if m == 0 { 1.0 } else { p_agree(r, m) };
        let down = 1.0 - up;
        let cont = -1.0 + up * value[m + 1] + down * value[m.saturating_sub(1)];
        stop >= cont
    };
    // Forward evaluation by probability-mass iteration.
    let mut mass = vec![0.0f64; width];
    mass[0] = 1.0;
    let mut cost = 0.0;
    let mut reliability = 0.0;
    for _ in 0..horizon {
        let mut next = vec![0.0f64; width];
        for m in 0..width - 1 {
            let p = mass[m];
            if p == 0.0 {
                continue;
            }
            if stop_at(m) {
                reliability += p * post(r, m);
            } else {
                cost += p;
                let up = if m == 0 { 1.0 } else { p_agree(r, m) };
                next[m + 1] += p * up;
                next[m.saturating_sub(1)] += p * (1.0 - up);
            }
        }
        mass = next;
    }
    for (m, &p) in mass.iter().enumerate() {
        if p > 0.0 {
            reliability += p * post(r, m);
        }
    }
    (cost, reliability)
}

/// Sweeps the Lagrange multiplier to trace the optimal (cost, reliability)
/// frontier over all implementable stopping policies.
///
/// # Panics
///
/// Panics if `lambdas` is empty or `horizon == 0` (an experiment-setup
/// error).
pub fn frontier(r: Reliability, lambdas: &[f64], horizon: usize) -> Vec<FrontierPoint> {
    assert!(!lambdas.is_empty(), "at least one multiplier required");
    assert!(horizon > 0, "horizon must be positive");
    lambdas
        .iter()
        .map(|&lambda| {
            let (cost, reliability) = solve_lambda(r, lambda, horizon);
            FrontierPoint {
                lambda,
                cost,
                reliability,
            }
        })
        .collect()
}

/// Checks whether `(cost, reliability)` is dominated by any frontier point:
/// strictly cheaper *and* strictly more reliable (beyond tolerance `eps`).
pub fn is_dominated(points: &[FrontierPoint], cost: f64, reliability: f64, eps: f64) -> bool {
    points
        .iter()
        .any(|p| p.cost < cost - eps && p.reliability > reliability + eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::iterative;
    use crate::params::VoteMargin;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    const HORIZON: usize = 300;

    fn lambda_grid() -> Vec<f64> {
        // Geometric sweep covering thresholds d = 1..~10 at the rs tested.
        (0..140).map(|i| 1.5f64 * 1.1f64.powi(i)).collect()
    }

    /// The paper's optimality claim: no implementable stopping policy (of
    /// any shape, stationary or not) achieves strictly better cost *and*
    /// reliability than iterative redundancy at any margin d.
    #[test]
    fn iterative_points_are_not_dominated() {
        for &r in &[0.6, 0.7, 0.86] {
            let points = frontier(rel(r), &lambda_grid(), HORIZON);
            for d in 1..=7usize {
                let cost = iterative::cost(VoteMargin::new(d).unwrap(), rel(r));
                let reliability = iterative::reliability(VoteMargin::new(d).unwrap(), rel(r));
                assert!(
                    !is_dominated(&points, cost, reliability, 1e-6),
                    "IR d={d} at r={r} is dominated — optimality violated"
                );
            }
        }
    }

    /// Conversely, the Lagrangian-optimal policies *are* iterative
    /// redundancy: each frontier point coincides with some margin
    /// threshold's (cost, reliability).
    #[test]
    fn frontier_points_coincide_with_margin_thresholds() {
        let r = rel(0.7);
        let points = frontier(r, &lambda_grid(), HORIZON);
        for p in &points {
            if p.cost < 0.5 {
                continue; // λ too small: optimal is to not even start
            }
            let matches_some_d = (1..=40usize).any(|d| {
                let cost = iterative::cost(VoteMargin::new(d).unwrap(), r);
                let rel_d = iterative::reliability(VoteMargin::new(d).unwrap(), r);
                (cost - p.cost).abs() < 1e-3 && (rel_d - p.reliability).abs() < 1e-6
            });
            assert!(
                matches_some_d,
                "frontier point (λ={}, cost={}, rel={}) is not a margin threshold",
                p.lambda, p.cost, p.reliability
            );
        }
    }

    /// Traditional redundancy is strictly dominated for k ≥ 3 (it pays for
    /// votes that cannot change the verdict).
    #[test]
    fn traditional_is_strictly_dominated() {
        use crate::analysis::traditional;
        use crate::params::KVotes;
        let r = rel(0.7);
        let points = frontier(r, &lambda_grid(), HORIZON);
        for k in [9usize, 19] {
            let kv = KVotes::new(k).unwrap();
            assert!(
                is_dominated(
                    &points,
                    traditional::cost(kv),
                    traditional::reliability(kv, r),
                    1e-6
                ),
                "TR k={k} should be dominated"
            );
        }
    }

    /// Frontier sanity: cost and reliability are non-decreasing in λ
    /// (paying more for correctness buys more of it).
    #[test]
    fn frontier_is_monotone_in_lambda() {
        let points = frontier(rel(0.7), &lambda_grid(), HORIZON);
        for pair in points.windows(2) {
            assert!(pair[1].cost >= pair[0].cost - 1e-9);
            assert!(pair[1].reliability >= pair[0].reliability - 1e-9);
        }
    }

    /// The predictive chain is consistent with the truth-frame walk: a
    /// margin-d threshold policy evaluated on the observable chain must
    /// reproduce Eqs. (5) and (6) exactly.
    #[test]
    fn observable_chain_reproduces_eq5_eq6() {
        let r = rel(0.7);
        // Pick λ values that select d = 2 and d = 4 and compare with the
        // closed forms.
        let points = frontier(r, &lambda_grid(), HORIZON);
        for d in [2usize, 4] {
            let cost = iterative::cost(VoteMargin::new(d).unwrap(), r);
            let rel_d = iterative::reliability(VoteMargin::new(d).unwrap(), r);
            let hit = points
                .iter()
                .any(|p| (p.cost - cost).abs() < 1e-3 && (p.reliability - rel_d).abs() < 1e-6);
            assert!(hit, "no frontier point matches IR d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one multiplier")]
    fn empty_lambda_grid_panics() {
        frontier(rel(0.7), &[], 10);
    }
}
