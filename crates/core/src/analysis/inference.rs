//! Backing out node reliability from observed measurements (§4.2).
//!
//! The paper validates its PlanetLab deployment by inverting the cost and
//! reliability formulas: "the executions consistently reported costs and
//! system reliabilities consistent with 0.64 < r < 0.67". This module
//! provides those inversions — each analytic quantity is strictly monotone
//! in `r` on `(½, 1)`, so a bisection recovers the `r` that explains an
//! observation.

use crate::analysis::{iterative, progressive, traditional};
use crate::error::ParamError;
use crate::params::{KVotes, Reliability, VoteMargin};

/// Result of a bisection: the reliability in `(0.5, 1)` explaining the
/// observation, or an error if the observation is outside the technique's
/// achievable range.
fn bisect<F>(mut f: F, target: f64, increasing: bool) -> Result<Reliability, ParamError>
where
    F: FnMut(f64) -> f64,
{
    let mut lo = 0.5 + 1e-9;
    let mut hi = 1.0 - 1e-9;
    let (f_lo, f_hi) = (f(lo), f(hi));
    let (mut below, mut above) = if increasing {
        (f_lo, f_hi)
    } else {
        (f_hi, f_lo)
    };
    if below > above {
        std::mem::swap(&mut below, &mut above);
    }
    if !(below..=above).contains(&target) {
        return Err(ParamError::OutOfRange {
            name: "observation",
            value: target,
            expected: "within the technique's achievable range for r in (0.5, 1)",
        });
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        let go_right = if increasing { v < target } else { v > target };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Reliability::new(0.5 * (lo + hi))
}

/// Infers `r` from an observed iterative cost factor at margin `d`
/// (inverts Eq. 5, which is strictly decreasing in `r`).
///
/// # Errors
///
/// Returns [`ParamError`] if `cost` is outside `(d, d²)` — the achievable
/// range between a perfect pool and a coin-flip pool.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::inference::reliability_from_iterative_cost;
/// use smartred_core::params::VoteMargin;
///
/// // The paper's example: d = 4 costing ≈ 9.35 implies r ≈ 0.7.
/// let r = reliability_from_iterative_cost(VoteMargin::new(4)?, 9.35)?;
/// assert!((r.get() - 0.7).abs() < 0.005);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reliability_from_iterative_cost(
    d: VoteMargin,
    cost: f64,
) -> Result<Reliability, ParamError> {
    bisect(
        |r| iterative::cost(d, Reliability::new(r).expect("bisection range")),
        cost,
        false,
    )
}

/// Infers `r` from an observed progressive cost factor at vote count `k`
/// (inverts Eq. 3).
///
/// # Errors
///
/// Returns [`ParamError`] if `cost` is outside the achievable range
/// `((k+1)/2, …)`.
pub fn reliability_from_progressive_cost(k: KVotes, cost: f64) -> Result<Reliability, ParamError> {
    bisect(
        |r| progressive::cost_series(k, Reliability::new(r).expect("bisection range")),
        cost,
        false,
    )
}

/// Infers `r` from an observed `k`-vote system reliability (inverts Eq. 2,
/// strictly increasing in `r`).
///
/// # Errors
///
/// Returns [`ParamError`] if the observation is outside `(0.5, 1)`.
pub fn reliability_from_traditional_reliability(
    k: KVotes,
    observed: f64,
) -> Result<Reliability, ParamError> {
    bisect(
        |r| traditional::reliability(k, Reliability::new(r).expect("bisection range")),
        observed,
        true,
    )
}

/// Infers `r` from an observed iterative system reliability at margin `d`
/// (inverts Eq. 6).
///
/// # Errors
///
/// Returns [`ParamError`] if the observation is outside `(0.5, 1)`.
pub fn reliability_from_iterative_reliability(
    d: VoteMargin,
    observed: f64,
) -> Result<Reliability, ParamError> {
    bisect(
        |r| iterative::reliability(d, Reliability::new(r).expect("bisection range")),
        observed,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: usize) -> VoteMargin {
        VoteMargin::new(v).unwrap()
    }

    fn k(v: usize) -> KVotes {
        KVotes::new(v).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn iterative_cost_roundtrip() {
        for &rr in &[0.55, 0.65, 0.7, 0.86, 0.95] {
            let cost = iterative::cost(d(4), r(rr));
            let inferred = reliability_from_iterative_cost(d(4), cost).unwrap();
            assert!(
                (inferred.get() - rr).abs() < 1e-6,
                "r={rr}: inferred {}",
                inferred
            );
        }
    }

    #[test]
    fn progressive_cost_roundtrip() {
        for &rr in &[0.6, 0.66, 0.8] {
            let cost = progressive::cost_series(k(19), r(rr));
            let inferred = reliability_from_progressive_cost(k(19), cost).unwrap();
            assert!((inferred.get() - rr).abs() < 1e-6);
        }
    }

    #[test]
    fn traditional_reliability_roundtrip() {
        for &rr in &[0.6, 0.66, 0.8] {
            let observed = traditional::reliability(k(19), r(rr));
            let inferred = reliability_from_traditional_reliability(k(19), observed).unwrap();
            assert!((inferred.get() - rr).abs() < 1e-6);
        }
    }

    #[test]
    fn iterative_reliability_roundtrip() {
        let observed = iterative::reliability(d(6), r(0.66));
        let inferred = reliability_from_iterative_reliability(d(6), observed).unwrap();
        assert!((inferred.get() - 0.66).abs() < 1e-6);
    }

    #[test]
    fn impossible_observations_are_rejected() {
        // Cost below d is unachievable.
        assert!(reliability_from_iterative_cost(d(4), 3.0).is_err());
        // Cost above d² means r < 1/2.
        assert!(reliability_from_iterative_cost(d(4), 30.0).is_err());
        // A reliability of 0.3 is below the r > ½ branch.
        assert!(reliability_from_traditional_reliability(k(19), 0.3).is_err());
    }

    #[test]
    fn consistent_inference_across_techniques() {
        // Simulating the paper's validation: if the same pool drives both
        // PR and IR runs, the two inversions must agree on r.
        let true_r = 0.655;
        let pr_cost = progressive::cost_series(k(19), r(true_r));
        let ir_cost = iterative::cost(d(4), r(true_r));
        let from_pr = reliability_from_progressive_cost(k(19), pr_cost).unwrap();
        let from_ir = reliability_from_iterative_cost(d(4), ir_cost).unwrap();
        assert!((from_pr.get() - from_ir.get()).abs() < 1e-6);
    }
}
