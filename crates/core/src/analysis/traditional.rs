//! Analytic cost and reliability of traditional redundancy (Eqs. 1–2).

use crate::analysis::math::binomial_pmf;
use crate::params::{KVotes, Reliability};

/// Cost factor of `k`-vote traditional redundancy — Eq. (1): always `k`,
/// independent of node reliability.
pub fn cost(k: KVotes) -> f64 {
    k.get() as f64
}

/// System reliability of `k`-vote traditional redundancy — Eq. (2):
///
/// ```text
/// R_TR(r) = Σ_{i=0}^{(k−1)/2} C(k, i) r^{k−i} (1−r)^i
/// ```
///
/// the probability that fewer than a majority of the `k` jobs fail.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::traditional;
/// use smartred_core::params::{KVotes, Reliability};
///
/// let r = Reliability::new(0.7)?;
/// // Paper §3.1: k = 19 yields ≈ 0.97.
/// let rel = traditional::reliability(KVotes::new(19)?, r);
/// assert!((rel - 0.9674).abs() < 5e-4);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn reliability(k: KVotes, r: Reliability) -> f64 {
    let k = k.get();
    let r = r.get();
    let max_failures = (k - 1) / 2;
    (0..=max_failures)
        .map(|i| binomial_pmf(k, i, 1.0 - r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: usize) -> KVotes {
        KVotes::new(v).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn cost_is_k() {
        assert_eq!(cost(k(1)), 1.0);
        assert_eq!(cost(k(19)), 19.0);
    }

    #[test]
    fn k1_reliability_is_r() {
        // Paper §3.1: "k = 1 … system reliability of 0.7".
        assert!((reliability(k(1), r(0.7)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn k3_reliability_closed_form() {
        // R = r³ + 3r²(1−r).
        let expect = 0.7_f64.powi(3) + 3.0 * 0.7_f64.powi(2) * 0.3;
        assert!((reliability(k(3), r(0.7)) - expect).abs() < 1e-12);
    }

    #[test]
    fn paper_example_k19() {
        assert!((reliability(k(19), r(0.7)) - 0.9674).abs() < 5e-4);
    }

    #[test]
    fn reliability_monotone_in_k_for_good_pools() {
        let mut last = 0.0;
        for kk in (1..40).step_by(2) {
            let rel = reliability(k(kk), r(0.7));
            assert!(rel > last, "k={kk}: {rel} <= {last}");
            last = rel;
        }
    }

    #[test]
    fn reliability_decreases_in_k_for_bad_pools() {
        // Redundancy amplifies whatever the majority tends to be.
        let mut last = 1.0;
        for kk in (1..40).step_by(2) {
            let rel = reliability(k(kk), r(0.3));
            assert!(rel < last, "k={kk}: {rel} >= {last}");
            last = rel;
        }
    }

    #[test]
    fn degenerate_reliabilities() {
        assert_eq!(reliability(k(19), r(1.0)), 1.0);
        assert_eq!(reliability(k(19), r(0.0)), 0.0);
        assert!((reliability(k(19), r(0.5)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn large_k_is_numerically_stable() {
        let rel = reliability(k(201), r(0.7));
        assert!(rel > 0.999_999 && rel <= 1.0);
    }
}
