//! The Bayesian confidence `q(r, a, b)` and margin selection (paper §3.3).

use crate::error::ParamError;
use crate::params::{Confidence, Reliability, VoteMargin};

/// The confidence `q(r, a, b)` that the `a` majority jobs reported the
/// correct result, given `b` disagreeing jobs and node reliability `r`:
///
/// ```text
/// q(r, a, b) = rᵃ(1−r)ᵇ / (rᵃ(1−r)ᵇ + (1−r)ᵃ rᵇ) = 1 / (1 + θ^(a−b))
/// ```
///
/// with `θ = (1−r)/r`. By Theorem 1 the value depends only on the margin
/// `a − b`; this function computes the stable `θ`-form so it cannot
/// underflow for large `a` and `b`.
///
/// Degenerate reliabilities follow the limit behavior: `r = 1` gives
/// confidence 1 for any positive margin, `r = 0` gives 0, and `r = 0.5`
/// gives ½ regardless of the votes.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::confidence::confidence;
/// use smartred_core::params::Reliability;
///
/// let r = Reliability::new(0.7)?;
/// // One job: 0.7 confidence (paper §3.3 example).
/// assert!((confidence(r, 1, 0) - 0.7).abs() < 1e-12);
/// // Four unanimous jobs: ≈ 0.9674, the paper's "> 0.97" after rounding.
/// assert!((confidence(r, 4, 0) - 0.96737).abs() < 1e-4);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn confidence(r: Reliability, a: usize, b: usize) -> f64 {
    let margin = a as i64 - b as i64;
    if margin == 0 {
        return 0.5;
    }
    let r = r.get();
    if r == 1.0 {
        return if margin > 0 { 1.0 } else { 0.0 };
    }
    if r == 0.0 {
        return if margin > 0 { 0.0 } else { 1.0 };
    }
    let theta = (1.0 - r) / r;
    // 1 / (1 + θ^margin); θ^margin may overflow to +inf (→ 0) or underflow
    // to 0 (→ 1), both of which are the correct limits.
    1.0 / (1.0 + theta.powi(margin as i32))
}

/// The paper's `d(r, R, b)`: the minimum number of majority votes `a` such
/// that `q(r, a, b) ≥ R`.
///
/// By Theorem 1 this equals `b + d(r, R, 0)`, so the search is only over the
/// margin.
///
/// # Errors
///
/// Returns [`ParamError::OutOfRange`] if `r ≤ 0.5`: the confidence then
/// never exceeds ½ for any finite margin.
pub fn required_majority(
    r: Reliability,
    target: Confidence,
    b: usize,
) -> Result<usize, ParamError> {
    Ok(b + minimum_margin(r, target)?.get())
}

/// The minimum margin `d` with `q(r, d, 0) ≥ R` — the parameter the simple
/// iterative algorithm needs (paper §3.3, "determine d(r, R, 0) once").
///
/// # Errors
///
/// Returns [`ParamError::OutOfRange`] if `r ≤ 0.5` (no finite margin
/// suffices).
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::confidence::minimum_margin;
/// use smartred_core::params::{Confidence, Reliability};
///
/// let r = Reliability::new(0.7)?;
/// let d = minimum_margin(r, Confidence::new(0.96)?)?;
/// assert_eq!(d.get(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn minimum_margin(r: Reliability, target: Confidence) -> Result<VoteMargin, ParamError> {
    if r.get() <= 0.5 {
        return Err(ParamError::OutOfRange {
            name: "reliability",
            value: r.get(),
            expected: "(0.5, 1] to reach any confidence above 0.5",
        });
    }
    let mut d = 1usize;
    while confidence(r, d, 0) < target.get() {
        d += 1;
        debug_assert!(d < 1_000_000, "margin search diverged");
    }
    Ok(VoteMargin::new(d).expect("d starts at 1"))
}

/// The confidence achieved by a margin of `d` — `R_IR(r) = q(r, d, 0)`,
/// Eq. (6) of the paper.
pub fn margin_confidence(r: Reliability, d: VoteMargin) -> f64 {
    confidence(r, d.get(), 0)
}

/// A precomputed table of `q(r, a, b)` for one reliability.
///
/// By Theorem 1 the confidence depends only on the margin `a − b`, so a
/// one-dimensional table over signed margins caches every query a
/// strategy can make. Consumers that evaluate `q` in a per-task, per-wave
/// loop (the complex iterative algorithm, reliability-aware validators)
/// build one table up front instead of re-deriving `θ^margin` on every
/// decision.
///
/// Every entry is produced by calling [`confidence`] itself, and queries
/// beyond the cached margin range fall back to [`confidence`], so the
/// table is **bit-for-bit equal** to the uncached path — a property test
/// pins this.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::confidence::{confidence, ConfidenceTable};
/// use smartred_core::params::Reliability;
///
/// let r = Reliability::new(0.7)?;
/// let table = ConfidenceTable::new(r, 16);
/// assert_eq!(table.q(4, 0).to_bits(), confidence(r, 4, 0).to_bits());
/// assert_eq!(table.q(100, 106).to_bits(), confidence(r, 100, 106).to_bits());
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfidenceTable {
    r: Reliability,
    /// `q(r, m, 0)` for signed margins `m ∈ [−cap, cap]`, at index
    /// `m + cap`.
    q: Vec<f64>,
    cap: usize,
}

impl ConfidenceTable {
    /// Builds the table for reliability `r`, caching margins up to
    /// `max_margin` in absolute value.
    pub fn new(r: Reliability, max_margin: usize) -> Self {
        let cap = max_margin;
        let q = (-(cap as i64)..=cap as i64)
            .map(|m| confidence(r, m.max(0) as usize, (-m).max(0) as usize))
            .collect();
        Self { r, q, cap }
    }

    /// The reliability this table was built for.
    pub fn reliability(&self) -> Reliability {
        self.r
    }

    /// The largest cached margin magnitude.
    pub fn max_margin(&self) -> usize {
        self.cap
    }

    /// `q(r, a, b)` — cached when `|a − b| ≤ max_margin`, computed
    /// directly (with identical bits) otherwise.
    pub fn q(&self, a: usize, b: usize) -> f64 {
        let margin = a as i64 - b as i64;
        if margin.unsigned_abs() as usize <= self.cap {
            self.q[(margin + self.cap as i64) as usize]
        } else {
            confidence(self.r, a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn conf(v: f64) -> Confidence {
        Confidence::new(v).unwrap()
    }

    #[test]
    fn single_job_confidence_equals_reliability() {
        // q(r, 1, 0) = r/(r + (1−r)) = r.
        for &v in &[0.55, 0.7, 0.9, 0.99] {
            assert!((confidence(r(v), 1, 0) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn tied_votes_give_half() {
        assert_eq!(confidence(r(0.7), 0, 0), 0.5);
        assert_eq!(confidence(r(0.9), 17, 17), 0.5);
    }

    #[test]
    fn theorem_1_margin_invariance() {
        // q(r, a, b) = q(r, a+j, b+j): 6-0 equals 106-100 (paper example).
        let base = confidence(r(0.7), 6, 0);
        let shifted = confidence(r(0.7), 106, 100);
        assert!((base - shifted).abs() < 1e-12);
    }

    #[test]
    fn minority_margin_is_complementary() {
        // q(r, a, b) + q(r, b, a) = 1.
        let plus = confidence(r(0.7), 9, 4);
        let minus = confidence(r(0.7), 4, 9);
        assert!((plus + minus - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_reliabilities() {
        assert_eq!(confidence(r(1.0), 3, 0), 1.0);
        assert_eq!(confidence(r(1.0), 0, 3), 0.0);
        assert_eq!(confidence(r(0.0), 3, 0), 0.0);
        assert_eq!(confidence(r(0.0), 0, 3), 1.0);
        assert_eq!(confidence(r(0.5), 40, 0), 0.5);
    }

    #[test]
    fn huge_margins_do_not_overflow() {
        assert_eq!(confidence(r(0.7), 5_000, 0), 1.0);
        assert_eq!(confidence(r(0.7), 0, 5_000), 0.0);
    }

    #[test]
    fn paper_margin_for_097_is_four_jobs() {
        // 0.7⁴/(0.7⁴+0.3⁴) ≈ 0.96737; the paper calls this "> 0.97" (rounded)
        // and uses four jobs. We match at the unrounded target.
        assert_eq!(minimum_margin(r(0.7), conf(0.96)).unwrap().get(), 4);
        // At a strict 0.97 the honest answer is five.
        assert_eq!(minimum_margin(r(0.7), conf(0.97)).unwrap().get(), 5);
    }

    #[test]
    fn required_majority_shifts_by_b() {
        let base = required_majority(r(0.7), conf(0.96), 0).unwrap();
        for b in [1usize, 2, 10, 100] {
            assert_eq!(required_majority(r(0.7), conf(0.96), b).unwrap(), base + b);
        }
    }

    #[test]
    fn minimum_margin_rejects_unreliable_pool() {
        assert!(minimum_margin(r(0.5), conf(0.97)).is_err());
        assert!(minimum_margin(r(0.2), conf(0.97)).is_err());
    }

    #[test]
    fn margin_confidence_is_eq6() {
        let d = VoteMargin::new(4).unwrap();
        let expected = 0.7_f64.powi(4) / (0.7_f64.powi(4) + 0.3_f64.powi(4));
        assert!((margin_confidence(r(0.7), d) - expected).abs() < 1e-12);
    }

    #[test]
    fn table_is_bitwise_equal_to_confidence() {
        for &rv in &[0.55, 0.7, 0.9, 0.99, 1.0] {
            let table = ConfidenceTable::new(r(rv), 12);
            for a in 0..30usize {
                for b in 0..30usize {
                    // Covers both the cached range (|a−b| ≤ 12) and the
                    // fallback.
                    assert_eq!(
                        table.q(a, b).to_bits(),
                        confidence(r(rv), a, b).to_bits(),
                        "r = {rv}, a = {a}, b = {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn table_accessors() {
        let table = ConfidenceTable::new(r(0.7), 8);
        assert_eq!(table.reliability().get(), 0.7);
        assert_eq!(table.max_margin(), 8);
    }

    #[test]
    fn confidence_monotone_in_margin() {
        let mut last = 0.0;
        for d in 1..40 {
            let c = confidence(r(0.7), d, 0);
            assert!(c > last);
            last = c;
        }
    }
}
