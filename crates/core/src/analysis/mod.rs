//! Exact analysis of the three redundancy techniques (paper §3, Eqs. 1–6).
//!
//! Every quantity the paper derives is implemented at least twice, by
//! independent methods, and the test suite requires the derivations to
//! agree:
//!
//! * traditional redundancy — [`traditional::cost`] (Eq. 1) and
//!   [`traditional::reliability`] (Eq. 2);
//! * progressive redundancy — [`progressive::cost_series`] (the literal
//!   Eq. 3) versus the exact wave DP [`progressive::profile`], and
//!   [`progressive::reliability`] (Eq. 4);
//! * iterative redundancy — the closed form [`iterative::cost`], the literal
//!   series [`iterative::cost_series`] (Eq. 5), and the wave DP
//!   [`iterative::profile`]; reliability per Eq. 6 in
//!   [`iterative::reliability`];
//! * the Bayesian confidence `q(r, a, b)` and margin selection
//!   ([`confidence`]);
//! * reliability-matched cost improvement, the quantity of Figure 5(c)
//!   ([`mod@improvement`]);
//! * numerical verification of the §3.3 optimality claim over all
//!   implementable stopping policies ([`optimal`]).

pub mod confidence;
pub mod heterogeneous;
pub mod improvement;
pub mod inference;
pub mod iterative;
pub mod math;
pub mod optimal;
pub mod progressive;
pub mod response;
pub mod traditional;
pub mod walk;

pub use confidence::{confidence as q, margin_confidence, minimum_margin, required_majority};
pub use improvement::{improvement, improvement_sweep, Improvement, MarginMatch};
