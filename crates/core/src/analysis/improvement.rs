//! Cost-factor improvement over traditional redundancy (Figure 5(c)).
//!
//! The paper plots, as a function of node reliability `r`, how many times
//! cheaper progressive and iterative redundancy are than traditional
//! redundancy *at (approximately) equal system reliability*. For progressive
//! redundancy the match is exact — the same `k` yields the same reliability
//! (Eq. 4). For iterative redundancy a margin `d` must be chosen whose
//! Eq. (6) reliability approximates the `k`-vote reliability; because both
//! grids are discrete the match is only approximate, which the paper's
//! description acknowledges implicitly (its measured curve wiggles between
//! 1.6 and 2.8). [`MarginMatch`] selects the matching rule.

use crate::analysis::{iterative, progressive, traditional};
use crate::error::ParamError;
use crate::parallel::{self, Threads};
use crate::params::{KVotes, Reliability, VoteMargin};

/// How to choose the iterative margin `d` that "matches" `k`-vote
/// reliability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarginMatch {
    /// Smallest `d` whose failure probability is *at most* traditional
    /// redundancy's (IR at least as reliable as TR).
    AtLeast,
    /// Largest `d` whose failure probability is *at least* traditional
    /// redundancy's (IR at most as reliable; `d = 1` if none).
    AtMost,
    /// The `d` whose failure probability is nearest traditional
    /// redundancy's in log space. This is the default and the protocol used
    /// for the Figure 5(c) reproduction.
    #[default]
    Nearest,
}

/// One point of the Figure 5(c) curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Improvement {
    /// Node reliability of the comparison.
    pub r: Reliability,
    /// Reference vote count for traditional/progressive redundancy.
    pub k: KVotes,
    /// Matched iterative margin.
    pub d: VoteMargin,
    /// Cost factors.
    pub tr_cost: f64,
    /// Progressive cost factor at the same `k`.
    pub pr_cost: f64,
    /// Iterative cost factor at the matched `d`.
    pub ir_cost: f64,
    /// System reliabilities actually achieved.
    pub tr_reliability: f64,
    /// Iterative reliability at the matched `d` (approximates
    /// `tr_reliability`).
    pub ir_reliability: f64,
}

impl Improvement {
    /// `C_TR / C_PR` — the "PR" curve of Figure 5(c).
    pub fn pr_ratio(&self) -> f64 {
        self.tr_cost / self.pr_cost
    }

    /// `C_TR / C_IR` — the "IR" curve of Figure 5(c).
    pub fn ir_ratio(&self) -> f64 {
        self.tr_cost / self.ir_cost
    }
}

/// Chooses the iterative margin matching `k`-vote reliability at pool
/// reliability `r` under the given rule.
///
/// # Errors
///
/// Returns [`ParamError::OutOfRange`] if `r ≤ 0.5` or `r = 1` (failure
/// probabilities degenerate and no meaningful match exists).
pub fn matched_margin(
    k: KVotes,
    r: Reliability,
    rule: MarginMatch,
) -> Result<VoteMargin, ParamError> {
    if r.get() <= 0.5 || r.get() >= 1.0 {
        return Err(ParamError::OutOfRange {
            name: "reliability",
            value: r.get(),
            expected: "(0.5, 1) for reliability matching",
        });
    }
    let target_failure = (1.0 - traditional::reliability(k, r)).max(f64::MIN_POSITIVE);
    let failure = |d: usize| -> f64 {
        (1.0 - iterative::reliability(VoteMargin::new(d).expect("d >= 1"), r))
            .max(f64::MIN_POSITIVE)
    };
    // Failure is strictly decreasing in d; find the first d at or below the
    // target.
    let mut d = 1usize;
    while failure(d) > target_failure {
        d += 1;
        debug_assert!(d < 10_000, "margin match diverged");
    }
    let chosen = match rule {
        MarginMatch::AtLeast => d,
        MarginMatch::AtMost => d.saturating_sub(1).max(1),
        MarginMatch::Nearest => {
            if d == 1 {
                1
            } else {
                let hi = (failure(d) / target_failure).ln().abs();
                let lo = (failure(d - 1) / target_failure).ln().abs();
                if lo <= hi {
                    d - 1
                } else {
                    d
                }
            }
        }
    };
    Ok(VoteMargin::new(chosen).expect("chosen >= 1"))
}

/// Computes one point of the Figure 5(c) curves.
///
/// # Errors
///
/// Propagates [`matched_margin`]'s error for degenerate `r`.
pub fn improvement(
    k: KVotes,
    r: Reliability,
    rule: MarginMatch,
) -> Result<Improvement, ParamError> {
    let d = matched_margin(k, r, rule)?;
    Ok(Improvement {
        r,
        k,
        d,
        tr_cost: traditional::cost(k),
        pr_cost: progressive::cost_series(k, r),
        ir_cost: iterative::cost(d, r),
        tr_reliability: traditional::reliability(k, r),
        ir_reliability: iterative::reliability(d, r),
    })
}

/// Sweeps `r` over an inclusive range with the given number of points,
/// producing the full Figure 5(c) data set.
///
/// # Errors
///
/// Returns an error if the range leaves `(0.5, 1)` or `points < 2`.
pub fn improvement_sweep(
    k: KVotes,
    r_lo: f64,
    r_hi: f64,
    points: usize,
    rule: MarginMatch,
) -> Result<Vec<Improvement>, ParamError> {
    if points < 2 {
        return Err(ParamError::OutOfRange {
            name: "points",
            value: points as f64,
            expected: "at least 2",
        });
    }
    // Each grid point depends only on its index, so the sweep fans out
    // across worker threads and reassembles in index order — bit-identical
    // to the sequential loop for any thread count.
    parallel::map_indexed(points, Threads::Auto, |i| {
        let r = r_lo + (r_hi - r_lo) * (i as f64) / ((points - 1) as f64);
        improvement(k, Reliability::new(r)?, rule)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k19() -> KVotes {
        KVotes::new(19).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn matched_margin_at_r07_is_four() {
        // The paper's running example: k = 19, r = 0.7 ↔ d = 4.
        let d = matched_margin(k19(), r(0.7), MarginMatch::Nearest).unwrap();
        assert_eq!(d.get(), 4);
    }

    #[test]
    fn match_rules_are_ordered() {
        for &rr in &[0.6, 0.7, 0.86, 0.95] {
            let lo = matched_margin(k19(), r(rr), MarginMatch::AtMost).unwrap();
            let hi = matched_margin(k19(), r(rr), MarginMatch::AtLeast).unwrap();
            let near = matched_margin(k19(), r(rr), MarginMatch::Nearest).unwrap();
            assert!(lo <= hi);
            assert!(near == lo || near == hi);
            assert!(hi.get() - lo.get() <= 1);
        }
    }

    #[test]
    fn rejects_degenerate_reliability() {
        assert!(matched_margin(k19(), r(0.5), MarginMatch::Nearest).is_err());
        assert!(matched_margin(k19(), r(1.0), MarginMatch::Nearest).is_err());
        assert!(matched_margin(k19(), r(0.3), MarginMatch::Nearest).is_err());
    }

    #[test]
    fn paper_improvement_at_r07_is_about_2x() {
        let imp = improvement(k19(), r(0.7), MarginMatch::Nearest).unwrap();
        assert!((imp.ir_ratio() - 2.0).abs() < 0.15, "{}", imp.ir_ratio());
        assert!(imp.pr_ratio() > 1.2 && imp.pr_ratio() < 1.5);
    }

    #[test]
    fn pr_ratio_approaches_two_for_reliable_pools() {
        // Paper §4.2: "for r approaching 1, progressive redundancy uses 2.0
        // times fewer resources than traditional redundancy."
        let imp = improvement(k19(), r(0.999), MarginMatch::Nearest).unwrap();
        assert!((imp.pr_ratio() - 1.9).abs() < 0.1, "{}", imp.pr_ratio());
    }

    #[test]
    fn ir_always_beats_pr_which_beats_tr() {
        for &rr in &[0.55, 0.6, 0.7, 0.8, 0.86, 0.9, 0.95, 0.99] {
            let imp = improvement(k19(), r(rr), MarginMatch::Nearest).unwrap();
            assert!(
                imp.ir_cost < imp.pr_cost && imp.pr_cost < imp.tr_cost,
                "r={rr}: {} / {} / {}",
                imp.ir_cost,
                imp.pr_cost,
                imp.tr_cost
            );
        }
    }

    #[test]
    fn ir_improvement_has_interior_peak() {
        // Paper §4.2: efficiency peaks around r ≈ 0.86 then declines slightly.
        let sweep = improvement_sweep(k19(), 0.6, 0.99, 40, MarginMatch::Nearest).unwrap();
        let ratios: Vec<f64> = sweep.iter().map(|i| i.ir_ratio()).collect();
        let peak = ratios.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            peak > ratios[0],
            "peak {peak} not above left end {}",
            ratios[0]
        );
        assert!(
            peak > *ratios.last().unwrap(),
            "peak {peak} not above right end"
        );
        assert!(peak > 2.3 && peak < 3.2, "peak {peak} outside paper band");
    }

    #[test]
    fn sweep_validates_inputs() {
        assert!(improvement_sweep(k19(), 0.6, 0.9, 1, MarginMatch::Nearest).is_err());
        assert!(improvement_sweep(k19(), 0.4, 0.9, 5, MarginMatch::Nearest).is_err());
    }

    #[test]
    fn ir_reliability_brackets_tr() {
        let at_least = improvement(k19(), r(0.8), MarginMatch::AtLeast).unwrap();
        assert!(at_least.ir_reliability >= at_least.tr_reliability);
        let at_most = improvement(k19(), r(0.8), MarginMatch::AtMost).unwrap();
        assert!(at_most.ir_reliability <= at_most.tr_reliability);
    }
}
