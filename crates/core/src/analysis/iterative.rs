//! Analytic cost and reliability of iterative redundancy (Eqs. 5–6).
//!
//! Three independent derivations of the expected cost are provided and
//! cross-checked in tests:
//!
//! * [`cost`] — the gambler's-ruin closed form (exact);
//! * [`cost_series`] — the literal series of Eq. (5) summed by first-passage
//!   dynamic programming;
//! * [`profile`] — a wave-level dynamic program that also yields wave counts
//!   and response times.

use crate::analysis::response::expected_max_uniform;
use crate::analysis::walk;
use crate::params::{Reliability, VoteMargin};

/// System reliability of iterative redundancy with margin `d` — Eq. (6):
/// `R_IR(r) = r^d / (r^d + (1−r)^d)`.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::iterative;
/// use smartred_core::params::{Reliability, VoteMargin};
///
/// let rel = iterative::reliability(VoteMargin::new(4)?, Reliability::new(0.7)?);
/// assert!((rel - 0.9674).abs() < 1e-4);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn reliability(d: VoteMargin, r: Reliability) -> f64 {
    walk::absorption_probability(d.get(), r.get())
}

/// Expected cost factor of iterative redundancy — the closed form of
/// Eq. (5): `d·(2·R_IR − 1)/(2r − 1)` for `r ≠ ½` and `d²` at `r = ½`.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::iterative;
/// use smartred_core::params::{Reliability, VoteMargin};
///
/// // Paper §3.3: r = 0.7, d = 4 → "9.4 times as many resources".
/// let c = iterative::cost(VoteMargin::new(4)?, Reliability::new(0.7)?);
/// assert!((c - 9.4).abs() < 0.1);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub fn cost(d: VoteMargin, r: Reliability) -> f64 {
    walk::expected_steps(d.get(), r.get())
}

/// Expected cost factor via the literal series of Eq. (5), truncated at
/// residual probability `eps` with a rigorous tail bound added back.
pub fn cost_series(d: VoteMargin, r: Reliability, eps: f64) -> f64 {
    walk::expected_steps_series(d.get(), r.get(), eps)
}

/// Wave-level statistics of iterative redundancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveProfile {
    /// Expected total jobs per task (cross-checks the closed form).
    pub expected_jobs: f64,
    /// Expected number of waves. Unlike progressive redundancy this is
    /// unbounded in the worst case (paper §5.2), so the DP truncates.
    pub expected_waves: f64,
    /// Expected response time (sum over waves of the expected maximum of
    /// that wave's uniform job durations).
    pub expected_response: f64,
    /// Probability the accepted result is correct (must match Eq. 6).
    pub reliability: f64,
    /// Probability mass not yet absorbed when the DP stopped (bounded by the
    /// `eps` passed to [`profile`]).
    pub truncated_mass: f64,
}

/// Computes the wave-level [`WaveProfile`] of iterative redundancy.
///
/// The state space is the signed vote margin `s ∈ (−d, d)` (positive toward
/// the correct value); a wave deploys `d − |s|` jobs and moves `s` by
/// `2·Binomial(m, r) − m`. Waves can only hit `±d` exactly (never past),
/// which is why per-job and per-wave accounting agree. Iteration stops when
/// unabsorbed mass falls below `eps`.
pub fn profile(d: VoteMargin, r: Reliability, duration: (f64, f64), eps: f64) -> WaveProfile {
    let d = d.get();
    let r = r.get();
    let width = 2 * d - 1; // interior margins, index i ↦ s = i − (d − 1)
    let mut mass = vec![0.0_f64; width];
    mass[d - 1] = 1.0;
    let mut out = WaveProfile {
        expected_jobs: 0.0,
        expected_waves: 0.0,
        expected_response: 0.0,
        reliability: 0.0,
        truncated_mass: 0.0,
    };
    let mut remaining = 1.0_f64;
    let mut next = vec![0.0_f64; width];
    // Generous wave budget; mass decays geometrically per wave.
    let max_waves = 100_000;

    for _ in 0..max_waves {
        if remaining < eps {
            break;
        }
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut absorbed_correct = 0.0;
        let mut absorbed_any = 0.0;
        for (i, &p) in mass.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let s = i as i64 - (d as i64 - 1);
            let m = d - s.unsigned_abs() as usize;
            out.expected_jobs += p * m as f64;
            out.expected_waves += p;
            out.expected_response += p * expected_max_uniform(m, duration.0, duration.1);
            for j in 0..=m {
                let pj = crate::analysis::math::binomial_pmf(m, j, r);
                if pj == 0.0 {
                    continue;
                }
                let ns = s + 2 * j as i64 - m as i64;
                debug_assert!(ns.abs() <= d as i64);
                if ns == d as i64 {
                    absorbed_correct += p * pj;
                    absorbed_any += p * pj;
                } else if ns == -(d as i64) {
                    absorbed_any += p * pj;
                } else {
                    next[(ns + d as i64 - 1) as usize] += p * pj;
                }
            }
        }
        out.reliability += absorbed_correct;
        remaining -= absorbed_any;
        std::mem::swap(&mut mass, &mut next);
    }
    out.truncated_mass = remaining.max(0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::response::DEFAULT_JOB_DURATION;

    fn d(v: usize) -> VoteMargin {
        VoteMargin::new(v).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    const EPS: f64 = 1e-12;

    #[test]
    fn closed_form_series_and_dp_agree() {
        for &dd in &[1usize, 2, 4, 7] {
            for &rr in &[0.5, 0.55, 0.7, 0.86, 0.99] {
                let closed = cost(d(dd), r(rr));
                let series = cost_series(d(dd), r(rr), EPS);
                let dp = profile(d(dd), r(rr), DEFAULT_JOB_DURATION, EPS).expected_jobs;
                assert!(
                    (closed - series).abs() < 1e-6,
                    "d={dd} r={rr}: closed {closed} vs series {series}"
                );
                assert!(
                    (closed - dp).abs() < 1e-6,
                    "d={dd} r={rr}: closed {closed} vs dp {dp}"
                );
            }
        }
    }

    #[test]
    fn dp_reliability_matches_eq6() {
        for &dd in &[1usize, 3, 6] {
            for &rr in &[0.55, 0.7, 0.9] {
                let dp = profile(d(dd), r(rr), DEFAULT_JOB_DURATION, EPS).reliability;
                let eq6 = reliability(d(dd), r(rr));
                assert!(
                    (dp - eq6).abs() < 1e-9,
                    "d={dd} r={rr}: dp {dp} vs eq6 {eq6}"
                );
            }
        }
    }

    #[test]
    fn paper_example_cost_9_4() {
        assert!((cost(d(4), r(0.7)) - 9.35).abs() < 0.01);
    }

    #[test]
    fn d1_costs_one_job() {
        assert!((cost(d(1), r(0.7)) - 1.0).abs() < 1e-12);
        let p = profile(d(1), r(0.7), DEFAULT_JOB_DURATION, EPS);
        assert!((p.expected_waves - 1.0).abs() < 1e-9);
        assert!((p.expected_jobs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_pool_costs_d_in_one_wave() {
        let p = profile(d(6), r(1.0), DEFAULT_JOB_DURATION, EPS);
        assert!((p.expected_jobs - 6.0).abs() < 1e-9);
        assert!((p.expected_waves - 1.0).abs() < 1e-9);
        assert!((p.reliability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coin_flip_pool_costs_d_squared() {
        let p = profile(d(3), r(0.5), DEFAULT_JOB_DURATION, 1e-13);
        assert!((p.expected_jobs - 9.0).abs() < 1e-6, "{}", p.expected_jobs);
        assert!((p.reliability - 0.5).abs() < 1e-6);
    }

    #[test]
    fn truncated_mass_is_small() {
        let p = profile(d(7), r(0.55), DEFAULT_JOB_DURATION, EPS);
        assert!(p.truncated_mass <= EPS);
    }

    #[test]
    fn response_time_grows_with_d() {
        let mut last = 0.0;
        for dd in 1..8 {
            let p = profile(d(dd), r(0.7), DEFAULT_JOB_DURATION, EPS);
            assert!(p.expected_response > last);
            last = p.expected_response;
        }
    }

    #[test]
    fn ir_beats_pr_and_tr_at_equal_reliability_r07() {
        // The headline comparison at the paper's running example: reliability
        // ≈ 0.9674 for all three techniques, costs 19 / ~14.2 / ~9.35.
        use crate::analysis::{progressive, traditional};
        use crate::params::KVotes;
        let k = KVotes::new(19).unwrap();
        let rel_tr = traditional::reliability(k, r(0.7));
        let rel_ir = reliability(d(4), r(0.7));
        assert!((rel_tr - rel_ir).abs() < 1e-3, "{rel_tr} vs {rel_ir}");
        let c_tr = traditional::cost(k);
        let c_pr = progressive::cost_series(k, r(0.7));
        let c_ir = cost(d(4), r(0.7));
        assert!(c_ir < c_pr && c_pr < c_tr);
        assert!((c_tr / c_ir - 2.0).abs() < 0.1); // "2.0 times less"
        assert!((c_pr / c_ir - 1.5).abs() < 0.1); // "1.5 times less"
    }
}
