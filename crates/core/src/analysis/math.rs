//! Numerically stable combinatorics used throughout the analysis.
//!
//! Everything works in log space so the formulas of the paper remain exact
//! for large `k` (e.g. `C(199, 100)` overflows `f64` as a plain product but
//! is unremarkable as a log).
//!
//! `ln n!` is memoized in a process-wide table ([`ln_factorial`]): the
//! per-task hot paths — the wave DP of `analysis::iterative::profile`, the
//! Eq. (3) series, the first-passage walks — evaluate `binomial_pmf`
//! thousands of times per parameter point, and each call needs three
//! factorials. The table is filled with exactly the values the
//! unmemoized path ([`ln_factorial_direct`]) produces, so memoization is
//! bit-for-bit invisible; a property test pins that equivalence.

use std::sync::OnceLock;

/// Factorials up to (excluding) this are served from the process-wide
/// table; larger arguments fall back to the direct Lanczos evaluation.
/// 4096 entries cover every `k`, `d`, and wave width the analysis ever
/// sweeps, at 32 KiB.
const LN_FACTORIAL_TABLE_SIZE: usize = 4096;

static LN_FACTORIALS: OnceLock<Vec<f64>> = OnceLock::new();

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Accurate to better than `1e-13` over the range used here; standard g=7,
/// n=9 coefficients.
///
/// # Panics
///
/// Panics if `x <= 0` (the analysis never evaluates the gamma function at
/// non-positive points; doing so is a logic error).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7, n = 9 (Boost/Numerical Recipes lineage).
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64) + 1.0);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` via the gamma function, computed directly (no memoization).
///
/// This is the reference implementation; [`ln_factorial`] serves the same
/// values from a table and is what the hot paths call. Kept public so the
/// property tests can pin the two bit-for-bit equal.
pub fn ln_factorial_direct(n: usize) -> f64 {
    if n < 2 {
        0.0
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln(n!)`, memoized.
///
/// Identical (to the last bit) to [`ln_factorial_direct`]: the table is
/// populated by calling it. The `OnceLock` initialization is thread-safe,
/// so the parallel sweep workers share one table.
pub fn ln_factorial(n: usize) -> f64 {
    if n < LN_FACTORIAL_TABLE_SIZE {
        let table = LN_FACTORIALS.get_or_init(|| {
            (0..LN_FACTORIAL_TABLE_SIZE)
                .map(ln_factorial_direct)
                .collect()
        });
        table[n]
    } else {
        ln_factorial_direct(n)
    }
}

/// `ln C(n, k)`, the log of the binomial coefficient (memoized factorials).
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln C(n, k)` computed without the factorial table — the reference the
/// memoized [`ln_binomial`] is property-tested against.
pub fn ln_binomial_direct(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial_direct(n) - ln_factorial_direct(k) - ln_factorial_direct(n - k)
}

/// Probability that a `Binomial(n, p)` variable equals `k`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln()).exp()
}

/// Probability that a `Binomial(n, p)` variable is at least `k`.
pub fn binomial_sf(n: usize, k: usize, p: f64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum()
}

/// Probability that a `Binomial(n, p)` variable is at most `k`.
pub fn binomial_cdf(n: usize, k: usize, p: f64) -> f64 {
    (0..=k.min(n)).map(|i| binomial_pmf(n, i, p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12); // Γ(5) = 4! = 24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(11) = 10! = 3628800
        close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_small_values() {
        close(ln_factorial(0), 0.0, 1e-15);
        close(ln_factorial(1), 0.0, 1e-15);
        close(ln_factorial(5), 120.0_f64.ln(), 1e-12);
        close(ln_factorial(20), 2.432_902_008_176_64e18_f64.ln(), 1e-9);
    }

    #[test]
    fn memoized_factorial_is_bitwise_equal_to_direct() {
        // Spot-check the whole table range plus the fallback boundary.
        for n in (0..LN_FACTORIAL_TABLE_SIZE)
            .step_by(37)
            .chain(LN_FACTORIAL_TABLE_SIZE - 2..LN_FACTORIAL_TABLE_SIZE + 3)
        {
            assert_eq!(
                ln_factorial(n).to_bits(),
                ln_factorial_direct(n).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn memoized_binomial_is_bitwise_equal_to_direct() {
        for &(n, k) in &[
            (0usize, 0usize),
            (19, 10),
            (199, 100),
            (4095, 2000),
            (4100, 2050), // past the table: both go direct
            (3, 7),       // zero coefficient
        ] {
            assert_eq!(
                ln_binomial(n, k).to_bits(),
                ln_binomial_direct(n, k).to_bits(),
                "n = {n}, k = {k}"
            );
        }
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        close(ln_binomial(19, 10), 92_378.0_f64.ln(), 1e-9);
        close(ln_binomial(5, 0), 0.0, 1e-15);
        close(ln_binomial(5, 5), 0.0, 1e-15);
        assert_eq!(ln_binomial(3, 7), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10usize, 0.3), (19, 0.7), (51, 0.86), (1, 0.5)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            close(total, 1.0, 1e-12);
        }
    }

    #[test]
    fn binomial_pmf_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    fn sf_and_cdf_are_complements() {
        for k in 0..=10usize {
            let sf = binomial_sf(10, k, 0.42);
            let cdf = if k == 0 {
                0.0
            } else {
                binomial_cdf(10, k - 1, 0.42)
            };
            close(sf + cdf, 1.0, 1e-12);
        }
    }

    #[test]
    fn paper_example_k19_reliability_term() {
        // 1 − P(Bin(19, 0.3) ≥ 10) ≈ 0.9674, the paper's "0.97".
        let reliability = 1.0 - binomial_sf(19, 10, 0.3);
        close(reliability, 0.9674, 2e-4);
    }
}
