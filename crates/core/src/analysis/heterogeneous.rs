//! Heterogeneous per-job reliabilities (§5.3).
//!
//! The paper's base analysis assumes every job has the same success
//! probability `r` — justified when jobs are assigned to random nodes. §5.3
//! relaxes this: "the only necessary change to Equations (1) through (6) is
//! the replacement of `r` with appropriate reliabilities of the relevant
//! nodes", and exhibits the generalized Eq. (3) with per-job `r_c`.
//!
//! The mathematical core is the Poisson-binomial distribution (the sum of
//! independent non-identical Bernoullis), computed exactly by dynamic
//! programming. Two sanity theorems are enforced by tests:
//!
//! * constant sequences reduce to the homogeneous formulas exactly;
//! * with jobs drawn i.i.d. from any reliability *mixture*, the system
//!   behaves exactly as a homogeneous pool at the mixture mean — which is
//!   why random assignment makes assumption 1 harmless.

use crate::error::ParamError;
use crate::params::{KVotes, Reliability};

/// Exact distribution of the number of successes among independent
/// Bernoulli trials with probabilities `probs` (the Poisson-binomial
/// distribution). Returns a vector `pmf` with `pmf[k] = P(k successes)`.
///
/// # Examples
///
/// ```
/// use smartred_core::analysis::heterogeneous::poisson_binomial_pmf;
///
/// let pmf = poisson_binomial_pmf(&[0.5, 0.5]);
/// assert!((pmf[0] - 0.25).abs() < 1e-12);
/// assert!((pmf[1] - 0.5).abs() < 1e-12);
/// assert!((pmf[2] - 0.25).abs() < 1e-12);
/// ```
pub fn poisson_binomial_pmf(probs: &[f64]) -> Vec<f64> {
    debug_assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    let mut pmf = vec![0.0; probs.len() + 1];
    pmf[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        // In-place update from high to low so each trial is counted once.
        for k in (0..=i).rev() {
            pmf[k + 1] += pmf[k] * p;
            pmf[k] *= 1.0 - p;
        }
    }
    pmf
}

/// System reliability of traditional `k`-vote redundancy when job `c` has
/// reliability `reliabilities[c]` — the §5.3 generalization of Eq. (2):
/// the probability that at most `(k−1)/2` of the `k` jobs fail.
///
/// # Errors
///
/// Returns [`ParamError::OutOfRange`] if the sequence length differs from
/// `k` or any entry is outside `[0, 1]`.
pub fn traditional_reliability(k: KVotes, reliabilities: &[f64]) -> Result<f64, ParamError> {
    validate_sequence(reliabilities, Some(k.get()))?;
    let pmf = poisson_binomial_pmf(reliabilities);
    let consensus = k.consensus();
    Ok(pmf.iter().skip(consensus).sum())
}

/// Expected cost of progressive redundancy when the `c`-th job deployed has
/// reliability `reliabilities[c]` — the §5.3 generalization of Eq. (3):
///
/// ```text
/// C_PR = (k+1)/2 + Σ_{i=(k+3)/2}^{k} P(no consensus among first i−1 jobs)
/// ```
///
/// with the inner probability computed from the Poisson-binomial
/// distribution of the first `i−1` per-job reliabilities.
///
/// # Errors
///
/// Returns [`ParamError::OutOfRange`] if fewer than `k` reliabilities are
/// supplied or any entry is outside `[0, 1]`.
pub fn progressive_cost(k: KVotes, reliabilities: &[f64]) -> Result<f64, ParamError> {
    validate_sequence(reliabilities, None)?;
    if reliabilities.len() < k.get() {
        return Err(ParamError::OutOfRange {
            name: "reliabilities.len",
            value: reliabilities.len() as f64,
            expected: "at least k entries",
        });
    }
    let consensus = k.consensus();
    let max_minority = (k.get() - 1) / 2;
    let mut cost = consensus as f64;
    for i in (consensus + 1)..=k.get() {
        // Failures among the first i−1 jobs: job c fails with 1 − r_c.
        let failure_probs: Vec<f64> = reliabilities[..i - 1].iter().map(|r| 1.0 - r).collect();
        let pmf = poisson_binomial_pmf(&failure_probs);
        let p_no_consensus: f64 = (i - consensus..=max_minority.min(i - 1))
            .map(|j| pmf[j])
            .sum();
        cost += p_no_consensus;
    }
    Ok(cost)
}

fn validate_sequence(reliabilities: &[f64], expect_len: Option<usize>) -> Result<(), ParamError> {
    if let Some(len) = expect_len {
        if reliabilities.len() != len {
            return Err(ParamError::OutOfRange {
                name: "reliabilities.len",
                value: reliabilities.len() as f64,
                expected: "exactly k entries",
            });
        }
    }
    for &r in reliabilities {
        if !(0.0..=1.0).contains(&r) || !r.is_finite() {
            return Err(ParamError::OutOfRange {
                name: "reliability entry",
                value: r,
                expected: "[0, 1]",
            });
        }
    }
    Ok(())
}

/// Mean of a reliability sequence, as a validated [`Reliability`].
///
/// # Errors
///
/// Returns [`ParamError`] on an empty sequence or out-of-range entries.
pub fn mean_reliability(reliabilities: &[f64]) -> Result<Reliability, ParamError> {
    if reliabilities.is_empty() {
        return Err(ParamError::OutOfRange {
            name: "reliabilities.len",
            value: 0.0,
            expected: "at least one entry",
        });
    }
    validate_sequence(reliabilities, None)?;
    Reliability::new(reliabilities.iter().sum::<f64>() / reliabilities.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{progressive, traditional};

    fn k(v: usize) -> KVotes {
        KVotes::new(v).unwrap()
    }

    #[test]
    fn poisson_binomial_reduces_to_binomial() {
        use crate::analysis::math::binomial_pmf;
        let probs = vec![0.7; 9];
        let pmf = poisson_binomial_pmf(&probs);
        for (i, &p) in pmf.iter().enumerate() {
            let expected = binomial_pmf(9, i, 0.7);
            assert!((p - expected).abs() < 1e-12, "k={i}: {p} vs {expected}");
        }
    }

    #[test]
    fn poisson_binomial_sums_to_one() {
        let probs = [0.1, 0.9, 0.33, 0.65, 0.5];
        let total: f64 = poisson_binomial_pmf(&probs).iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_binomial_degenerate_cases() {
        assert_eq!(poisson_binomial_pmf(&[]), vec![1.0]);
        let pmf = poisson_binomial_pmf(&[1.0, 0.0]);
        assert!((pmf[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sequence_matches_homogeneous_eq2() {
        let seq = vec![0.7; 19];
        let het = traditional_reliability(k(19), &seq).unwrap();
        let hom = traditional::reliability(k(19), Reliability::new(0.7).unwrap());
        assert!((het - hom).abs() < 1e-12);
    }

    #[test]
    fn constant_sequence_matches_homogeneous_eq3() {
        let seq = vec![0.7; 19];
        let het = progressive_cost(k(19), &seq).unwrap();
        let hom = progressive::cost_series(k(19), Reliability::new(0.7).unwrap());
        assert!((het - hom).abs() < 1e-10);
    }

    #[test]
    fn reliable_early_jobs_cut_progressive_cost() {
        // Front-loading reliable nodes reaches consensus sooner.
        let mut good_first = vec![0.95; 10];
        good_first.extend(vec![0.45; 9]);
        let mut bad_first = vec![0.45; 9];
        bad_first.extend(vec![0.95; 10]);
        let cheap = progressive_cost(k(19), &good_first).unwrap();
        let dear = progressive_cost(k(19), &bad_first).unwrap();
        assert!(
            cheap < dear - 1.0,
            "good-first {cheap} should beat bad-first {dear}"
        );
    }

    #[test]
    fn heterogeneous_mixture_equals_mean_pool() {
        // Jobs assigned to random nodes from a two-class pool are i.i.d.
        // Bernoulli at the class mixture mean, so Eq. (2) with the mean is
        // exact — §5.3's justification of assumption 1. Verified here by
        // integrating over the 2^k class patterns implicitly: each job's
        // marginal is 0.5·0.9 + 0.5·0.5 = 0.7.
        let mean = 0.5 * 0.9 + 0.5 * 0.5;
        let hom = traditional::reliability(k(9), Reliability::new(mean).unwrap());
        // Monte-Carlo over random class assignments of the 9 jobs.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut acc = 0.0;
        let trials = 20_000;
        for _ in 0..trials {
            let seq: Vec<f64> = (0..9)
                .map(|_| if rng.gen_bool(0.5) { 0.9 } else { 0.5 })
                .collect();
            acc += traditional_reliability(k(9), &seq).unwrap();
        }
        let mixed = acc / trials as f64;
        assert!(
            (mixed - hom).abs() < 0.002,
            "mixture {mixed} vs homogeneous {hom}"
        );
    }

    #[test]
    fn validation_rejects_bad_sequences() {
        assert!(traditional_reliability(k(3), &[0.7, 0.7]).is_err()); // wrong len
        assert!(traditional_reliability(k(3), &[0.7, 0.7, 1.2]).is_err()); // range
        assert!(progressive_cost(k(3), &[0.7]).is_err()); // too short
        assert!(mean_reliability(&[]).is_err());
    }

    #[test]
    fn mean_reliability_averages() {
        let m = mean_reliability(&[0.6, 0.8]).unwrap();
        assert!((m.get() - 0.7).abs() < 1e-12);
    }
}
