//! Per-node reputation tracking for the related-work baselines (§5.1, §6).
//!
//! The paper argues that reliability-estimating schemes (spot-checking,
//! blacklisting, credibility) carry costs and vulnerabilities that iterative
//! redundancy avoids. To make that comparison concrete, this module
//! implements the bookkeeping those schemes need: Bayesian spot-check
//! credibility in the style of Sarmenta's sabotage-tolerance work, plus
//! agreement statistics and blacklisting.

use std::collections::HashMap;

use crate::node::NodeId;

/// Parameters of the credibility model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationConfig {
    /// Assumed prior fraction of faulty nodes in the pool (`f` in
    /// Sarmenta's formulas).
    pub assumed_faulty_fraction: f64,
    /// Assumed probability that a faulty node fails any given spot-check
    /// (its sabotage rate `s`). Malicious nodes that sabotage rarely are
    /// precisely the ones spot-checking struggles with.
    pub assumed_sabotage_rate: f64,
    /// Nodes caught failing this many spot-checks are blacklisted.
    pub blacklist_after_failures: u32,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        Self {
            assumed_faulty_fraction: 0.3,
            assumed_sabotage_rate: 0.3,
            blacklist_after_failures: 1,
        }
    }
}

/// Recorded history of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeRecord {
    /// Spot-checks this node passed.
    pub spot_checks_passed: u32,
    /// Spot-checks this node failed.
    pub spot_checks_failed: u32,
    /// Validated results that agreed with the accepted value.
    pub agreements: u32,
    /// Validated results that disagreed with the accepted value.
    pub disagreements: u32,
    /// Consecutive agreements since the last disagreement (the statistic
    /// BOINC's adaptive replication trusts).
    pub consecutive_agreements: u32,
}

/// Reputation store: spot-check history, credibility, and blacklist for a
/// node pool.
///
/// # Examples
///
/// ```
/// use smartred_core::node::NodeId;
/// use smartred_core::reputation::{ReputationConfig, ReputationStore};
///
/// let mut store = ReputationStore::new(ReputationConfig::default());
/// let node = NodeId::new(1);
/// let before = store.credibility(node);
/// store.record_spot_check(node, true);
/// assert!(store.credibility(node) > before);
/// ```
#[derive(Debug, Clone)]
pub struct ReputationStore {
    config: ReputationConfig,
    records: HashMap<NodeId, NodeRecord>,
    blacklist: HashMap<NodeId, ()>,
}

impl ReputationStore {
    /// Creates an empty store.
    pub fn new(config: ReputationConfig) -> Self {
        Self {
            config,
            records: HashMap::new(),
            blacklist: HashMap::new(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> ReputationConfig {
        self.config
    }

    /// Returns the record for `node` (zeroed if never seen).
    pub fn record(&self, node: NodeId) -> NodeRecord {
        self.records.get(&node).copied().unwrap_or_default()
    }

    /// Number of nodes with any recorded history.
    pub fn tracked_nodes(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the node has been blacklisted.
    pub fn is_blacklisted(&self, node: NodeId) -> bool {
        self.blacklist.contains_key(&node)
    }

    /// Estimated probability that `node` returns correct results —
    /// Sarmenta-style Bayesian credibility from spot-check history.
    ///
    /// With prior faulty fraction `f` and sabotage rate `s`, a node that
    /// passed `p` spot-checks is faulty with posterior probability
    /// `f·(1−s)^p / (f·(1−s)^p + (1−f))`; its credibility is the complement.
    /// A brand-new node has credibility `1 − f`. Blacklisted nodes have
    /// credibility 0.
    pub fn credibility(&self, node: NodeId) -> f64 {
        if self.is_blacklisted(node) {
            return 0.0;
        }
        let f = self.config.assumed_faulty_fraction;
        let s = self.config.assumed_sabotage_rate;
        let record = self.record(node);
        let evade = (1.0 - s).powi(record.spot_checks_passed as i32);
        let posterior_faulty = f * evade / (f * evade + (1.0 - f));
        1.0 - posterior_faulty
    }

    /// Records the outcome of a spot-check (a job whose answer the server
    /// already knew). Failing `blacklist_after_failures` checks blacklists
    /// the node.
    pub fn record_spot_check(&mut self, node: NodeId, passed: bool) {
        let record = self.records.entry(node).or_default();
        if passed {
            record.spot_checks_passed += 1;
        } else {
            record.spot_checks_failed += 1;
            if record.spot_checks_failed >= self.config.blacklist_after_failures {
                self.blacklist.insert(node, ());
            }
        }
    }

    /// Records whether a node's validated result agreed with the accepted
    /// value.
    pub fn record_validation(&mut self, node: NodeId, agreed: bool) {
        let record = self.records.entry(node).or_default();
        if agreed {
            record.agreements += 1;
            record.consecutive_agreements += 1;
        } else {
            record.disagreements += 1;
            record.consecutive_agreements = 0;
        }
    }

    /// Forgets a node entirely — models the identity-churn attack of §3.3
    /// ("malicious nodes that have developed a bad reputation can change
    /// their identity").
    pub fn forget(&mut self, node: NodeId) {
        self.records.remove(&node);
        self.blacklist.remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ReputationStore {
        ReputationStore::new(ReputationConfig::default())
    }

    #[test]
    fn new_node_credibility_is_prior() {
        let s = store();
        assert!((s.credibility(NodeId::new(9)) - 0.7).abs() < 1e-12);
        assert_eq!(s.tracked_nodes(), 0);
    }

    #[test]
    fn passing_spot_checks_raises_credibility_monotonically() {
        let mut s = store();
        let node = NodeId::new(1);
        let mut last = s.credibility(node);
        for _ in 0..10 {
            s.record_spot_check(node, true);
            let c = s.credibility(node);
            assert!(c > last);
            last = c;
        }
        assert!(last > 0.95);
    }

    #[test]
    fn failed_spot_check_blacklists_at_threshold() {
        let mut s = store();
        let node = NodeId::new(2);
        s.record_spot_check(node, false);
        assert!(s.is_blacklisted(node));
        assert_eq!(s.credibility(node), 0.0);
    }

    #[test]
    fn higher_blacklist_threshold_tolerates_failures() {
        let mut s = ReputationStore::new(ReputationConfig {
            blacklist_after_failures: 3,
            ..ReputationConfig::default()
        });
        let node = NodeId::new(3);
        s.record_spot_check(node, false);
        s.record_spot_check(node, false);
        assert!(!s.is_blacklisted(node));
        s.record_spot_check(node, false);
        assert!(s.is_blacklisted(node));
    }

    #[test]
    fn validation_tracks_consecutive_agreements() {
        let mut s = store();
        let node = NodeId::new(4);
        s.record_validation(node, true);
        s.record_validation(node, true);
        assert_eq!(s.record(node).consecutive_agreements, 2);
        s.record_validation(node, false);
        assert_eq!(s.record(node).consecutive_agreements, 0);
        assert_eq!(s.record(node).agreements, 2);
        assert_eq!(s.record(node).disagreements, 1);
    }

    #[test]
    fn forget_models_identity_churn() {
        let mut s = store();
        let node = NodeId::new(5);
        s.record_spot_check(node, false);
        assert!(s.is_blacklisted(node));
        s.forget(node);
        // The "new" identity starts with the prior credibility again.
        assert!(!s.is_blacklisted(node));
        assert!((s.credibility(node) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn low_sabotage_rate_slows_credibility_growth() {
        // A stealthy saboteur (low sabotage rate) is hard to distinguish:
        // passing checks should move the posterior less.
        let mut stealthy = ReputationStore::new(ReputationConfig {
            assumed_sabotage_rate: 0.05,
            ..ReputationConfig::default()
        });
        let mut blatant = ReputationStore::new(ReputationConfig {
            assumed_sabotage_rate: 0.9,
            ..ReputationConfig::default()
        });
        let node = NodeId::new(6);
        for _ in 0..5 {
            stealthy.record_spot_check(node, true);
            blatant.record_spot_check(node, true);
        }
        assert!(stealthy.credibility(node) < blatant.credibility(node));
    }
}
