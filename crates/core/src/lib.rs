//! # smartred-core — smart redundancy for distributed computation
//!
//! A clean-room implementation of the redundancy techniques from
//! *"Smart Redundancy for Distributed Computation"* (Brun, Edwards, Bang,
//! Medvidovic — ICDCS 2011): **traditional** `k`-modular redundancy,
//! **progressive** redundancy, and the paper's contribution, **iterative**
//! redundancy, together with the exact analysis of their costs and
//! reliabilities (Eqs. 1–6, Theorems 1–2).
//!
//! ## The model in one paragraph
//!
//! A distributed computation architecture (DCA) splits a computation into
//! independent *tasks*; each task is executed as one or more *jobs* on
//! nodes drawn uniformly at random from a pool whose members may fail — in
//! the worst case Byzantine-maliciously and in collusion (§2.2). A
//! redundancy technique decides how many jobs to run per task and when to
//! accept a result. Its two figures of merit are the achieved **system
//! reliability** `R(r)` and the **cost factor** `C(r)` (expected jobs per
//! task), both as functions of the mean job reliability `r`.
//!
//! ## Quick start
//!
//! ```
//! use smartred_core::analysis;
//! use smartred_core::monte_carlo::{estimate, MonteCarloConfig};
//! use smartred_core::params::{Reliability, VoteMargin};
//! use smartred_core::strategy::Iterative;
//! use rand::SeedableRng;
//!
//! // Iterative redundancy with margin d = 4 over a pool of reliability 0.7.
//! let d = VoteMargin::new(4)?;
//! let r = Reliability::new(0.7)?;
//! let strategy = Iterative::new(d);
//!
//! // Analytic predictions (Eqs. 5 and 6)…
//! let predicted_cost = analysis::iterative::cost(d, r);          // ≈ 9.35
//! let predicted_reliability = analysis::iterative::reliability(d, r); // ≈ 0.967
//!
//! // …verified by simulation under the Byzantine worst case.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let report = estimate(&strategy, MonteCarloConfig::new(20_000, r), &mut rng);
//! assert!((report.cost_factor() - predicted_cost).abs() < 0.25);
//! assert!((report.reliability() - predicted_reliability).abs() < 0.01);
//! # Ok::<(), smartred_core::error::ParamError>(())
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`params`] | validated newtypes: [`params::Reliability`], [`params::KVotes`], [`params::VoteMargin`], [`params::Confidence`] |
//! | [`tally`] | n-ary vote counting with deterministic tie-breaks |
//! | [`strategy`] | the three techniques plus related-work baselines |
//! | [`execution`] | the wave-by-wave driver used by every platform |
//! | [`analysis`] | Eqs. 1–6 by multiple independent derivations |
//! | [`monte_carlo`] | direct stochastic validation of the formulas |
//! | [`parallel`] | deterministic scoped-thread work pool + counter-based RNG streams |
//! | [`node`], [`reputation`] | node identity and reputation for the baselines |
//!
//! The companion crates `smartred-desim`, `smartred-dca`, `smartred-sat`
//! and `smartred-volunteer` rebuild the paper's two evaluation platforms
//! (the XDEVS discrete-event simulations and the BOINC/PlanetLab
//! deployment); `smartred-bench` regenerates every figure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod audit;
pub mod error;
pub mod execution;
pub mod hedge;
pub mod monte_carlo;
pub mod node;
pub mod parallel;
pub mod params;
pub mod reputation;
pub mod resilience;
pub mod strategy;
pub mod tally;

pub use audit::{AuditPolicy, Cartel};
pub use error::ParamError;
pub use execution::{TaskExecution, WaveStep};
pub use params::{Confidence, KVotes, Reliability, VoteMargin};
pub use strategy::{Decision, Iterative, Progressive, RedundancyStrategy, Traditional};
pub use tally::VoteTally;
