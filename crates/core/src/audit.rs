//! Coordinator-side auditing and the adaptive-collusion adversary model.
//!
//! The paper's redundancy strategies buy correctness only by adding
//! replicas, under the worst-case assumption that every wrong vote agrees.
//! Following Rajesh, Karamchandani & Prabhakaran (arXiv:2507.16014), a
//! coordinator that performs a small number of *local* recomputations
//! beats pure-replication bounds against colluding adversaries — for our
//! 3-SAT workload, checking a block is as cheap as one replica, so a
//! spot-check budget converts directly into reliability.
//!
//! Two halves live here, shared by all three execution substrates (DCA
//! simulator, volunteer server, live runtime):
//!
//! * [`AuditPolicy`] — when the coordinator recomputes a task locally and
//!   cross-checks every recorded result against the honest value. Audit
//!   selection draws from a dedicated counter stream
//!   ([`AUDIT_STREAM`]) of [`crate::parallel::task_rng`], keyed by
//!   `(seed, task)` alone, so the decision to audit a task is a pure
//!   function of its id: schedule-independent, thread-count-independent,
//!   and — crucially for crash recovery — reproducible by a restarted
//!   coordinator replaying its WAL.
//! * [`Cartel`] — the adversary the audits must beat: a coalition of
//!   nodes that agree on *per-task* lies drawn from their own counter
//!   stream ([`CARTEL_STREAM`]), throttled to stay under the strike
//!   threshold of `core::resilience`. Because every member consults the
//!   same pure function, the cartel outvotes honest replicas whenever it
//!   holds a wave majority, without any runtime communication — and the
//!   simulators can additionally model dormancy (ceasing lies for a
//!   while) after a member is caught.

use crate::parallel::task_rng;
use rand::Rng;

/// Dedicated counter-stream index for audit-selection draws, disjoint from
/// replica fault draws (which use small replica ordinals as the index).
pub const AUDIT_STREAM: u64 = 0x4155_4449_5453_5452; // "AUDITSTR"

/// Dedicated counter-stream index for cartel per-task lie draws.
pub const CARTEL_STREAM: u64 = 0x4341_5254_454c_5354; // "CARTELST"

/// When and how hard the coordinator audits completed work.
///
/// An *audit* is one local recomputation of a task's payload; every result
/// recorded for the task so far is compared against the honest value.
/// Results that contradict it charge their node [`AuditPolicy::strike_weight`]
/// strikes (feeding the ordinary `core::resilience` discipline), the
/// tainted verdict is voided before acceptance, and every open task the
/// liar touched is re-tallied from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditPolicy {
    /// Baseline fraction of tasks spot-checked at verdict time, in `[0, 1]`.
    pub spot_rate: f64,
    /// Spot-check fraction once any audit has caught a liar (suspicion
    /// escalation). Must be `>= spot_rate` to be meaningful; equal rates
    /// keep audit selection history-independent (required by the runtime's
    /// crash-determinism tests).
    pub escalated_rate: f64,
    /// Probation length after quarantine release: the node's next `K`
    /// results each flag their task for a mandatory audit before the
    /// verdict is accepted.
    pub probation_audits: u32,
    /// Strikes charged per result an audit catches (a weight at or above
    /// `QuarantinePolicy::strike_limit` quarantines in one blow).
    pub strike_weight: u32,
}

impl AuditPolicy {
    /// A policy that never audits (all substrates' default).
    pub fn disabled() -> Self {
        Self {
            spot_rate: 0.0,
            escalated_rate: 0.0,
            probation_audits: 0,
            strike_weight: 0,
        }
    }

    /// A spot-check policy auditing `rate` of tasks, with escalation to
    /// `2 * rate` (capped at 1), 3 probation audits, and quarantine-weight
    /// strikes.
    pub fn spot(rate: f64) -> Self {
        Self {
            spot_rate: rate,
            escalated_rate: (2.0 * rate).min(1.0),
            probation_audits: 3,
            strike_weight: 3,
        }
    }

    /// Whether this policy can ever schedule an audit.
    pub fn is_enabled(&self) -> bool {
        self.spot_rate > 0.0 || self.escalated_rate > 0.0 || self.probation_audits > 0
    }

    /// Validates rates and weights.
    ///
    /// # Errors
    ///
    /// Returns a message when a rate is outside `[0, 1]` or not finite, or
    /// when the policy can audit but carries a zero strike weight.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("spot_rate", self.spot_rate),
            ("escalated_rate", self.escalated_rate),
        ] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("audit {name} must be in [0, 1], got {rate}"));
            }
        }
        if self.escalated_rate < self.spot_rate {
            return Err(format!(
                "audit escalated_rate ({}) must be >= spot_rate ({})",
                self.escalated_rate, self.spot_rate
            ));
        }
        if self.is_enabled() && self.strike_weight == 0 {
            return Err("an enabled audit policy needs strike_weight >= 1".into());
        }
        Ok(())
    }

    /// Whether the random spot-check selects `task` for audit, at the
    /// escalated rate once a liar has been caught. One uniform draw from
    /// the dedicated [`AUDIT_STREAM`] keyed by `(seed, task)` — a pure
    /// function of the task id, independent of schedule and thread count.
    pub fn selects(&self, seed: u64, task: u64, escalated: bool) -> bool {
        let rate = if escalated {
            self.escalated_rate
        } else {
            self.spot_rate
        };
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut rng = task_rng(seed, task, AUDIT_STREAM);
        rng.gen::<f64>() < rate
    }
}

/// An adaptive colluding coalition: the first [`Cartel::size`] nodes of
/// the pool, lying in coordination on a throttled fraction of tasks.
///
/// Whether the cartel lies on a task is a pure function of
/// `(seed, task)` drawn from [`CARTEL_STREAM`] — every member computes it
/// independently and identically, which is exactly what makes coordinated
/// lying dangerous: when two of a wave's three replicas land on members,
/// the wrong value *wins the vote* and pure replication accepts it.
/// Throttling (`lie_rate` well under 1) keeps strike-based discipline from
/// ever accumulating enough evidence inside its sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cartel {
    /// Coalition size: nodes `0..size` are members.
    pub size: u32,
    /// Fraction of tasks the coalition agrees to lie on, in `[0, 1]`.
    pub lie_rate: f64,
}

impl Cartel {
    /// Creates a cartel of `size` members lying on `lie_rate` of tasks.
    pub fn new(size: u32, lie_rate: f64) -> Self {
        Self { size, lie_rate }
    }

    /// Whether `node` belongs to the coalition.
    pub fn is_member(&self, node: u32) -> bool {
        node < self.size
    }

    /// Whether the coalition lies on `task` — the coordinated per-task
    /// agreement, identical for every member.
    pub fn lies_on(&self, seed: u64, task: u64) -> bool {
        if self.lie_rate <= 0.0 {
            return false;
        }
        if self.lie_rate >= 1.0 {
            return true;
        }
        let mut rng = task_rng(seed, task, CARTEL_STREAM);
        rng.gen::<f64>() < self.lie_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_selects() {
        let p = AuditPolicy::disabled();
        assert!(!p.is_enabled());
        for task in 0..1000 {
            assert!(!p.selects(7, task, false));
            assert!(!p.selects(7, task, true));
        }
    }

    #[test]
    fn selection_matches_the_configured_fraction() {
        let p = AuditPolicy::spot(0.2);
        let n = 20_000;
        let picked = (0..n).filter(|&t| p.selects(42, t, false)).count();
        let frac = picked as f64 / n as f64;
        assert!(
            (frac - 0.2).abs() < 0.02,
            "spot fraction drifted: {frac} vs 0.2"
        );
        let escalated = (0..n).filter(|&t| p.selects(42, t, true)).count();
        assert!(
            escalated > picked,
            "escalation must audit more tasks than the baseline"
        );
    }

    #[test]
    fn selection_is_a_pure_function_of_seed_and_task() {
        let p = AuditPolicy::spot(0.3);
        for task in 0..200 {
            assert_eq!(p.selects(9, task, false), p.selects(9, task, false));
        }
        let other: Vec<bool> = (0..200).map(|t| p.selects(10, t, false)).collect();
        let base: Vec<bool> = (0..200).map(|t| p.selects(9, t, false)).collect();
        assert_ne!(base, other, "different seeds must differ somewhere");
    }

    #[test]
    fn audit_draws_do_not_collide_with_replica_draws() {
        // The audit stream index is disjoint from any realistic replica
        // ordinal, so auditing a task never perturbs its fault draws.
        let seed = 11;
        let mut replica_rng = task_rng(seed, 5, 0);
        let mut audit_rng = task_rng(seed, 5, AUDIT_STREAM);
        assert_ne!(replica_rng.gen::<u64>(), audit_rng.gen::<u64>());
    }

    #[test]
    fn validation_rejects_bad_rates_and_zero_weight() {
        let mut p = AuditPolicy::spot(0.1);
        assert!(p.validate().is_ok());
        p.escalated_rate = 0.05;
        assert!(p.validate().is_err(), "escalated below spot must fail");
        p.escalated_rate = 1.5;
        assert!(p.validate().is_err(), "rate above 1 must fail");
        let mut p = AuditPolicy::spot(0.1);
        p.strike_weight = 0;
        assert!(p.validate().is_err(), "enabled policy needs strikes");
        assert!(AuditPolicy::disabled().validate().is_ok());
    }

    #[test]
    fn cartel_membership_and_lies_are_deterministic() {
        let c = Cartel::new(3, 0.25);
        assert!(c.is_member(0) && c.is_member(2) && !c.is_member(3));
        let n = 20_000;
        let lies = (0..n).filter(|&t| c.lies_on(5, t)).count();
        let frac = lies as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "lie fraction drifted: {frac} vs 0.25"
        );
        for task in 0..200 {
            assert_eq!(c.lies_on(5, task), c.lies_on(5, task));
        }
    }

    #[test]
    fn cartel_lies_are_independent_of_audit_selection() {
        // Same (seed, task) key, different streams: the adversary's lie
        // schedule and the coordinator's audit schedule are uncorrelated.
        let c = Cartel::new(2, 0.5);
        let p = AuditPolicy::spot(0.5);
        let agree = (0..1000u64)
            .filter(|&t| c.lies_on(3, t) == p.selects(3, t, false))
            .count();
        assert!((300..700).contains(&agree), "streams look correlated");
    }
}
