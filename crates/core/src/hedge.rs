//! Straggler-aware hedging: quantile-triggered duplicate replicas.
//!
//! The paper's strategies decide *how many* replicas a task needs;
//! Behrouzi-Far & Soljanin (arXiv:2006.02318) show *when* to launch them
//! matters just as much for the completion-time tail: issuing a duplicate
//! only once a job has outlived a high quantile of the observed
//! completion-time distribution buys most of the p99 improvement of
//! up-front replication at a fraction of the job cost.
//!
//! This module is the shared decision surface: every substrate (the DCA
//! simulator, the volunteer server, the live runtime) owns one
//! [`HedgeTrigger`] per coordinator, feeds it completed-job latencies, and
//! asks the same pure question — *has this job outlived the threshold?* —
//! so the hedging decision rule is identical everywhere even when the
//! clocks differ (sim-time vs wall-clock).
//!
//! A hedge duplicates an **outstanding replica**, it does not open a new
//! one: the twin carries the same task/replica coordinates, the first copy
//! to report supplies the replica's vote, and the loser is discarded. In
//! the live runtime, where votes are pure functions of
//! `(seed, task, replica)`, this makes hedging *verdict-invariant*: it can
//! change when a verdict arrives, never what it says.

use crate::error::ParamError;
use smartred_stats::P2Quantile;

/// Configuration of the straggler-triggered hedging layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Latency quantile that arms the trigger (e.g. `0.95`): a job that
    /// outlives this quantile of observed completion times is hedged.
    pub quantile: f64,
    /// Completed-job latencies to observe before hedging at all — the
    /// estimator's warm-up, below which the trigger never fires.
    pub min_samples: u64,
    /// Multiplier applied to the quantile estimate to form the threshold
    /// (`1.0` = hedge exactly at the quantile; larger is more conservative).
    pub multiplier: f64,
    /// Hedges allowed per task epoch. An epoch reset (audit void,
    /// re-tally) restores the budget; a reissued replica does not.
    pub max_per_task: u32,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            quantile: 0.95,
            min_samples: 20,
            multiplier: 1.0,
            max_per_task: 1,
        }
    }
}

impl HedgePolicy {
    /// A policy hedging at latency quantile `q` with the remaining fields
    /// at their defaults.
    pub fn at_quantile(q: f64) -> Self {
        Self {
            quantile: q,
            ..Self::default()
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`ParamError::OutOfRange`] when the quantile leaves `(0, 1)`, the
    /// multiplier is not at least 1, or the per-task budget is zero.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(self.quantile.is_finite() && 0.0 < self.quantile && self.quantile < 1.0) {
            return Err(ParamError::OutOfRange {
                name: "hedge.quantile",
                value: self.quantile,
                expected: "strictly inside (0, 1)",
            });
        }
        if !(self.multiplier.is_finite() && self.multiplier >= 1.0) {
            return Err(ParamError::OutOfRange {
                name: "hedge.multiplier",
                value: self.multiplier,
                expected: "at least 1",
            });
        }
        if self.max_per_task == 0 {
            return Err(ParamError::OutOfRange {
                name: "hedge.max_per_task",
                value: 0.0,
                expected: "at least 1",
            });
        }
        Ok(())
    }
}

/// The online hedging trigger: a [`P2Quantile`] latency estimator plus the
/// threshold rule.
///
/// Deterministic by construction — the trigger state is a pure fold over
/// the sequence of observed latencies, so two coordinators fed the same
/// latency stream agree on every hedging decision bit for bit.
#[derive(Debug, Clone)]
pub struct HedgeTrigger {
    policy: HedgePolicy,
    estimator: P2Quantile,
}

impl HedgeTrigger {
    /// Creates a trigger under `policy`.
    ///
    /// # Errors
    ///
    /// Propagates [`HedgePolicy::validate`].
    pub fn new(policy: HedgePolicy) -> Result<Self, ParamError> {
        policy.validate()?;
        Ok(Self {
            policy,
            estimator: P2Quantile::new(policy.quantile),
        })
    }

    /// The policy this trigger runs.
    pub fn policy(&self) -> HedgePolicy {
        self.policy
    }

    /// Feeds one completed-job latency (any time unit, as long as callers
    /// are consistent). Non-finite and negative values are ignored.
    pub fn observe(&mut self, latency: f64) {
        if latency.is_finite() && latency >= 0.0 {
            self.estimator.observe(latency);
        }
    }

    /// Latencies observed so far.
    pub fn observations(&self) -> u64 {
        self.estimator.count()
    }

    /// The current hedging threshold: quantile estimate × multiplier, or
    /// `None` while still warming up (fewer than `min_samples`
    /// observations — the trigger never fires cold).
    pub fn threshold(&self) -> Option<f64> {
        if self.estimator.count() < self.policy.min_samples.max(5) {
            return None;
        }
        self.estimator
            .estimate()
            .map(|q| q * self.policy.multiplier)
    }

    /// Whether a job that has been outstanding for `elapsed` should be
    /// hedged. `false` during warm-up; at steady state, `true` exactly
    /// when `elapsed` exceeds the quantile threshold.
    pub fn should_hedge(&self, elapsed: f64) -> bool {
        match self.threshold() {
            Some(t) => elapsed > t,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        assert!(HedgePolicy::default().validate().is_ok());
    }

    #[test]
    fn bad_quantiles_are_rejected() {
        for q in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(HedgePolicy::at_quantile(q).validate().is_err(), "q={q}");
        }
    }

    #[test]
    fn trigger_stays_cold_until_min_samples() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            min_samples: 10,
            ..HedgePolicy::default()
        })
        .unwrap();
        for _ in 0..9 {
            t.observe(1.0);
            assert_eq!(t.threshold(), None);
            assert!(!t.should_hedge(1e9));
        }
        t.observe(1.0);
        assert_eq!(t.threshold(), Some(1.0));
        assert!(t.should_hedge(1.1));
        assert!(!t.should_hedge(0.9));
    }

    #[test]
    fn multiplier_scales_the_threshold() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            min_samples: 5,
            multiplier: 2.0,
            ..HedgePolicy::default()
        })
        .unwrap();
        for _ in 0..5 {
            t.observe(3.0);
        }
        assert_eq!(t.threshold(), Some(6.0));
    }

    #[test]
    fn negative_latencies_are_ignored() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            min_samples: 5,
            ..HedgePolicy::default()
        })
        .unwrap();
        t.observe(-1.0);
        assert_eq!(t.observations(), 0);
    }
}
