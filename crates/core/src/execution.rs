//! Platform-agnostic driver for a single task's redundancy loop.
//!
//! [`TaskExecution`] owns the vote tally for one task, consults its
//! [`RedundancyStrategy`] at wave boundaries, and tracks the metrics the
//! paper reports (jobs deployed, waves, verdict). It is deliberately
//! push/pull: the surrounding platform (Monte-Carlo loop, discrete-event
//! simulator, volunteer-computing server) decides *when* jobs run and feeds
//! results back, so the same type drives all of them.

use crate::error::JobCapExceeded;
use crate::strategy::{Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Routes a task id to one of `shards` coordinator shards.
///
/// The assignment is a pure function of `(task, shards)` — a multiplicative
/// (Fibonacci) hash of the id, reduced modulo the shard count — so every
/// component of a sharded deployment (router, recovery, tests) derives the
/// same owner without coordination, and sequentially-issued ids spread
/// evenly instead of striping. One shard is the identity routing: a sharded
/// runtime with `shards == 1` takes exactly the single-coordinator path.
///
/// # Examples
///
/// ```
/// use smartred_core::execution::shard_of;
///
/// assert_eq!(shard_of(42, 1), 0);
/// let k = shard_of(42, 4);
/// assert!(k < 4);
/// assert_eq!(k, shard_of(42, 4)); // stable
/// ```
pub fn shard_of(task: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Knuth's multiplicative hash: odd constant ≈ 2^64 / φ. The high half
    // of the product mixes every input bit, unlike a bare `id % shards`
    // which would map the round-robin ids of a submission loop onto a
    // fixed stripe pattern.
    let mixed = u64::from(task).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((mixed >> 32) as usize) % shards
}

/// Splits a worker pool of `total` slots across `shards` sub-pools,
/// returning shard `k`'s `(node_base, count)`.
///
/// Sub-pools are contiguous id ranges — shard k owns global node ids
/// `node_base .. node_base + count` — sized within one of each other
/// (the first `total % shards` shards take the extra worker). Every shard
/// gets at least one worker even when `total < shards`, so a sharded
/// runtime never spawns a shard that cannot serve jobs; global node ids
/// stay disjoint regardless.
///
/// # Examples
///
/// ```
/// use smartred_core::execution::shard_worker_span;
///
/// assert_eq!(shard_worker_span(8, 4, 0), (0, 2));
/// assert_eq!(shard_worker_span(8, 4, 3), (6, 2));
/// assert_eq!(shard_worker_span(5, 2, 0), (0, 3));
/// assert_eq!(shard_worker_span(5, 2, 1), (3, 2));
/// ```
pub fn shard_worker_span(total: usize, shards: usize, k: usize) -> (u32, usize) {
    assert!(shards > 0, "at least one shard");
    assert!(k < shards, "shard index {k} out of {shards}");
    let per = (total / shards).max(1);
    let extra = if total > shards { total % shards } else { 0 };
    let count = per + usize::from(k < extra);
    let base = k * per + k.min(extra);
    (base as u32, count)
}

/// How a platform picks the worker for the next job (arXiv:1808.02838).
///
/// Behrouzi-Far & Soljanin's task-to-worker assignment study shows that at
/// fixed redundancy, the *placement* rule materially shifts the
/// completion-time distribution: random placement maximizes diversity,
/// round-robin equalizes queue lengths on homogeneous pools, and
/// load-based placement wins once service times are skewed. Every
/// execution platform threads one of these through its dispatch path, and
/// [`Assignment::pick`] is the shared, pure selection rule — so, given the
/// same candidate set and state, the DCA simulator, the volunteer server,
/// and the live runtime choose identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// Uniformly random eligible worker — the paper's model (its
    /// independence assumptions rely on it) and the default.
    #[default]
    Random,
    /// Cyclic next eligible worker after the previous pick.
    RoundRobin,
    /// Eligible worker with the least load (ties to the lowest id).
    LeastLoaded,
}

impl Assignment {
    /// Every policy, in the order benches sweep them.
    pub const ALL: [Assignment; 3] = [
        Assignment::Random,
        Assignment::RoundRobin,
        Assignment::LeastLoaded,
    ];

    /// The policy's canonical flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            Assignment::Random => "random",
            Assignment::RoundRobin => "round-robin",
            Assignment::LeastLoaded => "least-loaded",
        }
    }

    /// Parses a canonical name (as accepted by bench `--assignment`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(Assignment::Random),
            "round-robin" | "roundrobin" | "rr" => Some(Assignment::RoundRobin),
            "least-loaded" | "leastloaded" | "ll" => Some(Assignment::LeastLoaded),
            _ => None,
        }
    }

    /// Picks a position within `eligible` (parallel to `loads`).
    ///
    /// Pure in all inputs: platforms supply the eligible worker ids, their
    /// current loads, the round-robin `cursor` (one past the previously
    /// picked id), and a pre-drawn `random_pos` (only consumed by
    /// [`Assignment::Random`], so the other policies never disturb a
    /// platform's RNG stream).
    ///
    /// # Panics
    ///
    /// Panics if `eligible` is empty or `loads` has a different length.
    pub fn pick(self, eligible: &[u32], loads: &[u64], cursor: u32, random_pos: usize) -> usize {
        assert!(!eligible.is_empty(), "no eligible workers");
        assert_eq!(eligible.len(), loads.len(), "loads must parallel eligible");
        match self {
            Assignment::Random => random_pos % eligible.len(),
            Assignment::RoundRobin => {
                // Smallest cyclic distance from the cursor; ids are unique
                // so the minimum is too.
                (0..eligible.len())
                    .min_by_key(|&i| eligible[i].wrapping_sub(cursor))
                    .expect("non-empty")
            }
            Assignment::LeastLoaded => (0..eligible.len())
                .min_by_key(|&i| (loads[i], eligible[i]))
                .expect("non-empty"),
        }
    }
}

/// What the driver should do next for this task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll<V> {
    /// Deploy this many new jobs on independent, randomly chosen nodes.
    Deploy(usize),
    /// Jobs are still outstanding; feed their results via
    /// [`TaskExecution::record`] before polling again.
    Pending,
    /// The task completed with this verdict.
    Complete(V),
}

/// One strategy-decision step, annotated with everything an event-driven
/// platform needs to act on it (wave number, verdict, cap details).
///
/// [`TaskExecution::step_wave`] returns this instead of bare [`Poll`] so
/// the three execution platforms (DCA simulator, volunteer server, live
/// runtime) share one wave-sizing / quorum-check / verdict-construction
/// surface rather than each re-deriving it from `poll()` + accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveStep<V> {
    /// The strategy opened deployment wave `wave` (1-based) of `jobs` jobs.
    Wave {
        /// Wave number just opened, starting at 1.
        wave: usize,
        /// Jobs to deploy in this wave.
        jobs: usize,
    },
    /// The quorum check passed: the task completed with this verdict.
    Verdict(V),
    /// Deployed jobs are still outstanding; feed results before stepping
    /// again.
    Pending,
    /// The next wave would exceed the configured job cap. The execution
    /// stays usable (tally inspectable, degraded acceptance possible).
    Capped {
        /// The configured cap.
        cap: usize,
        /// Jobs already deployed when the cap was hit.
        deployed: usize,
    },
}

/// Summary of a finished (or capped) execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionReport<V> {
    /// Total jobs deployed for this task.
    pub jobs: usize,
    /// Number of waves (deployment rounds).
    pub waves: usize,
    /// The accepted result, if the task completed.
    pub verdict: Option<V>,
}

/// Drives one task through its strategy's deploy/accept loop.
///
/// # Examples
///
/// ```
/// use smartred_core::execution::{Poll, TaskExecution};
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::Iterative;
///
/// let mut task = TaskExecution::new(Iterative::new(VoteMargin::new(2)?));
/// assert_eq!(task.poll()?, Poll::Deploy(2));
/// task.record(true);
/// assert_eq!(task.poll()?, Poll::Pending);
/// task.record(true);
/// assert_eq!(task.poll()?, Poll::Complete(true));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskExecution<V: Ord + Clone, S> {
    strategy: S,
    tally: VoteTally<V>,
    outstanding: usize,
    jobs: usize,
    waves: usize,
    hedges: usize,
    verdict: Option<V>,
    job_cap: Option<usize>,
}

impl<V: Ord + Clone, S: RedundancyStrategy<V>> TaskExecution<V, S> {
    /// Creates an execution with no job cap.
    pub fn new(strategy: S) -> Self {
        Self {
            strategy,
            tally: VoteTally::new(),
            outstanding: 0,
            jobs: 0,
            waves: 0,
            hedges: 0,
            verdict: None,
            job_cap: None,
        }
    }

    /// Limits the total jobs this task may deploy.
    ///
    /// Iterative redundancy has no inherent bound (paper §5.2); systems with
    /// budget constraints use a cap and treat [`JobCapExceeded`] as a task
    /// failure.
    pub fn with_job_cap(mut self, cap: usize) -> Self {
        self.job_cap = Some(cap);
        self
    }

    /// Asks the strategy what to do next.
    ///
    /// Returns [`Poll::Pending`] while deployed jobs have not all reported;
    /// strategies only decide at wave boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`JobCapExceeded`] if the next wave would exceed the cap set
    /// by [`with_job_cap`](Self::with_job_cap). The execution stays usable:
    /// the caller may still inspect the tally or accept the current leader.
    pub fn poll(&mut self) -> Result<Poll<V>, JobCapExceeded> {
        if let Some(v) = &self.verdict {
            return Ok(Poll::Complete(v.clone()));
        }
        if self.outstanding > 0 {
            return Ok(Poll::Pending);
        }
        match self.strategy.decide(&self.tally) {
            Decision::Accept(v) => {
                self.verdict = Some(v.clone());
                Ok(Poll::Complete(v))
            }
            Decision::Deploy(n) => {
                let n = n.get();
                if let Some(cap) = self.job_cap {
                    if self.jobs + n > cap {
                        return Err(JobCapExceeded {
                            cap,
                            deployed: self.jobs,
                        });
                    }
                }
                self.outstanding = n;
                self.jobs += n;
                self.waves += 1;
                Ok(Poll::Deploy(n))
            }
        }
    }

    /// Records one job's result.
    ///
    /// # Panics
    ///
    /// Panics if no jobs are outstanding — that indicates a driver bug
    /// (results arriving that were never deployed).
    pub fn record(&mut self, value: V) {
        assert!(
            self.outstanding > 0,
            "result recorded with no outstanding jobs"
        );
        self.outstanding -= 1;
        self.tally.record(value);
    }

    /// Discards every vote and counter and restarts the execution from
    /// wave 1, keeping the strategy and job cap. The audit layer calls
    /// this when a verdict is voided or an open task is re-tallied after
    /// a caught liar touched it: the tainted tally cannot be trusted, and
    /// the job budget is refreshed for the fresh attempt. Outstanding
    /// jobs are forgotten — the platform must drop their late results
    /// (they would be recorded against the wrong attempt).
    pub fn reset(&mut self) {
        self.tally = VoteTally::new();
        self.outstanding = 0;
        self.jobs = 0;
        self.waves = 0;
        self.hedges = 0;
        self.verdict = None;
    }

    /// Marks `n` outstanding jobs as lost without a result (e.g. their nodes
    /// left the pool). The strategy will re-deploy as needed on the next
    /// poll.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the outstanding job count.
    pub fn abandon(&mut self, n: usize) {
        assert!(
            n <= self.outstanding,
            "cannot abandon {n} jobs with only {} outstanding",
            self.outstanding
        );
        self.outstanding -= n;
    }

    /// Drives the task one strategy decision forward, annotating the
    /// outcome with the wave number (on deploy) or cap details (on
    /// overrun). This is the shared decision surface of every execution
    /// platform: simulators and the live runtime all map [`WaveStep`]
    /// variants 1:1 onto their wave-opened / verdict / capped events.
    pub fn step_wave(&mut self) -> WaveStep<V> {
        match self.poll() {
            Ok(Poll::Deploy(jobs)) => WaveStep::Wave {
                wave: self.waves,
                jobs,
            },
            Ok(Poll::Complete(v)) => WaveStep::Verdict(v),
            Ok(Poll::Pending) => WaveStep::Pending,
            Err(JobCapExceeded { cap, deployed }) => WaveStep::Capped { cap, deployed },
        }
    }

    /// Returns `(leader_count, runner_up_count)` — the vote-tally snapshot
    /// every platform journals after a vote lands.
    pub fn leader_counts(&self) -> (usize, usize) {
        let leader = self.tally.leader().map(|(_, n)| n).unwrap_or(0);
        (leader, self.tally.runner_up_count())
    }

    /// Returns the current tally (for inspection or logging).
    pub fn tally(&self) -> &VoteTally<V> {
        &self.tally
    }

    /// Jobs deployed so far.
    pub fn jobs_deployed(&self) -> usize {
        self.jobs
    }

    /// Waves started so far.
    pub fn waves(&self) -> usize {
        self.waves
    }

    /// Jobs deployed but not yet reported or abandoned.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Notes one hedge launched against an outstanding replica of this
    /// task in the current epoch. Hedge twins are duplicates of logical
    /// replicas — they never touch the tally, the wave counters, or the
    /// job cap — but each one costs a real job, so platforms charge them
    /// here and enforce
    /// [`HedgePolicy::max_per_task`](crate::hedge::HedgePolicy) against
    /// [`hedges_launched`](Self::hedges_launched). [`reset`](Self::reset)
    /// clears the count: a voided epoch restores the hedge budget.
    pub fn note_hedge(&mut self) {
        self.hedges += 1;
    }

    /// Hedge twins launched in the current epoch.
    pub fn hedges_launched(&self) -> usize {
        self.hedges
    }

    /// Returns `true` exactly when the current wave has just drained: at
    /// least one wave was opened, every job of it has reported or been
    /// abandoned, and no verdict has been accepted yet. Event-driven
    /// platforms use this to emit one wave-closed journal event per wave
    /// after each [`record`](Self::record)/[`abandon`](Self::abandon).
    ///
    /// # Examples
    ///
    /// ```
    /// use smartred_core::execution::{Poll, TaskExecution};
    /// use smartred_core::params::KVotes;
    /// use smartred_core::strategy::Traditional;
    ///
    /// let mut task = TaskExecution::new(Traditional::new(KVotes::new(3)?));
    /// assert!(!task.wave_boundary()); // nothing deployed yet
    /// assert_eq!(task.poll()?, Poll::Deploy(3));
    /// task.record(true);
    /// task.record(true);
    /// assert!(!task.wave_boundary()); // one job still outstanding
    /// task.record(true);
    /// assert!(task.wave_boundary()); // wave drained, verdict not yet polled
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn wave_boundary(&self) -> bool {
        self.outstanding == 0 && self.waves > 0 && self.verdict.is_none()
    }

    /// Returns `true` once a verdict has been accepted.
    pub fn is_complete(&self) -> bool {
        self.verdict.is_some()
    }

    /// Returns the execution summary.
    pub fn report(&self) -> ExecutionReport<V> {
        ExecutionReport {
            jobs: self.jobs,
            waves: self.waves,
            verdict: self.verdict.clone(),
        }
    }

    /// Runs the whole task synchronously against a job oracle.
    ///
    /// The oracle receives a wave size and must return exactly that many
    /// results. Useful for Monte-Carlo estimation and tests; the
    /// event-driven platforms use [`poll`](Self::poll)/[`record`](Self::record)
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`JobCapExceeded`] if a cap is configured and hit.
    ///
    /// # Panics
    ///
    /// Panics if the oracle returns the wrong number of results.
    pub fn run_with<F>(mut self, mut oracle: F) -> Result<ExecutionReport<V>, JobCapExceeded>
    where
        F: FnMut(usize) -> Vec<V>,
    {
        loop {
            match self.poll()? {
                Poll::Complete(_) => return Ok(self.report()),
                Poll::Pending => unreachable!("run_with always fills whole waves"),
                Poll::Deploy(n) => {
                    let results = oracle(n);
                    assert_eq!(results.len(), n, "oracle must return exactly {n} results");
                    for v in results {
                        self.record(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{KVotes, VoteMargin};
    use crate::strategy::{Iterative, Progressive, Traditional};

    #[test]
    fn shard_of_is_identity_for_one_shard_and_bounded_otherwise() {
        for task in 0..1000 {
            assert_eq!(shard_of(task, 1), 0);
            for shards in [2usize, 3, 4, 8, 16] {
                assert!(shard_of(task, shards) < shards);
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_ids_roughly_evenly() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for task in 0..8000u32 {
            counts[shard_of(task, shards)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {k} got {c} of 8000 sequential ids — hash is striping"
            );
        }
    }

    #[test]
    fn worker_spans_are_disjoint_and_cover_the_pool() {
        for total in [1usize, 2, 5, 8, 9, 16] {
            for shards in [1usize, 2, 4, 8] {
                let mut next = 0u32;
                for k in 0..shards {
                    let (base, count) = shard_worker_span(total, shards, k);
                    assert!(count >= 1, "shard {k} of {shards} over {total} is empty");
                    assert_eq!(base, next, "spans must be contiguous");
                    next = base + count as u32;
                }
                if total >= shards {
                    assert_eq!(next as usize, total, "spans must cover the pool exactly");
                }
            }
        }
    }

    #[test]
    fn reset_restarts_from_wave_one_with_a_fresh_budget() {
        let mut task =
            TaskExecution::new(Traditional::new(KVotes::new(3).unwrap())).with_job_cap(4);
        assert!(matches!(
            task.step_wave(),
            WaveStep::Wave { wave: 1, jobs: 3 }
        ));
        task.record(true);
        task.record(false);
        task.record(false);
        assert_eq!(task.step_wave(), WaveStep::Verdict(false));
        // A void discards the tainted tally and re-runs from scratch.
        task.reset();
        assert_eq!(task.jobs_deployed(), 0);
        assert_eq!(task.outstanding(), 0);
        assert!(!task.is_complete());
        assert!(matches!(
            task.step_wave(),
            WaveStep::Wave { wave: 1, jobs: 3 }
        ));
        task.record(true);
        task.record(true);
        task.record(true);
        assert_eq!(task.step_wave(), WaveStep::Verdict(true));
    }

    #[test]
    fn traditional_runs_one_wave() {
        let task = TaskExecution::new(Traditional::new(KVotes::new(3).unwrap()));
        let report = task.run_with(|n| vec![true; n]).unwrap();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.waves, 1);
        assert_eq!(report.verdict, Some(true));
    }

    #[test]
    fn progressive_stops_early_on_unanimity() {
        let task = TaskExecution::new(Progressive::new(KVotes::new(19).unwrap()));
        let report = task.run_with(|n| vec![false; n]).unwrap();
        assert_eq!(report.jobs, 10);
        assert_eq!(report.waves, 1);
        assert_eq!(report.verdict, Some(false));
    }

    #[test]
    fn iterative_multi_wave_path() {
        // d = 6, first wave 4-2 → second wave of 4, all agree → 8-2 margin 6.
        let mut feed = vec![
            vec![true, true, true, true, false, false],
            vec![true, true, true, true],
        ]
        .into_iter();
        let task = TaskExecution::new(Iterative::new(VoteMargin::new(6).unwrap()));
        let report = task
            .run_with(|n| {
                let wave = feed.next().expect("only two waves expected");
                assert_eq!(wave.len(), n);
                wave
            })
            .unwrap();
        assert_eq!(report.jobs, 10);
        assert_eq!(report.waves, 2);
        assert_eq!(report.verdict, Some(true));
    }

    #[test]
    fn pending_between_partial_results() {
        let mut task = TaskExecution::new(Iterative::new(VoteMargin::new(2).unwrap()));
        assert_eq!(task.poll().unwrap(), Poll::Deploy(2));
        task.record(true);
        assert_eq!(task.poll().unwrap(), Poll::Pending);
        assert_eq!(task.outstanding(), 1);
        task.record(true);
        assert_eq!(task.poll().unwrap(), Poll::Complete(true));
        assert!(task.is_complete());
    }

    #[test]
    fn job_cap_errors_but_execution_survives() {
        let mut task =
            TaskExecution::new(Iterative::new(VoteMargin::new(4).unwrap())).with_job_cap(6);
        assert_eq!(task.poll().unwrap(), Poll::Deploy(4));
        for v in [true, true, false, false] {
            task.record(v);
        }
        // Margin 0, needs 4 more but only 2 left under the cap.
        let err = task.poll().unwrap_err();
        assert_eq!(err.cap, 6);
        assert_eq!(err.deployed, 4);
        // Tally still inspectable.
        assert_eq!(task.tally().total(), 4);
        assert_eq!(task.jobs_deployed(), 4);
    }

    #[test]
    fn abandon_triggers_redeploy() {
        let mut task = TaskExecution::new(Traditional::new(KVotes::new(3).unwrap()));
        assert_eq!(task.poll().unwrap(), Poll::Deploy(3));
        task.record(true);
        task.abandon(2); // two nodes vanished
                         // Strategy re-requests exactly the two missing votes.
        assert_eq!(task.poll().unwrap(), Poll::Deploy(2));
        task.record(true);
        task.record(false);
        assert_eq!(task.poll().unwrap(), Poll::Complete(true));
        assert_eq!(task.jobs_deployed(), 5);
        assert_eq!(task.waves(), 2);
    }

    #[test]
    #[should_panic(expected = "no outstanding jobs")]
    fn recording_without_deploy_panics() {
        let mut task: TaskExecution<bool, _> =
            TaskExecution::new(Iterative::new(VoteMargin::new(2).unwrap()));
        task.record(true);
    }

    #[test]
    #[should_panic(expected = "cannot abandon")]
    fn over_abandon_panics() {
        let mut task: TaskExecution<bool, _> =
            TaskExecution::new(Iterative::new(VoteMargin::new(2).unwrap()));
        let _ = task.poll();
        task.abandon(3);
    }

    #[test]
    fn step_wave_mirrors_poll_with_wave_numbers() {
        let mut task = TaskExecution::new(Iterative::new(VoteMargin::new(2).unwrap()));
        assert_eq!(task.step_wave(), WaveStep::Wave { wave: 1, jobs: 2 });
        task.record(true);
        assert_eq!(task.step_wave(), WaveStep::Pending);
        task.record(false);
        assert_eq!(task.step_wave(), WaveStep::Wave { wave: 2, jobs: 2 });
        task.record(true);
        task.record(true);
        assert_eq!(task.leader_counts(), (3, 1));
        assert_eq!(task.step_wave(), WaveStep::Verdict(true));
    }

    #[test]
    fn step_wave_reports_cap_details() {
        let mut task =
            TaskExecution::new(Iterative::new(VoteMargin::new(4).unwrap())).with_job_cap(6);
        assert_eq!(task.step_wave(), WaveStep::Wave { wave: 1, jobs: 4 });
        for v in [true, true, false, false] {
            task.record(v);
        }
        assert_eq!(
            task.step_wave(),
            WaveStep::Capped {
                cap: 6,
                deployed: 4
            }
        );
        // Still usable after the cap, exactly like poll().
        assert_eq!(task.leader_counts(), (2, 2));
    }

    #[test]
    fn leader_counts_on_empty_tally() {
        let task: TaskExecution<bool, _> =
            TaskExecution::new(Iterative::new(VoteMargin::new(2).unwrap()));
        assert_eq!(task.leader_counts(), (0, 0));
    }

    #[test]
    fn complete_poll_is_idempotent() {
        let mut task = TaskExecution::new(Traditional::new(KVotes::new(1).unwrap()));
        assert_eq!(task.poll().unwrap(), Poll::Deploy(1));
        task.record(false);
        assert_eq!(task.poll().unwrap(), Poll::Complete(false));
        assert_eq!(task.poll().unwrap(), Poll::Complete(false));
        assert_eq!(task.report().jobs, 1);
    }
}
