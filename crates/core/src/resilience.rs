//! Server-side resilience policies: retry with exponential backoff and
//! per-node discipline (strikes → quarantine → blacklist).
//!
//! The paper's DCA (Figure 1) assumes the task server simply counts a
//! silent node as a colluding wrong vote (§2.2) or re-issues the job.
//! Real volunteer servers are gentler and meaner at once: they *retry*
//! transient failures with backoff before charging the vote, and they
//! *quarantine* nodes whose failures repeat, removing persistent liars
//! and hangers from the assignment pool. These types capture both
//! policies platform-agnostically so the discrete-event DCA simulation
//! (`smartred-dca`) and the BOINC-like deployment (`smartred-volunteer`)
//! share one implementation.

use crate::error::ParamError;

/// Retry-with-backoff policy for timed-out jobs.
///
/// A job that times out is abandoned and re-deployed after a backoff of
/// `base_units · multiplier^attempt`, jittered by ±`jitter` fraction, for
/// at most `max_retries` attempts per task. Once the budget is spent,
/// further timeouts fall through to the platform's timeout policy
/// (count-as-wrong or plain re-issue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retried timeouts per task before falling back.
    pub max_retries: u32,
    /// Backoff before the first retry, in time units.
    pub base_units: f64,
    /// Multiplier applied per successive retry (≥ 1).
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: the backoff is scaled by a uniform
    /// draw from `[1 − jitter, 1 + jitter]`, de-synchronizing retries
    /// that would otherwise land on the same tick.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_units: 0.5,
            multiplier: 2.0,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based), given a jitter
    /// draw `u ∈ [0, 1)`.
    pub fn backoff_units(&self, attempt: u32, u: f64) -> f64 {
        let scale = 1.0 + self.jitter * (2.0 * u - 1.0);
        self.base_units * self.multiplier.powi(attempt.min(i32::MAX as u32) as i32) * scale
    }

    /// Validates the policy's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on non-positive base, multiplier below 1, or
    /// jitter outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(self.base_units.is_finite() && self.base_units > 0.0) {
            return Err(ParamError::OutOfRange {
                name: "retry.base_units",
                value: self.base_units,
                expected: "positive",
            });
        }
        if !(self.multiplier.is_finite() && self.multiplier >= 1.0) {
            return Err(ParamError::OutOfRange {
                name: "retry.multiplier",
                value: self.multiplier,
                expected: "at least 1",
            });
        }
        if !(0.0..=1.0).contains(&self.jitter) || !self.jitter.is_finite() {
            return Err(ParamError::OutOfRange {
                name: "retry.jitter",
                value: self.jitter,
                expected: "[0, 1]",
            });
        }
        Ok(())
    }
}

/// Strike-based node discipline: repeated timeouts or vote-losses put a
/// node in quarantine; repeated quarantines blacklist it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Strikes (timeouts + lost votes) before a node is quarantined.
    pub strike_limit: u32,
    /// How long a quarantine lasts, in time units.
    pub quarantine_units: f64,
    /// Quarantines before the node is blacklisted (removed permanently).
    pub blacklist_after: u32,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        Self {
            strike_limit: 3,
            quarantine_units: 10.0,
            blacklist_after: 3,
        }
    }
}

impl QuarantinePolicy {
    /// Validates the policy's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on a zero strike limit, non-positive
    /// quarantine duration, or zero blacklist threshold.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.strike_limit == 0 {
            return Err(ParamError::OutOfRange {
                name: "quarantine.strike_limit",
                value: 0.0,
                expected: "at least 1",
            });
        }
        if !(self.quarantine_units.is_finite() && self.quarantine_units > 0.0) {
            return Err(ParamError::OutOfRange {
                name: "quarantine.quarantine_units",
                value: self.quarantine_units,
                expected: "positive",
            });
        }
        if self.blacklist_after == 0 {
            return Err(ParamError::OutOfRange {
                name: "quarantine.blacklist_after",
                value: 0.0,
                expected: "at least 1",
            });
        }
        Ok(())
    }
}

/// What the discipline machine tells the platform to do with a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineAction {
    /// Keep the node in service.
    None,
    /// Pull the node from the assignment pool for the policy's quarantine
    /// duration.
    Quarantine,
    /// Remove the node permanently.
    Blacklist,
}

/// Per-node strike/quarantine counters (the platform owns one per node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeDiscipline {
    strikes: u32,
    quarantines: u32,
    last_strike_micros: u64,
    /// Mandatory audits remaining before the node regains full trust
    /// after a quarantine release (see [`NodeDiscipline::begin_probation`]).
    probation: u32,
}

impl NodeDiscipline {
    /// Records one strike and returns the action the policy demands.
    ///
    /// When the strike limit is reached the strike counter resets and the
    /// quarantine counter advances; reaching `blacklist_after` quarantines
    /// escalates to [`DisciplineAction::Blacklist`].
    pub fn strike(&mut self, policy: &QuarantinePolicy) -> DisciplineAction {
        self.strikes += 1;
        if self.strikes < policy.strike_limit {
            return DisciplineAction::None;
        }
        self.strikes = 0;
        self.quarantines += 1;
        if self.quarantines >= policy.blacklist_after {
            DisciplineAction::Blacklist
        } else {
            DisciplineAction::Quarantine
        }
    }

    /// Records one strike at monotonic time `now_micros`, expiring the
    /// strike counter first if more than `window_micros` has elapsed since
    /// the previous strike. The timescale is whatever monotonic clock the
    /// platform runs on — sim-time micros in the simulators, wall-clock
    /// micros in the live runtime.
    ///
    /// Expiry is *strict*: a strike landing exactly at the window boundary
    /// (`elapsed == window_micros`) still counts the accumulated strikes;
    /// only `elapsed > window_micros` forgets them. Quarantine history is
    /// never forgiven — expiry clears strikes, not quarantines, so a node
    /// that keeps earning quarantines still marches toward the blacklist.
    pub fn strike_at(
        &mut self,
        now_micros: u64,
        window_micros: u64,
        policy: &QuarantinePolicy,
    ) -> DisciplineAction {
        if self.strikes > 0 && now_micros.saturating_sub(self.last_strike_micros) > window_micros {
            self.strikes = 0;
        }
        self.last_strike_micros = now_micros;
        self.strike(policy)
    }

    /// Records `weight` strikes at once (an audit-caught lie is worth far
    /// more evidence than a timeout) and returns the most severe action
    /// demanded — a weight at or above the strike limit quarantines in one
    /// blow, and can march straight through to blacklist.
    pub fn strike_weighted_at(
        &mut self,
        weight: u32,
        now_micros: u64,
        window_micros: u64,
        policy: &QuarantinePolicy,
    ) -> DisciplineAction {
        let mut worst = DisciplineAction::None;
        for _ in 0..weight {
            let action = self.strike_at(now_micros, window_micros, policy);
            worst = match (worst, action) {
                (_, DisciplineAction::Blacklist) | (DisciplineAction::Blacklist, _) => {
                    DisciplineAction::Blacklist
                }
                (_, DisciplineAction::Quarantine) | (DisciplineAction::Quarantine, _) => {
                    DisciplineAction::Quarantine
                }
                _ => DisciplineAction::None,
            };
        }
        worst
    }

    /// Puts the node on probation: its next `audits` results each demand a
    /// mandatory audit before their task's verdict is accepted. Platforms
    /// call this at quarantine release, so re-admission no longer restores
    /// full trust instantly.
    pub fn begin_probation(&mut self, audits: u32) {
        self.probation = audits;
    }

    /// Mandatory audits still owed by this node.
    pub fn probation_remaining(&self) -> u32 {
        self.probation
    }

    /// Consumes one probation audit obligation; returns `true` when this
    /// result must be audited (i.e. the node was still on probation).
    pub fn consume_probation(&mut self) -> bool {
        if self.probation == 0 {
            return false;
        }
        self.probation -= 1;
        true
    }

    /// Strikes accumulated since the last quarantine.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// Quarantines served so far.
    pub fn quarantines(&self) -> u32 {
        self.quarantines
    }

    /// Decomposes the counters into raw parts
    /// `(strikes, quarantines, last_strike_micros, probation)` for
    /// checkpoint persistence.
    pub fn to_parts(&self) -> (u32, u32, u64, u32) {
        (
            self.strikes,
            self.quarantines,
            self.last_strike_micros,
            self.probation,
        )
    }

    /// Reassembles the counters from [`NodeDiscipline::to_parts`] output,
    /// so a restored node resumes its strike window and probation debt
    /// exactly where the snapshot left them.
    pub fn from_parts(
        strikes: u32,
        quarantines: u32,
        last_strike_micros: u64,
        probation: u32,
    ) -> Self {
        Self {
            strikes,
            quarantines,
            last_strike_micros,
            probation,
        }
    }
}

/// Poison-task policy: a *task* whose payload repeatedly kills the worker
/// executing it is quarantined (failed without a verdict) instead of being
/// re-issued forever.
///
/// This is orthogonal to [`QuarantinePolicy`]: node discipline punishes a
/// *node* for misbehaving across tasks; poison discipline withdraws a
/// *task* that takes down whichever node touches it, so one bad payload
/// cannot grind the whole pool through crash-restart cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPolicy {
    /// Worker crashes charged to one task before it is poisoned.
    pub crash_limit: u32,
}

impl Default for PoisonPolicy {
    fn default() -> Self {
        Self { crash_limit: 3 }
    }
}

impl PoisonPolicy {
    /// Validates the policy's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on a zero crash limit (which would poison
    /// every task at its first crash-free dispatch).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.crash_limit == 0 {
            return Err(ParamError::OutOfRange {
                name: "poison.crash_limit",
                value: 0.0,
                expected: "at least 1",
            });
        }
        Ok(())
    }
}

/// Per-task crash counter (the platform owns one per in-flight task).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskDiscipline {
    crashes: u32,
}

impl TaskDiscipline {
    /// Charges one worker crash to the task; returns `true` when the
    /// policy's limit is reached and the task must be poisoned.
    pub fn record_crash(&mut self, policy: &PoisonPolicy) -> bool {
        self.crashes += 1;
        self.crashes >= policy.crash_limit
    }

    /// Crashes charged so far.
    pub fn crashes(&self) -> u32 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_policy_validation() {
        assert!(PoisonPolicy::default().validate().is_ok());
        assert!(PoisonPolicy { crash_limit: 0 }.validate().is_err());
    }

    #[test]
    fn poison_trips_exactly_at_the_crash_limit() {
        let policy = PoisonPolicy { crash_limit: 3 };
        let mut d = TaskDiscipline::default();
        assert!(!d.record_crash(&policy));
        assert!(!d.record_crash(&policy));
        assert!(d.record_crash(&policy));
        assert_eq!(d.crashes(), 3);
        // Further crashes keep reporting poisoned.
        assert!(d.record_crash(&policy));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_retries: 5,
            base_units: 1.0,
            multiplier: 2.0,
            jitter: 0.0,
        };
        assert_eq!(p.backoff_units(0, 0.5), 1.0);
        assert_eq!(p.backoff_units(1, 0.5), 2.0);
        assert_eq!(p.backoff_units(3, 0.5), 8.0);
    }

    #[test]
    fn jitter_bounds_the_scale() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let lo = p.backoff_units(0, 0.0);
        let hi = p.backoff_units(0, 1.0);
        assert!((lo - p.base_units * 0.5).abs() < 1e-12);
        assert!((hi - p.base_units * 1.5).abs() < 1e-12);
    }

    #[test]
    fn retry_policy_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad = |p: RetryPolicy| p.validate().is_err();
        assert!(bad(RetryPolicy {
            base_units: 0.0,
            ..RetryPolicy::default()
        }));
        assert!(bad(RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::default()
        }));
        assert!(bad(RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::default()
        }));
    }

    #[test]
    fn quarantine_policy_validation() {
        assert!(QuarantinePolicy::default().validate().is_ok());
        let bad = |p: QuarantinePolicy| p.validate().is_err();
        assert!(bad(QuarantinePolicy {
            strike_limit: 0,
            ..QuarantinePolicy::default()
        }));
        assert!(bad(QuarantinePolicy {
            quarantine_units: -1.0,
            ..QuarantinePolicy::default()
        }));
        assert!(bad(QuarantinePolicy {
            blacklist_after: 0,
            ..QuarantinePolicy::default()
        }));
    }

    #[test]
    fn strikes_escalate_to_quarantine_then_blacklist() {
        let policy = QuarantinePolicy {
            strike_limit: 2,
            quarantine_units: 5.0,
            blacklist_after: 2,
        };
        let mut d = NodeDiscipline::default();
        assert_eq!(d.strike(&policy), DisciplineAction::None);
        assert_eq!(d.strike(&policy), DisciplineAction::Quarantine);
        assert_eq!(d.strikes(), 0);
        assert_eq!(d.quarantines(), 1);
        assert_eq!(d.strike(&policy), DisciplineAction::None);
        assert_eq!(d.strike(&policy), DisciplineAction::Blacklist);
        assert_eq!(d.quarantines(), 2);
    }

    #[test]
    fn strike_limit_one_quarantines_immediately() {
        let policy = QuarantinePolicy {
            strike_limit: 1,
            quarantine_units: 1.0,
            blacklist_after: 3,
        };
        let mut d = NodeDiscipline::default();
        assert_eq!(d.strike(&policy), DisciplineAction::Quarantine);
        assert_eq!(d.strike(&policy), DisciplineAction::Quarantine);
        assert_eq!(d.strike(&policy), DisciplineAction::Blacklist);
    }

    #[test]
    fn strike_exactly_at_window_boundary_still_counts() {
        let policy = QuarantinePolicy {
            strike_limit: 3,
            quarantine_units: 5.0,
            blacklist_after: 3,
        };
        let window = 10;
        let mut d = NodeDiscipline::default();
        assert_eq!(d.strike_at(0, window, &policy), DisciplineAction::None);
        assert_eq!(d.strike_at(5, window, &policy), DisciplineAction::None);
        // Third strike lands with elapsed == window since the second:
        // boundary is inclusive, so the earlier strikes have NOT expired
        // and the limit trips.
        assert_eq!(
            d.strike_at(15, window, &policy),
            DisciplineAction::Quarantine
        );
        assert_eq!(d.quarantines(), 1);
    }

    #[test]
    fn strike_one_past_window_boundary_expires_the_count() {
        let policy = QuarantinePolicy {
            strike_limit: 3,
            quarantine_units: 5.0,
            blacklist_after: 3,
        };
        let window = 10;
        let mut d = NodeDiscipline::default();
        assert_eq!(d.strike_at(0, window, &policy), DisciplineAction::None);
        assert_eq!(d.strike_at(5, window, &policy), DisciplineAction::None);
        // elapsed == window + 1 — strictly past the boundary, so the two
        // stale strikes are forgotten and this counts as strike #1.
        assert_eq!(d.strike_at(16, window, &policy), DisciplineAction::None);
        assert_eq!(d.strikes(), 1);
        assert_eq!(d.quarantines(), 0);
        // The expiry clock restarts from the fresh strike.
        assert_eq!(d.strike_at(17, window, &policy), DisciplineAction::None);
        assert_eq!(
            d.strike_at(18, window, &policy),
            DisciplineAction::Quarantine
        );
    }

    #[test]
    fn weighted_strike_quarantines_in_one_blow() {
        let policy = QuarantinePolicy {
            strike_limit: 3,
            quarantine_units: 5.0,
            blacklist_after: 2,
        };
        let mut d = NodeDiscipline::default();
        assert_eq!(
            d.strike_weighted_at(3, 0, 100, &policy),
            DisciplineAction::Quarantine
        );
        assert_eq!(d.quarantines(), 1);
        // A weight spanning two full strike limits marches to blacklist.
        let mut d = NodeDiscipline::default();
        assert_eq!(
            d.strike_weighted_at(6, 0, 100, &policy),
            DisciplineAction::Blacklist
        );
    }

    #[test]
    fn probation_consumes_exactly_k_results() {
        let mut d = NodeDiscipline::default();
        assert!(!d.consume_probation(), "no probation by default");
        d.begin_probation(2);
        assert_eq!(d.probation_remaining(), 2);
        assert!(d.consume_probation());
        assert!(d.consume_probation());
        assert_eq!(d.probation_remaining(), 0);
        assert!(!d.consume_probation(), "probation served");
    }

    #[test]
    fn discipline_parts_round_trip_preserves_the_strike_window() {
        let policy = QuarantinePolicy {
            strike_limit: 3,
            quarantine_units: 5.0,
            blacklist_after: 3,
        };
        let window = 10;
        let mut d = NodeDiscipline::default();
        assert_eq!(d.strike_at(4, window, &policy), DisciplineAction::None);
        d.begin_probation(2);
        let (strikes, quarantines, last, probation) = d.to_parts();
        let mut r = NodeDiscipline::from_parts(strikes, quarantines, last, probation);
        assert_eq!(r, d);
        // The restored node remembers when its last strike landed: one
        // more strike inside the window keeps counting, while the same
        // strike on a default-initialized node would also count from
        // zero — so check window expiry semantics survive too.
        assert_eq!(r.strike_at(20, window, &policy), DisciplineAction::None);
        assert_eq!(r.strikes(), 1, "stale strike expired, fresh one counted");
        assert_eq!(r.probation_remaining(), 2);
    }

    #[test]
    fn readmitted_node_striking_again_escalates_to_blacklist() {
        let policy = QuarantinePolicy {
            strike_limit: 2,
            quarantine_units: 5.0,
            blacklist_after: 2,
        };
        let window = 100;
        let mut d = NodeDiscipline::default();
        // First quarantine.
        assert_eq!(d.strike_at(0, window, &policy), DisciplineAction::None);
        assert_eq!(
            d.strike_at(1, window, &policy),
            DisciplineAction::Quarantine
        );
        assert_eq!(d.strikes(), 0);
        // The node serves its quarantine (5 units = 5_000_000 micros far
        // exceeds the strike window) and is re-admitted — the stale-strike
        // expiry must not wipe its quarantine history.
        let readmitted_at = 5_000_001;
        assert_eq!(
            d.strike_at(readmitted_at, window, &policy),
            DisciplineAction::None
        );
        assert_eq!(d.quarantines(), 1, "quarantine history survives expiry");
        // Striking again immediately after re-admission escalates straight
        // to blacklist: second quarantine hits `blacklist_after`.
        assert_eq!(
            d.strike_at(readmitted_at + 1, window, &policy),
            DisciplineAction::Blacklist
        );
        assert_eq!(d.quarantines(), 2);
    }
}
