//! Vote bookkeeping for a single task.
//!
//! A [`VoteTally`] counts the results reported by jobs of one task. It is
//! n-ary — results are arbitrary `Ord + Clone` values — so the same type
//! serves the paper's binary worst case (§2.2) and the non-binary relaxation
//! of §5.3. Ties are broken deterministically by `Ord` so simulations are
//! reproducible.

use std::collections::BTreeMap;

/// Counts of results reported for one task.
///
/// # Examples
///
/// ```
/// use smartred_core::tally::VoteTally;
///
/// let mut tally = VoteTally::new();
/// tally.record(true);
/// tally.record(true);
/// tally.record(false);
/// assert_eq!(tally.total(), 3);
/// assert_eq!(tally.leader(), Some((&true, 2)));
/// assert_eq!(tally.margin(), 1); // leader minus runner-up
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VoteTally<V: Ord> {
    counts: BTreeMap<V, usize>,
    total: usize,
}

impl<V: Ord + Clone> VoteTally<V> {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self {
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Records one job result.
    pub fn record(&mut self, value: V) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` identical job results at once.
    pub fn record_n(&mut self, value: V, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Returns the number of votes for `value` (zero if never reported).
    pub fn count(&self, value: &V) -> usize {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Returns the total number of votes recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Returns `true` if no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Returns the number of distinct result values seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Returns the value with the most votes and its count.
    ///
    /// Ties are broken toward the smallest value under `Ord`, which keeps
    /// executions deterministic. Returns `None` on an empty tally.
    pub fn leader(&self) -> Option<(&V, usize)> {
        let mut best: Option<(&V, usize)> = None;
        for (value, &count) in &self.counts {
            match best {
                Some((_, best_count)) if count <= best_count => {}
                _ => best = Some((value, count)),
            }
        }
        best
    }

    /// Returns the count of the second-most-voted value (zero if fewer than
    /// two distinct values have been reported).
    pub fn runner_up_count(&self) -> usize {
        let leader = match self.leader() {
            Some((value, _)) => value.clone(),
            None => return 0,
        };
        self.counts
            .iter()
            .filter(|(value, _)| **value != leader)
            .map(|(_, &count)| count)
            .max()
            .unwrap_or(0)
    }

    /// Returns the margin between the leader and the runner-up.
    ///
    /// For a binary tally with `a` majority and `b` minority votes this is
    /// `a - b`, the quantity iterative redundancy compares against `d`
    /// (Fig. 4). An empty tally has margin zero.
    pub fn margin(&self) -> usize {
        match self.leader() {
            Some((_, count)) => count - self.runner_up_count(),
            None => 0,
        }
    }

    /// Returns the number of votes *not* cast for the leader.
    ///
    /// In the binary model this is the minority count `b`.
    pub fn dissent(&self) -> usize {
        match self.leader() {
            Some((_, count)) => self.total - count,
            None => 0,
        }
    }

    /// Iterates over `(value, count)` pairs in `Ord` order of the values.
    pub fn iter(&self) -> impl Iterator<Item = (&V, usize)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }
}

impl<V: Ord + Clone> FromIterator<V> for VoteTally<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        let mut tally = VoteTally::new();
        for value in iter {
            tally.record(value);
        }
        tally
    }
}

impl<V: Ord + Clone> Extend<V> for VoteTally<V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        for value in iter {
            self.record(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_has_no_leader() {
        let tally: VoteTally<bool> = VoteTally::new();
        assert!(tally.is_empty());
        assert_eq!(tally.leader(), None);
        assert_eq!(tally.margin(), 0);
        assert_eq!(tally.dissent(), 0);
        assert_eq!(tally.distinct(), 0);
    }

    #[test]
    fn binary_margin_is_a_minus_b() {
        let mut tally = VoteTally::new();
        tally.record_n(true, 6);
        tally.record_n(false, 2);
        assert_eq!(tally.leader(), Some((&true, 6)));
        assert_eq!(tally.margin(), 4);
        assert_eq!(tally.dissent(), 2);
        assert_eq!(tally.total(), 8);
    }

    #[test]
    fn tie_breaks_toward_smallest_value() {
        let mut tally = VoteTally::new();
        tally.record(7u32);
        tally.record(3u32);
        // Tie at one vote each: the smaller value wins deterministically.
        assert_eq!(tally.leader(), Some((&3, 1)));
        assert_eq!(tally.margin(), 0);
    }

    #[test]
    fn nary_margin_uses_runner_up_not_total_dissent() {
        let mut tally = VoteTally::new();
        tally.record_n("four", 5);
        tally.record_n("five", 2);
        tally.record_n("three", 2);
        // Leader 5, runner-up 2 → margin 3 even though dissent is 4.
        assert_eq!(tally.margin(), 3);
        assert_eq!(tally.dissent(), 4);
        assert_eq!(tally.distinct(), 3);
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut tally = VoteTally::new();
        tally.record_n(true, 0);
        assert!(tally.is_empty());
        assert_eq!(tally.count(&true), 0);
    }

    #[test]
    fn from_iterator_counts_everything() {
        let tally: VoteTally<u8> = [1, 1, 2, 1, 3].into_iter().collect();
        assert_eq!(tally.count(&1), 3);
        assert_eq!(tally.count(&2), 1);
        assert_eq!(tally.count(&3), 1);
        assert_eq!(tally.total(), 5);
    }

    #[test]
    fn extend_adds_to_existing_counts() {
        let mut tally: VoteTally<u8> = [1, 2].into_iter().collect();
        tally.extend([2, 2]);
        assert_eq!(tally.count(&2), 3);
        assert_eq!(tally.leader(), Some((&2, 3)));
    }

    #[test]
    fn iter_is_ordered_by_value() {
        let tally: VoteTally<u8> = [3, 1, 2].into_iter().collect();
        let values: Vec<u8> = tally.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn count_of_unseen_value_is_zero() {
        let tally: VoteTally<bool> = [true].into_iter().collect();
        assert_eq!(tally.count(&false), 0);
    }
}
