//! Validated parameter newtypes shared by strategies and analysis.
//!
//! Every knob of the three redundancy techniques is wrapped in a newtype with
//! a fallible constructor, so invalid configurations (a reliability of 1.3, an
//! even `k`) are rejected at the boundary instead of producing nonsense deep
//! inside a simulation (C-NEWTYPE / C-VALIDATE).

use crate::error::ParamError;

/// Average probability that a job returns the correct result, `r ∈ [0, 1]`.
///
/// The paper defines `r` as "the fraction of time a job returns the correct
/// response" (§3). Because jobs are assigned to nodes uniformly at random,
/// this is also the mean reliability of the node pool.
///
/// # Examples
///
/// ```
/// use smartred_core::params::Reliability;
///
/// let r = Reliability::new(0.7)?;
/// assert_eq!(r.get(), 0.7);
/// assert!((r.complement() - 0.3).abs() < 1e-12);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Reliability(f64);

impl Reliability {
    /// Creates a reliability, rejecting values outside `[0, 1]` or non-finite
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] if `r ∉ [0, 1]` and
    /// [`ParamError::NotFinite`] if `r` is NaN or infinite.
    pub fn new(r: f64) -> Result<Self, ParamError> {
        if !r.is_finite() {
            return Err(ParamError::NotFinite {
                name: "reliability",
            });
        }
        if !(0.0..=1.0).contains(&r) {
            return Err(ParamError::OutOfRange {
                name: "reliability",
                value: r,
                expected: "[0, 1]",
            });
        }
        Ok(Self(r))
    }

    /// Returns the underlying probability.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `1 - r`, the probability that a job fails.
    pub fn complement(self) -> f64 {
        1.0 - self.0
    }

    /// Returns the failure-to-success odds `θ = (1 - r) / r`.
    ///
    /// This ratio drives every iterative-redundancy formula: the confidence
    /// after a margin of `d` agreeing results is `1 / (1 + θ^d)` (Eq. 6).
    /// Returns `f64::INFINITY` when `r == 0`.
    pub fn odds_against(self) -> f64 {
        if self.0 == 0.0 {
            f64::INFINITY
        } else {
            (1.0 - self.0) / self.0
        }
    }
}

impl std::fmt::Display for Reliability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Reliability {
    type Error = ParamError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

/// A target system reliability (confidence threshold) `R ∈ (0.5, 1)`.
///
/// Iterative redundancy accepts a result once the Bayesian confidence
/// `q(r, a, b)` reaches `R` (§3.3). Values at or below one half are rejected
/// because a majority vote already guarantees confidence above `0.5`;
/// a target of exactly `1` is rejected because no finite margin attains it.
///
/// # Examples
///
/// ```
/// use smartred_core::params::Confidence;
///
/// let target = Confidence::new(0.97)?;
/// assert_eq!(target.get(), 0.97);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence(f64);

impl Confidence {
    /// Creates a confidence threshold, rejecting values outside `(0.5, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] if `R ∉ (0.5, 1)` and
    /// [`ParamError::NotFinite`] if `R` is NaN or infinite.
    pub fn new(threshold: f64) -> Result<Self, ParamError> {
        if !threshold.is_finite() {
            return Err(ParamError::NotFinite { name: "confidence" });
        }
        if threshold <= 0.5 || threshold >= 1.0 {
            return Err(ParamError::OutOfRange {
                name: "confidence",
                value: threshold,
                expected: "(0.5, 1)",
            });
        }
        Ok(Self(threshold))
    }

    /// Returns the underlying threshold.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `1 - R`, the tolerated failure probability.
    pub fn failure_budget(self) -> f64 {
        1.0 - self.0
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Confidence {
    type Error = ParamError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

/// The vote count `k ∈ {1, 3, 5, …}` of traditional or progressive redundancy.
///
/// The paper restricts `k` to odd values so a majority always exists; `k = 1`
/// is allowed and means "no redundancy".
///
/// # Examples
///
/// ```
/// use smartred_core::params::KVotes;
///
/// let k = KVotes::new(19)?;
/// assert_eq!(k.get(), 19);
/// assert_eq!(k.consensus(), 10); // (k + 1) / 2
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KVotes(usize);

impl KVotes {
    /// Creates a vote count, rejecting zero and even values.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] for `k = 0` and
    /// [`ParamError::NotOdd`] for even `k`.
    pub fn new(k: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::OutOfRange {
                name: "k",
                value: 0.0,
                expected: "{1, 3, 5, …}",
            });
        }
        if k.is_multiple_of(2) {
            return Err(ParamError::NotOdd {
                name: "k",
                value: k,
            });
        }
        Ok(Self(k))
    }

    /// Returns the underlying vote count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Returns the consensus size `(k + 1) / 2` — the minimum number of
    /// matching results that forms a majority.
    pub fn consensus(self) -> usize {
        self.0.div_ceil(2)
    }
}

impl std::fmt::Display for KVotes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<usize> for KVotes {
    type Error = ParamError;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

/// The decision margin `d ≥ 1` of iterative redundancy.
///
/// A task completes once `d` more jobs have reported one result than any
/// other (Fig. 4 of the paper). By Theorem 2, the confidence in the majority
/// result then depends only on `d`, so a user may specify `d` directly
/// without knowing node reliability.
///
/// # Examples
///
/// ```
/// use smartred_core::params::VoteMargin;
///
/// let d = VoteMargin::new(4)?;
/// assert_eq!(d.get(), 4);
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VoteMargin(usize);

impl VoteMargin {
    /// Creates a margin, rejecting zero.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] for `d = 0`.
    pub fn new(d: usize) -> Result<Self, ParamError> {
        if d == 0 {
            return Err(ParamError::OutOfRange {
                name: "d",
                value: 0.0,
                expected: "{1, 2, 3, …}",
            });
        }
        Ok(Self(d))
    }

    /// Returns the underlying margin.
    pub fn get(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for VoteMargin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<usize> for VoteMargin {
    type Error = ParamError;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_accepts_bounds() {
        assert!(Reliability::new(0.0).is_ok());
        assert!(Reliability::new(1.0).is_ok());
        assert!(Reliability::new(0.7).is_ok());
    }

    #[test]
    fn reliability_rejects_out_of_range() {
        assert!(Reliability::new(-0.01).is_err());
        assert!(Reliability::new(1.01).is_err());
        assert!(Reliability::new(f64::NAN).is_err());
        assert!(Reliability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn reliability_odds_against() {
        let r = Reliability::new(0.7).unwrap();
        assert!((r.odds_against() - 3.0 / 7.0).abs() < 1e-15);
        assert_eq!(Reliability::new(0.0).unwrap().odds_against(), f64::INFINITY);
        assert_eq!(Reliability::new(1.0).unwrap().odds_against(), 0.0);
    }

    #[test]
    fn reliability_try_from() {
        assert!(Reliability::try_from(0.5).is_ok());
        assert!(Reliability::try_from(2.0).is_err());
    }

    #[test]
    fn confidence_rejects_half_and_one() {
        assert!(Confidence::new(0.5).is_err());
        assert!(Confidence::new(1.0).is_err());
        assert!(Confidence::new(0.97).is_ok());
        assert!(Confidence::new(f64::NAN).is_err());
    }

    #[test]
    fn confidence_failure_budget() {
        let c = Confidence::new(0.97).unwrap();
        assert!((c.failure_budget() - 0.03).abs() < 1e-15);
    }

    #[test]
    fn kvotes_rejects_even_and_zero() {
        assert!(KVotes::new(0).is_err());
        assert!(KVotes::new(2).is_err());
        assert!(KVotes::new(1).is_ok());
        assert!(KVotes::new(19).is_ok());
    }

    #[test]
    fn kvotes_consensus_is_majority() {
        assert_eq!(KVotes::new(1).unwrap().consensus(), 1);
        assert_eq!(KVotes::new(3).unwrap().consensus(), 2);
        assert_eq!(KVotes::new(19).unwrap().consensus(), 10);
    }

    #[test]
    fn margin_rejects_zero() {
        assert!(VoteMargin::new(0).is_err());
        assert_eq!(VoteMargin::new(6).unwrap().get(), 6);
    }

    #[test]
    fn display_renders_inner_value() {
        assert_eq!(Reliability::new(0.7).unwrap().to_string(), "0.7");
        assert_eq!(KVotes::new(19).unwrap().to_string(), "19");
        assert_eq!(VoteMargin::new(4).unwrap().to_string(), "4");
        assert_eq!(Confidence::new(0.97).unwrap().to_string(), "0.97");
    }

    #[test]
    fn params_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Reliability>();
        assert_ss::<Confidence>();
        assert_ss::<KVotes>();
        assert_ss::<VoteMargin>();
    }
}
