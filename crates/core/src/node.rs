//! Node identity and node-attributed votes.
//!
//! The three core techniques are deliberately node-blind (assumption 2 of
//! §2.3: "the reliability of nodes cannot be determined"). The related-work
//! baselines — BOINC-style adaptive replication and credibility-based fault
//! tolerance — *do* track per-node history, so they consume votes that carry
//! the reporting node's identity.

use std::fmt;

/// Opaque identifier of a worker node.
///
/// # Examples
///
/// ```
/// use smartred_core::node::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.get(), 7);
/// assert_eq!(a.to_string(), "node-7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    pub fn new(id: u64) -> Self {
        Self(id)
    }

    /// Returns the raw integer.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

/// A job result attributed to the node that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote<V> {
    /// The reporting node.
    pub node: NodeId,
    /// The reported result.
    pub value: V,
}

impl<V> Vote<V> {
    /// Creates a vote.
    pub fn new(node: NodeId, value: V) -> Self {
        Self { node, value }
    }
}

/// A redundancy technique that uses node identities in its decisions.
///
/// The driver contract matches [`RedundancyStrategy`]
/// (deploy-wave/record/repeat), but decisions see `(node, value)` pairs and
/// implementations are typically stateful across tasks (they accumulate
/// node reputations), hence `&mut self`.
///
/// [`RedundancyStrategy`]: crate::strategy::RedundancyStrategy
pub trait NodeAwareStrategy<V: Ord + Clone> {
    /// A short human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Decides from the node-attributed votes gathered so far for one task.
    fn decide_votes(&mut self, votes: &[Vote<V>]) -> crate::strategy::Decision<V>;

    /// Informs the strategy of a task's final outcome so it can update node
    /// reputations: `accepted` is the value the system committed to.
    ///
    /// The default implementation does nothing.
    fn observe_outcome(&mut self, _votes: &[Vote<V>], _accepted: &V) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from(42u64);
        assert_eq!(id.get(), 42);
        assert_eq!(id.to_string(), "node-42");
    }

    #[test]
    fn node_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn vote_carries_node_and_value() {
        let v = Vote::new(NodeId::new(3), true);
        assert_eq!(v.node.get(), 3);
        assert!(v.value);
    }
}
