//! Error types for parameter validation and execution limits.

use std::error::Error as StdError;
use std::fmt;

/// Error returned when a redundancy parameter is rejected.
///
/// Every constructor of the validated parameter types in [`crate::params`]
/// returns this error rather than panicking, so callers can surface bad
/// configuration to their own users.
///
/// # Examples
///
/// ```
/// use smartred_core::params::Reliability;
///
/// let err = Reliability::new(1.5).unwrap_err();
/// assert!(err.to_string().contains("reliability"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A numeric parameter fell outside its valid range.
    OutOfRange {
        /// Human-readable parameter name (e.g. `"reliability"`).
        name: &'static str,
        /// The rejected value, rendered as `f64` for uniform reporting.
        value: f64,
        /// Description of the accepted range (e.g. `"[0, 1]"`).
        expected: &'static str,
    },
    /// A vote count that must be odd was even.
    NotOdd {
        /// Human-readable parameter name.
        name: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// Human-readable parameter name.
        name: &'static str,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::OutOfRange {
                name,
                value,
                expected,
            } => write!(f, "{name} value {value} is outside {expected}"),
            ParamError::NotOdd { name, value } => {
                write!(f, "{name} value {value} must be odd")
            }
            ParamError::NotFinite { name } => write!(f, "{name} must be finite"),
        }
    }
}

impl StdError for ParamError {}

/// Error returned by a task execution that exceeded its configured job cap.
///
/// Iterative redundancy can, with vanishingly small probability, require
/// arbitrarily many waves (paper §5.2); systems that must bound work per task
/// set a cap via [`crate::execution::TaskExecution::with_job_cap`] and handle
/// this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCapExceeded {
    /// The configured cap that was hit.
    pub cap: usize,
    /// Jobs already deployed when the cap was hit.
    pub deployed: usize,
}

impl fmt::Display for JobCapExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task exceeded job cap of {} ({} jobs already deployed)",
            self.cap, self.deployed
        )
    }
}

impl StdError for JobCapExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_display_mentions_name_and_range() {
        let err = ParamError::OutOfRange {
            name: "reliability",
            value: -0.25,
            expected: "[0, 1]",
        };
        let s = err.to_string();
        assert!(s.contains("reliability"));
        assert!(s.contains("-0.25"));
        assert!(s.contains("[0, 1]"));
    }

    #[test]
    fn not_odd_display_mentions_value() {
        let err = ParamError::NotOdd {
            name: "k",
            value: 4,
        };
        assert_eq!(err.to_string(), "k value 4 must be odd");
    }

    #[test]
    fn not_finite_display() {
        let err = ParamError::NotFinite { name: "confidence" };
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn job_cap_display_mentions_both_numbers() {
        let err = JobCapExceeded {
            cap: 100,
            deployed: 100,
        };
        let s = err.to_string();
        assert!(s.contains("100"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: StdError + Send + Sync + 'static>() {}
        assert_error::<ParamError>();
        assert_error::<JobCapExceeded>();
    }
}
