//! Fast Monte-Carlo estimation of strategy cost and reliability.
//!
//! This is the lightest of the three empirical platforms (the others being
//! the discrete-event simulator in `smartred-dca` and the volunteer system
//! in `smartred-volunteer`): it draws job outcomes directly from the binary
//! Byzantine model of §2.2 — every job is independently correct with
//! probability `r`, and all failures collude on a single wrong value — and
//! is used to validate the analytic formulas at scale.

use rand::Rng;

use crate::error::JobCapExceeded;
use crate::execution::TaskExecution;
use crate::params::Reliability;
use crate::strategy::RedundancyStrategy;

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of independent tasks to simulate.
    pub tasks: usize,
    /// Job-level reliability `r`.
    pub reliability: Reliability,
    /// Optional per-task job cap (tasks hitting it are counted in
    /// [`MonteCarloReport::capped_tasks`] and excluded from verdict
    /// statistics).
    pub job_cap: Option<usize>,
}

impl MonteCarloConfig {
    /// Creates a configuration with no job cap.
    pub fn new(tasks: usize, reliability: Reliability) -> Self {
        Self {
            tasks,
            reliability,
            job_cap: None,
        }
    }

    /// Sets a per-task job cap.
    pub fn with_job_cap(mut self, cap: usize) -> Self {
        self.job_cap = Some(cap);
        self
    }
}

/// Aggregate results of a Monte-Carlo run — the same quantities the paper's
/// simulation runs record (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloReport {
    /// Tasks simulated (including capped ones).
    pub tasks: usize,
    /// Tasks whose accepted verdict was the correct value.
    pub correct_tasks: usize,
    /// Total jobs deployed across all tasks.
    pub total_jobs: usize,
    /// Largest number of jobs any single task used.
    pub max_jobs_single_task: usize,
    /// Total waves across all tasks.
    pub total_waves: usize,
    /// Largest number of waves any single task used.
    pub max_waves_single_task: usize,
    /// Tasks aborted by the job cap.
    pub capped_tasks: usize,
}

impl MonteCarloReport {
    /// Empirical system reliability: fraction of completed tasks that
    /// accepted the correct result.
    pub fn reliability(&self) -> f64 {
        let completed = self.tasks - self.capped_tasks;
        if completed == 0 {
            return 0.0;
        }
        self.correct_tasks as f64 / completed as f64
    }

    /// Empirical cost factor: mean jobs per task.
    pub fn cost_factor(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.total_jobs as f64 / self.tasks as f64
    }

    /// Mean waves per task.
    pub fn mean_waves(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.total_waves as f64 / self.tasks as f64
    }
}

/// Runs `config.tasks` independent tasks of `strategy` under the binary
/// Byzantine model and aggregates the outcome.
///
/// The correct result is modeled as `true`; colluding failures all report
/// `false` (the worst case per §2.2).
pub fn estimate<S, R>(strategy: &S, config: MonteCarloConfig, rng: &mut R) -> MonteCarloReport
where
    S: RedundancyStrategy<bool>,
    R: Rng + ?Sized,
{
    let r = config.reliability.get();
    let mut report = MonteCarloReport {
        tasks: config.tasks,
        correct_tasks: 0,
        total_jobs: 0,
        max_jobs_single_task: 0,
        total_waves: 0,
        max_waves_single_task: 0,
        capped_tasks: 0,
    };
    for _ in 0..config.tasks {
        let mut task = TaskExecution::new(strategy);
        if let Some(cap) = config.job_cap {
            task = task.with_job_cap(cap);
        }
        let outcome: Result<_, JobCapExceeded> =
            task.run_with(|n| (0..n).map(|_| rng.gen_bool(r)).collect());
        match outcome {
            Ok(done) => {
                report.total_jobs += done.jobs;
                report.total_waves += done.waves;
                report.max_jobs_single_task = report.max_jobs_single_task.max(done.jobs);
                report.max_waves_single_task = report.max_waves_single_task.max(done.waves);
                if done.verdict == Some(true) {
                    report.correct_tasks += 1;
                }
            }
            Err(err) => {
                report.capped_tasks += 1;
                report.total_jobs += err.deployed;
            }
        }
    }
    report
}

/// Configuration of an n-ary (non-binary) Monte-Carlo run — the §5.3
/// relaxation where failing jobs may report one of several wrong values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaryConfig {
    /// Number of independent tasks to simulate.
    pub tasks: usize,
    /// Probability a job reports the correct value.
    pub reliability: Reliability,
    /// Number of distinct wrong values failures can produce.
    pub wrong_values: usize,
    /// Probability that a failing job joins the colluding cartel's single
    /// designated wrong value instead of picking uniformly among all wrong
    /// values. `1.0` reproduces the binary worst case of §2.2; `0.0` is the
    /// fully scattered (easiest) case.
    pub collusion: f64,
}

impl NaryConfig {
    /// Validates and creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `wrong_values == 0` or `collusion ∉ [0, 1]` — these are
    /// experiment-construction errors, not runtime conditions.
    pub fn new(
        tasks: usize,
        reliability: Reliability,
        wrong_values: usize,
        collusion: f64,
    ) -> Self {
        assert!(wrong_values >= 1, "at least one wrong value required");
        assert!(
            (0.0..=1.0).contains(&collusion),
            "collusion must be a probability"
        );
        Self {
            tasks,
            reliability,
            wrong_values,
            collusion,
        }
    }
}

/// Runs an n-ary Monte-Carlo estimate: the correct value is `0`, wrong
/// values are `1..=wrong_values`, and failures collude with probability
/// `collusion` (on value `1`) or scatter uniformly otherwise.
///
/// §5.3 argues the binary assumption "turns out to be the worst-case
/// scenario" — plurality voting over scattered wrong values reaches
/// verdicts sooner and more reliably. This estimator quantifies that:
/// with `wrong_values = 1` (or `collusion = 1`) it reproduces [`estimate`]
/// exactly, and reliability rises monotonically as collusion falls.
pub fn estimate_nary<S, R>(strategy: &S, config: NaryConfig, rng: &mut R) -> MonteCarloReport
where
    S: RedundancyStrategy<u32>,
    R: Rng + ?Sized,
{
    let r = config.reliability.get();
    let mut report = MonteCarloReport {
        tasks: config.tasks,
        correct_tasks: 0,
        total_jobs: 0,
        max_jobs_single_task: 0,
        total_waves: 0,
        max_waves_single_task: 0,
        capped_tasks: 0,
    };
    for _ in 0..config.tasks {
        let task = TaskExecution::new(strategy);
        let outcome = task.run_with(|n| {
            (0..n)
                .map(|_| {
                    if rng.gen_bool(r) {
                        0u32 // the correct value
                    } else if config.collusion >= 1.0 || rng.gen_bool(config.collusion) {
                        1u32 // the cartel's designated wrong value
                    } else {
                        rng.gen_range(1..=config.wrong_values as u32)
                    }
                })
                .collect()
        });
        match outcome {
            Ok(done) => {
                report.total_jobs += done.jobs;
                report.total_waves += done.waves;
                report.max_jobs_single_task = report.max_jobs_single_task.max(done.jobs);
                report.max_waves_single_task = report.max_waves_single_task.max(done.waves);
                if done.verdict == Some(0) {
                    report.correct_tasks += 1;
                }
            }
            Err(err) => {
                report.capped_tasks += 1;
                report.total_jobs += err.deployed;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::params::{KVotes, VoteMargin};
    use crate::strategy::{Iterative, Progressive, Traditional};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn r07() -> Reliability {
        Reliability::new(0.7).unwrap()
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    const TASKS: usize = 60_000;

    #[test]
    fn traditional_matches_eq1_and_eq2() {
        let k = KVotes::new(19).unwrap();
        let report = estimate(
            &Traditional::new(k),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(1),
        );
        assert_eq!(report.cost_factor(), 19.0);
        let expected = analysis::traditional::reliability(k, r07());
        assert!(
            (report.reliability() - expected).abs() < 0.01,
            "{} vs {expected}",
            report.reliability()
        );
    }

    #[test]
    fn progressive_matches_eq3_and_eq4() {
        let k = KVotes::new(19).unwrap();
        let report = estimate(
            &Progressive::new(k),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(2),
        );
        let cost = analysis::progressive::cost_series(k, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.1,
            "{} vs {cost}",
            report.cost_factor()
        );
        let rel = analysis::progressive::reliability(k, r07());
        assert!((report.reliability() - rel).abs() < 0.01);
        assert!(report.max_jobs_single_task <= 19);
    }

    #[test]
    fn iterative_matches_eq5_and_eq6() {
        let d = VoteMargin::new(4).unwrap();
        let report = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(3),
        );
        let cost = analysis::iterative::cost(d, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.15,
            "{} vs {cost}",
            report.cost_factor()
        );
        let rel = analysis::iterative::reliability(d, r07());
        assert!((report.reliability() - rel).abs() < 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = VoteMargin::new(3).unwrap();
        let a = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(1000, r07()),
            &mut rng(42),
        );
        let b = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(1000, r07()),
            &mut rng(42),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn job_cap_counts_capped_tasks() {
        // r = 0.5 and a tight cap: many tasks can't reach margin 6 in 8 jobs.
        let report = estimate(
            &Iterative::new(VoteMargin::new(6).unwrap()),
            MonteCarloConfig::new(2000, Reliability::new(0.5).unwrap()).with_job_cap(8),
            &mut rng(4),
        );
        assert!(report.capped_tasks > 0);
        assert!(report.capped_tasks < report.tasks);
    }

    #[test]
    fn zero_tasks_report_is_empty() {
        let report = estimate(
            &Iterative::new(VoteMargin::new(2).unwrap()),
            MonteCarloConfig::new(0, r07()),
            &mut rng(5),
        );
        assert_eq!(report.cost_factor(), 0.0);
        assert_eq!(report.reliability(), 0.0);
    }

    #[test]
    fn nary_with_full_collusion_matches_binary() {
        // Same seed, collusion = 1: the value stream is {0, 1} exactly where
        // the binary stream is {true, false}, so reports must coincide.
        let d = VoteMargin::new(4).unwrap();
        let binary = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(20_000, r07()),
            &mut rng(8),
        );
        let nary = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(20_000, r07(), 5, 1.0),
            &mut rng(8),
        );
        assert_eq!(binary.correct_tasks, nary.correct_tasks);
        assert_eq!(binary.total_jobs, nary.total_jobs);
        assert_eq!(binary.total_waves, nary.total_waves);
    }

    #[test]
    fn scattered_failures_beat_the_binary_worst_case() {
        // §5.3: "the probabilities of failure and costs of execution we have
        // presented are upper bounds for non-binary systems".
        let d = VoteMargin::new(3).unwrap();
        let colluding = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(30_000, Reliability::new(0.6).unwrap(), 8, 1.0),
            &mut rng(9),
        );
        let scattered = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(30_000, Reliability::new(0.6).unwrap(), 8, 0.0),
            &mut rng(9),
        );
        assert!(
            scattered.reliability() > colluding.reliability() + 0.01,
            "scattered {} vs colluding {}",
            scattered.reliability(),
            colluding.reliability()
        );
        assert!(scattered.cost_factor() < colluding.cost_factor());
    }

    #[test]
    fn nary_plurality_works_below_half_reliability() {
        // With scattered wrong values, even r < 0.5 tasks usually succeed —
        // the plurality effect the paper's 2^2 example describes.
        let k = KVotes::new(9).unwrap();
        let report = estimate_nary(
            &Traditional::new(k),
            NaryConfig::new(20_000, Reliability::new(0.4).unwrap(), 20, 0.0),
            &mut rng(10),
        );
        assert!(
            report.reliability() > 0.85,
            "plurality reliability {}",
            report.reliability()
        );
    }

    #[test]
    #[should_panic(expected = "at least one wrong value")]
    fn nary_rejects_zero_wrong_values() {
        NaryConfig::new(10, r07(), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "collusion must be a probability")]
    fn nary_rejects_bad_collusion() {
        NaryConfig::new(10, r07(), 3, 1.5);
    }
}
