//! Fast Monte-Carlo estimation of strategy cost and reliability.
//!
//! This is the lightest of the three empirical platforms (the others being
//! the discrete-event simulator in `smartred-dca` and the volunteer system
//! in `smartred-volunteer`): it draws job outcomes directly from the binary
//! Byzantine model of §2.2 — every job is independently correct with
//! probability `r`, and all failures collude on a single wrong value — and
//! is used to validate the analytic formulas at scale.

use rand::Rng;

use crate::error::JobCapExceeded;
use crate::execution::{ExecutionReport, TaskExecution};
use crate::parallel::{self, Threads};
use crate::params::Reliability;
use crate::strategy::RedundancyStrategy;

/// Tasks per scheduling chunk in the parallel estimators.
///
/// The chunk grid is fixed (it does **not** depend on the thread count) so
/// partial reports always cover the same task ranges; together with
/// per-task RNG streams this makes every parallel result bit-identical to
/// the single-threaded one. The value trades scheduling overhead against
/// load balance; it has no effect on results.
const TASK_CHUNK: usize = 1024;

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of independent tasks to simulate.
    pub tasks: usize,
    /// Job-level reliability `r`.
    pub reliability: Reliability,
    /// Optional per-task job cap (tasks hitting it are counted in
    /// [`MonteCarloReport::capped_tasks`] and excluded from verdict
    /// statistics).
    pub job_cap: Option<usize>,
}

impl MonteCarloConfig {
    /// Creates a configuration with no job cap.
    pub fn new(tasks: usize, reliability: Reliability) -> Self {
        Self {
            tasks,
            reliability,
            job_cap: None,
        }
    }

    /// Sets a per-task job cap.
    pub fn with_job_cap(mut self, cap: usize) -> Self {
        self.job_cap = Some(cap);
        self
    }
}

/// Aggregate results of a Monte-Carlo run — the same quantities the paper's
/// simulation runs record (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloReport {
    /// Tasks simulated (including capped ones).
    pub tasks: usize,
    /// Tasks whose accepted verdict was the correct value.
    pub correct_tasks: usize,
    /// Total jobs deployed across all tasks.
    pub total_jobs: usize,
    /// Largest number of jobs any single task used.
    pub max_jobs_single_task: usize,
    /// Total waves across all tasks.
    pub total_waves: usize,
    /// Largest number of waves any single task used.
    pub max_waves_single_task: usize,
    /// Tasks aborted by the job cap.
    pub capped_tasks: usize,
}

impl MonteCarloReport {
    /// A report covering zero tasks — the identity element of [`merge`].
    ///
    /// [`merge`]: MonteCarloReport::merge
    pub fn empty() -> Self {
        Self {
            tasks: 0,
            correct_tasks: 0,
            total_jobs: 0,
            max_jobs_single_task: 0,
            total_waves: 0,
            max_waves_single_task: 0,
            capped_tasks: 0,
        }
    }

    /// Combines two partial reports covering disjoint task sets.
    ///
    /// All fields are sums or maxima of integers, so merging is exact and
    /// order-independent — the property that lets the parallel estimators
    /// promise bit-identical output for any thread count.
    pub fn merge(self, other: Self) -> Self {
        Self {
            tasks: self.tasks + other.tasks,
            correct_tasks: self.correct_tasks + other.correct_tasks,
            total_jobs: self.total_jobs + other.total_jobs,
            max_jobs_single_task: self.max_jobs_single_task.max(other.max_jobs_single_task),
            total_waves: self.total_waves + other.total_waves,
            max_waves_single_task: self.max_waves_single_task.max(other.max_waves_single_task),
            capped_tasks: self.capped_tasks + other.capped_tasks,
        }
    }

    /// Folds one task's outcome into the report. `correct` is the value a
    /// correct verdict must equal.
    fn absorb<V: PartialEq>(
        &mut self,
        outcome: Result<ExecutionReport<V>, JobCapExceeded>,
        correct: &V,
    ) {
        match outcome {
            Ok(done) => {
                self.total_jobs += done.jobs;
                self.total_waves += done.waves;
                self.max_jobs_single_task = self.max_jobs_single_task.max(done.jobs);
                self.max_waves_single_task = self.max_waves_single_task.max(done.waves);
                if done.verdict.as_ref() == Some(correct) {
                    self.correct_tasks += 1;
                }
            }
            Err(err) => {
                self.capped_tasks += 1;
                self.total_jobs += err.deployed;
            }
        }
    }

    /// Empirical system reliability: fraction of completed tasks that
    /// accepted the correct result.
    pub fn reliability(&self) -> f64 {
        let completed = self.tasks - self.capped_tasks;
        if completed == 0 {
            return 0.0;
        }
        self.correct_tasks as f64 / completed as f64
    }

    /// Empirical cost factor: mean jobs per task.
    pub fn cost_factor(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.total_jobs as f64 / self.tasks as f64
    }

    /// Mean waves per task.
    pub fn mean_waves(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.total_waves as f64 / self.tasks as f64
    }
}

/// Runs `config.tasks` independent tasks of `strategy` under the binary
/// Byzantine model and aggregates the outcome.
///
/// The correct result is modeled as `true`; colluding failures all report
/// `false` (the worst case per §2.2).
pub fn estimate<S, R>(strategy: &S, config: MonteCarloConfig, rng: &mut R) -> MonteCarloReport
where
    S: RedundancyStrategy<bool>,
    R: Rng + ?Sized,
{
    let r = config.reliability.get();
    let mut report = MonteCarloReport::empty();
    report.tasks = config.tasks;
    for _ in 0..config.tasks {
        report.absorb(run_binary_task(strategy, &config, r, rng), &true);
    }
    report
}

/// Executes one binary-model task to completion, drawing job outcomes
/// from `rng`.
fn run_binary_task<S, R>(
    strategy: &S,
    config: &MonteCarloConfig,
    r: f64,
    rng: &mut R,
) -> Result<ExecutionReport<bool>, JobCapExceeded>
where
    S: RedundancyStrategy<bool>,
    R: Rng + ?Sized,
{
    let mut task = TaskExecution::new(strategy);
    if let Some(cap) = config.job_cap {
        task = task.with_job_cap(cap);
    }
    task.run_with(|n| (0..n).map(|_| rng.gen_bool(r)).collect())
}

/// Configuration of an n-ary (non-binary) Monte-Carlo run — the §5.3
/// relaxation where failing jobs may report one of several wrong values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaryConfig {
    /// Number of independent tasks to simulate.
    pub tasks: usize,
    /// Probability a job reports the correct value.
    pub reliability: Reliability,
    /// Number of distinct wrong values failures can produce.
    pub wrong_values: usize,
    /// Probability that a failing job joins the colluding cartel's single
    /// designated wrong value instead of picking uniformly among all wrong
    /// values. `1.0` reproduces the binary worst case of §2.2; `0.0` is the
    /// fully scattered (easiest) case.
    pub collusion: f64,
}

impl NaryConfig {
    /// Validates and creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `wrong_values == 0` or `collusion ∉ [0, 1]` — these are
    /// experiment-construction errors, not runtime conditions.
    pub fn new(
        tasks: usize,
        reliability: Reliability,
        wrong_values: usize,
        collusion: f64,
    ) -> Self {
        assert!(wrong_values >= 1, "at least one wrong value required");
        assert!(
            (0.0..=1.0).contains(&collusion),
            "collusion must be a probability"
        );
        Self {
            tasks,
            reliability,
            wrong_values,
            collusion,
        }
    }
}

/// Runs an n-ary Monte-Carlo estimate: the correct value is `0`, wrong
/// values are `1..=wrong_values`, and failures collude with probability
/// `collusion` (on value `1`) or scatter uniformly otherwise.
///
/// §5.3 argues the binary assumption "turns out to be the worst-case
/// scenario" — plurality voting over scattered wrong values reaches
/// verdicts sooner and more reliably. This estimator quantifies that:
/// with `wrong_values = 1` (or `collusion = 1`) it reproduces [`estimate`]
/// exactly, and reliability rises monotonically as collusion falls.
pub fn estimate_nary<S, R>(strategy: &S, config: NaryConfig, rng: &mut R) -> MonteCarloReport
where
    S: RedundancyStrategy<u32>,
    R: Rng + ?Sized,
{
    let r = config.reliability.get();
    let mut report = MonteCarloReport::empty();
    report.tasks = config.tasks;
    for _ in 0..config.tasks {
        report.absorb(run_nary_task(strategy, &config, r, rng), &0u32);
    }
    report
}

/// Executes one n-ary-model task to completion, drawing job outcomes from
/// `rng`.
fn run_nary_task<S, R>(
    strategy: &S,
    config: &NaryConfig,
    r: f64,
    rng: &mut R,
) -> Result<ExecutionReport<u32>, JobCapExceeded>
where
    S: RedundancyStrategy<u32>,
    R: Rng + ?Sized,
{
    let task = TaskExecution::new(strategy);
    task.run_with(|n| {
        (0..n)
            .map(|_| {
                if rng.gen_bool(r) {
                    0u32 // the correct value
                } else if config.collusion >= 1.0 || rng.gen_bool(config.collusion) {
                    1u32 // the cartel's designated wrong value
                } else {
                    rng.gen_range(1..=config.wrong_values as u32)
                }
            })
            .collect()
    })
}

/// One configuration of a parallel sweep: a strategy plus its Monte-Carlo
/// configuration.
///
/// All specs of one sweep share a strategy *type*; heterogeneous sweeps
/// (e.g. the bench figure grids mixing TR/PR/IR) use an enum implementing
/// [`RedundancyStrategy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec<S> {
    /// The redundancy strategy to simulate.
    pub strategy: S,
    /// Task count, reliability, and job cap for this configuration.
    pub config: MonteCarloConfig,
}

/// Runs every spec of a sweep across `threads` worker threads and returns
/// one report per spec, in spec order.
///
/// **Determinism contract:** task `i` of spec `s` always draws from the
/// RNG stream `task_rng(master_seed, s, i)`, and partial reports merge
/// with exact integer arithmetic, so the returned reports are
/// **bit-identical for every thread count** (including 1). Scheduling is
/// fully load-balanced: all specs' task chunks go into one flat unit list
/// that workers drain dynamically, so one expensive spec cannot serialize
/// the sweep.
pub fn sweep<S>(specs: &[SweepSpec<S>], master_seed: u64, threads: Threads) -> Vec<MonteCarloReport>
where
    S: RedundancyStrategy<bool> + Sync,
{
    // Flat (spec, task-range) unit list on the fixed chunk grid.
    let mut units: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (s, spec) in specs.iter().enumerate() {
        let mut start = 0;
        while start < spec.config.tasks {
            let end = (start + TASK_CHUNK).min(spec.config.tasks);
            units.push((s, start..end));
            start = end;
        }
    }
    let partials = parallel::map_slice(&units, threads, |_, (s, range)| {
        let spec = &specs[*s];
        (
            *s,
            run_binary_range(
                &spec.strategy,
                &spec.config,
                master_seed,
                *s as u64,
                range.clone(),
            ),
        )
    });
    let mut reports = vec![MonteCarloReport::empty(); specs.len()];
    for (s, partial) in partials {
        reports[s] = reports[s].merge(partial);
    }
    reports
}

/// Runs one strategy over many configurations in parallel — the sweep
/// behind reliability curves (one [`MonteCarloConfig`] per `r` grid
/// point). Deterministic for any thread count; see [`sweep`].
pub fn run_many<S>(
    strategy: &S,
    configs: &[MonteCarloConfig],
    master_seed: u64,
    threads: Threads,
) -> Vec<MonteCarloReport>
where
    S: RedundancyStrategy<bool> + Sync + Clone,
{
    let specs: Vec<SweepSpec<S>> = configs
        .iter()
        .map(|&config| SweepSpec {
            strategy: strategy.clone(),
            config,
        })
        .collect();
    sweep(&specs, master_seed, threads)
}

/// Parallel, seeded version of [`estimate`]: fans `config.tasks` across
/// `threads` workers with one counter-based RNG stream per task
/// (stream 0 of `master_seed`).
///
/// Unlike [`estimate`], which threads a single generator through every
/// task in order, each task here owns the stream
/// `task_rng(master_seed, 0, task_index)` — that is what makes the result
/// bit-identical for every thread count. The two functions therefore
/// produce *statistically* equivalent but not numerically equal reports.
pub fn estimate_par<S>(
    strategy: &S,
    config: MonteCarloConfig,
    master_seed: u64,
    threads: Threads,
) -> MonteCarloReport
where
    S: RedundancyStrategy<bool> + Sync,
{
    parallel::fold_chunked(
        config.tasks,
        TASK_CHUNK,
        threads,
        MonteCarloReport::empty(),
        |range| run_binary_range(strategy, &config, master_seed, 0, range),
        MonteCarloReport::merge,
    )
}

/// Parallel, seeded version of [`estimate_nary`]; the n-ary counterpart
/// of [`estimate_par`], using the same stream layout (stream 0, one
/// stream per task). With `collusion = 1.0` each job draws exactly one
/// random number, just like the binary model, so the report coincides
/// with [`estimate_par`]'s for the same seed — mirroring the sequential
/// pair.
pub fn estimate_nary_par<S>(
    strategy: &S,
    config: NaryConfig,
    master_seed: u64,
    threads: Threads,
) -> MonteCarloReport
where
    S: RedundancyStrategy<u32> + Sync,
{
    let r = config.reliability.get();
    parallel::fold_chunked(
        config.tasks,
        TASK_CHUNK,
        threads,
        MonteCarloReport::empty(),
        |range| {
            let mut report = MonteCarloReport::empty();
            report.tasks = range.len();
            for index in range {
                let mut rng = parallel::task_rng(master_seed, 0, index as u64);
                report.absorb(run_nary_task(strategy, &config, r, &mut rng), &0u32);
            }
            report
        },
        MonteCarloReport::merge,
    )
}

/// Runs the binary-model tasks `range` of stream `stream`, one RNG stream
/// per task index.
fn run_binary_range<S>(
    strategy: &S,
    config: &MonteCarloConfig,
    master_seed: u64,
    stream: u64,
    range: std::ops::Range<usize>,
) -> MonteCarloReport
where
    S: RedundancyStrategy<bool>,
{
    let r = config.reliability.get();
    let mut report = MonteCarloReport::empty();
    report.tasks = range.len();
    for index in range {
        let mut rng = parallel::task_rng(master_seed, stream, index as u64);
        report.absorb(run_binary_task(strategy, config, r, &mut rng), &true);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::params::{KVotes, VoteMargin};
    use crate::strategy::{Iterative, Progressive, Traditional};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn r07() -> Reliability {
        Reliability::new(0.7).unwrap()
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    const TASKS: usize = 60_000;

    #[test]
    fn traditional_matches_eq1_and_eq2() {
        let k = KVotes::new(19).unwrap();
        let report = estimate(
            &Traditional::new(k),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(1),
        );
        assert_eq!(report.cost_factor(), 19.0);
        let expected = analysis::traditional::reliability(k, r07());
        assert!(
            (report.reliability() - expected).abs() < 0.01,
            "{} vs {expected}",
            report.reliability()
        );
    }

    #[test]
    fn progressive_matches_eq3_and_eq4() {
        let k = KVotes::new(19).unwrap();
        let report = estimate(
            &Progressive::new(k),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(2),
        );
        let cost = analysis::progressive::cost_series(k, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.1,
            "{} vs {cost}",
            report.cost_factor()
        );
        let rel = analysis::progressive::reliability(k, r07());
        assert!((report.reliability() - rel).abs() < 0.01);
        assert!(report.max_jobs_single_task <= 19);
    }

    #[test]
    fn iterative_matches_eq5_and_eq6() {
        let d = VoteMargin::new(4).unwrap();
        let report = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(TASKS, r07()),
            &mut rng(3),
        );
        let cost = analysis::iterative::cost(d, r07());
        assert!(
            (report.cost_factor() - cost).abs() < 0.15,
            "{} vs {cost}",
            report.cost_factor()
        );
        let rel = analysis::iterative::reliability(d, r07());
        assert!((report.reliability() - rel).abs() < 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = VoteMargin::new(3).unwrap();
        let a = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(1000, r07()),
            &mut rng(42),
        );
        let b = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(1000, r07()),
            &mut rng(42),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn job_cap_counts_capped_tasks() {
        // r = 0.5 and a tight cap: many tasks can't reach margin 6 in 8 jobs.
        let report = estimate(
            &Iterative::new(VoteMargin::new(6).unwrap()),
            MonteCarloConfig::new(2000, Reliability::new(0.5).unwrap()).with_job_cap(8),
            &mut rng(4),
        );
        assert!(report.capped_tasks > 0);
        assert!(report.capped_tasks < report.tasks);
    }

    #[test]
    fn zero_tasks_report_is_empty() {
        let report = estimate(
            &Iterative::new(VoteMargin::new(2).unwrap()),
            MonteCarloConfig::new(0, r07()),
            &mut rng(5),
        );
        assert_eq!(report.cost_factor(), 0.0);
        assert_eq!(report.reliability(), 0.0);
    }

    #[test]
    fn nary_with_full_collusion_matches_binary() {
        // Same seed, collusion = 1: the value stream is {0, 1} exactly where
        // the binary stream is {true, false}, so reports must coincide.
        let d = VoteMargin::new(4).unwrap();
        let binary = estimate(
            &Iterative::new(d),
            MonteCarloConfig::new(20_000, r07()),
            &mut rng(8),
        );
        let nary = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(20_000, r07(), 5, 1.0),
            &mut rng(8),
        );
        assert_eq!(binary.correct_tasks, nary.correct_tasks);
        assert_eq!(binary.total_jobs, nary.total_jobs);
        assert_eq!(binary.total_waves, nary.total_waves);
    }

    #[test]
    fn scattered_failures_beat_the_binary_worst_case() {
        // §5.3: "the probabilities of failure and costs of execution we have
        // presented are upper bounds for non-binary systems".
        let d = VoteMargin::new(3).unwrap();
        let colluding = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(30_000, Reliability::new(0.6).unwrap(), 8, 1.0),
            &mut rng(9),
        );
        let scattered = estimate_nary(
            &Iterative::new(d),
            NaryConfig::new(30_000, Reliability::new(0.6).unwrap(), 8, 0.0),
            &mut rng(9),
        );
        assert!(
            scattered.reliability() > colluding.reliability() + 0.01,
            "scattered {} vs colluding {}",
            scattered.reliability(),
            colluding.reliability()
        );
        assert!(scattered.cost_factor() < colluding.cost_factor());
    }

    #[test]
    fn nary_plurality_works_below_half_reliability() {
        // With scattered wrong values, even r < 0.5 tasks usually succeed —
        // the plurality effect the paper's 2^2 example describes.
        let k = KVotes::new(9).unwrap();
        let report = estimate_nary(
            &Traditional::new(k),
            NaryConfig::new(20_000, Reliability::new(0.4).unwrap(), 20, 0.0),
            &mut rng(10),
        );
        assert!(
            report.reliability() > 0.85,
            "plurality reliability {}",
            report.reliability()
        );
    }

    #[test]
    fn parallel_estimate_matches_analysis() {
        let d = VoteMargin::new(4).unwrap();
        let report = estimate_par(
            &Iterative::new(d),
            MonteCarloConfig::new(TASKS, r07()),
            7,
            Threads::fixed(4),
        );
        let cost = analysis::iterative::cost(d, r07());
        let rel = analysis::iterative::reliability(d, r07());
        assert!((report.cost_factor() - cost).abs() < 0.15);
        assert!((report.reliability() - rel).abs() < 0.01);
        assert_eq!(report.tasks, TASKS);
    }

    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let d = VoteMargin::new(3).unwrap();
        let config = MonteCarloConfig::new(5_000, r07()).with_job_cap(200);
        let reference = estimate_par(&Iterative::new(d), config, 99, Threads::fixed(1));
        for threads in [2usize, 4, 8] {
            let got = estimate_par(&Iterative::new(d), config, 99, Threads::fixed(threads));
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_estimate_matches_explicit_per_task_loop() {
        // The engine's contract spelled out: task i draws from
        // task_rng(seed, 0, i), nothing more, nothing less.
        let d = VoteMargin::new(3).unwrap();
        let config = MonteCarloConfig::new(2_000, r07());
        let engine = estimate_par(&Iterative::new(d), config, 5, Threads::fixed(8));
        let mut by_hand = MonteCarloReport::empty();
        by_hand.tasks = config.tasks;
        let r = config.reliability.get();
        for i in 0..config.tasks {
            let mut rng = crate::parallel::task_rng(5, 0, i as u64);
            by_hand.absorb(
                run_binary_task(&Iterative::new(d), &config, r, &mut rng),
                &true,
            );
        }
        assert_eq!(engine, by_hand);
    }

    #[test]
    fn sweep_agrees_with_per_spec_estimates_and_is_invariant() {
        let specs = [
            SweepSpec {
                strategy: Iterative::new(VoteMargin::new(2).unwrap()),
                config: MonteCarloConfig::new(3_000, r07()),
            },
            SweepSpec {
                strategy: Iterative::new(VoteMargin::new(4).unwrap()),
                config: MonteCarloConfig::new(1_500, Reliability::new(0.9).unwrap()),
            },
            SweepSpec {
                strategy: Iterative::new(VoteMargin::new(1).unwrap()),
                config: MonteCarloConfig::new(0, r07()),
            },
        ];
        let reference = sweep(&specs, 31, Threads::fixed(1));
        for threads in [2usize, 8] {
            assert_eq!(sweep(&specs, 31, Threads::fixed(threads)), reference);
        }
        // Spec s is stream s: spec 0 of a one-spec sweep equals estimate_par
        // (which uses stream 0).
        let solo = estimate_par(&specs[0].strategy, specs[0].config, 31, Threads::fixed(3));
        assert_eq!(reference[0], solo);
        assert_eq!(reference[2], {
            let mut empty = MonteCarloReport::empty();
            empty.tasks = 0;
            empty
        });
    }

    #[test]
    fn run_many_matches_sweep_with_cloned_strategy() {
        let d = VoteMargin::new(3).unwrap();
        let configs = [
            MonteCarloConfig::new(2_000, r07()),
            MonteCarloConfig::new(2_000, Reliability::new(0.8).unwrap()),
        ];
        let many = run_many(&Iterative::new(d), &configs, 17, Threads::fixed(4));
        let specs: Vec<SweepSpec<Iterative>> = configs
            .iter()
            .map(|&config| SweepSpec {
                strategy: Iterative::new(d),
                config,
            })
            .collect();
        assert_eq!(many, sweep(&specs, 17, Threads::fixed(1)));
        assert_eq!(many.len(), 2);
        // Different reliabilities must genuinely differ.
        assert!(many[0].total_jobs > many[1].total_jobs);
    }

    #[test]
    fn nary_par_with_full_collusion_matches_binary_par() {
        let d = VoteMargin::new(4).unwrap();
        let binary = estimate_par(
            &Iterative::new(d),
            MonteCarloConfig::new(10_000, r07()),
            8,
            Threads::fixed(4),
        );
        let nary = estimate_nary_par(
            &Iterative::new(d),
            NaryConfig::new(10_000, r07(), 5, 1.0),
            8,
            Threads::fixed(2),
        );
        assert_eq!(binary.correct_tasks, nary.correct_tasks);
        assert_eq!(binary.total_jobs, nary.total_jobs);
        assert_eq!(binary.total_waves, nary.total_waves);
    }

    #[test]
    fn nary_par_is_thread_count_invariant() {
        let d = VoteMargin::new(3).unwrap();
        let config = NaryConfig::new(4_000, Reliability::new(0.6).unwrap(), 6, 0.3);
        let reference = estimate_nary_par(&Iterative::new(d), config, 13, Threads::fixed(1));
        for threads in [2usize, 8] {
            assert_eq!(
                estimate_nary_par(&Iterative::new(d), config, 13, Threads::fixed(threads)),
                reference
            );
        }
    }

    #[test]
    fn merge_is_exact_and_empty_is_identity() {
        let d = VoteMargin::new(2).unwrap();
        let a = estimate_par(
            &Iterative::new(d),
            MonteCarloConfig::new(500, r07()),
            1,
            Threads::fixed(1),
        );
        assert_eq!(a.merge(MonteCarloReport::empty()), a);
        assert_eq!(MonteCarloReport::empty().merge(a), a);
        let b = estimate_par(
            &Iterative::new(d),
            MonteCarloConfig::new(700, r07()),
            2,
            Threads::fixed(1),
        );
        let ab = a.merge(b);
        assert_eq!(ab.tasks, 1200);
        assert_eq!(ab.total_jobs, a.total_jobs + b.total_jobs);
        assert_eq!(
            ab.max_jobs_single_task,
            a.max_jobs_single_task.max(b.max_jobs_single_task)
        );
    }

    #[test]
    #[should_panic(expected = "at least one wrong value")]
    fn nary_rejects_zero_wrong_values() {
        NaryConfig::new(10, r07(), 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "collusion must be a probability")]
    fn nary_rejects_bad_collusion() {
        NaryConfig::new(10, r07(), 3, 1.5);
    }
}
