//! Credibility-based fault tolerance (related-work baseline, §5.1 / §6).
//!
//! Sarmenta's sabotage-tolerance scheme estimates per-node credibilities
//! from spot-checks and accepts a result once the conditional probability
//! that it is correct reaches a threshold. The paper notes its probability
//! calculations "resemble the complex form of the iterative redundancy
//! algorithm" but require reliability estimates — with the attendant costs
//! (spot-check jobs) and vulnerabilities (credibility farming, identity
//! churn) that iterative redundancy avoids.

use std::num::NonZeroUsize;

use crate::node::{NodeAwareStrategy, Vote};
use crate::params::Confidence;
use crate::reputation::ReputationStore;
use crate::strategy::Decision;

/// Credibility-based voting: accept the leading result once its Bayesian
/// credibility (from per-node spot-check credibilities) reaches the
/// threshold.
///
/// Votes from blacklisted nodes are ignored. The per-result credibility is
/// a naive-Bayes combination: with each voter `i` assigned credibility
/// `c_i`, the odds that value `v` is correct against the alternative are
/// `Π_{i votes v} c_i/(1−c_i) × Π_{j votes ≠v} (1−c_j)/c_j` (binary
/// worst-case model, mirroring `q(r, a, b)` with per-node `r`).
#[derive(Debug, Clone)]
pub struct CredibilityVoting {
    store: ReputationStore,
    threshold: Confidence,
    /// Jobs deployed per wave when credibility is still insufficient.
    wave_size: NonZeroUsize,
}

impl CredibilityVoting {
    /// Creates a credibility-based validator.
    pub fn new(store: ReputationStore, threshold: Confidence) -> Self {
        Self {
            store,
            threshold,
            wave_size: NonZeroUsize::new(1).expect("1 > 0"),
        }
    }

    /// Sets how many jobs are deployed per top-up wave (default 1).
    pub fn with_wave_size(mut self, wave_size: NonZeroUsize) -> Self {
        self.wave_size = wave_size;
        self
    }

    /// Shared access to the reputation store.
    pub fn store(&self) -> &ReputationStore {
        &self.store
    }

    /// Mutable access to the reputation store (spot-check updates, identity
    /// churn).
    pub fn store_mut(&mut self) -> &mut ReputationStore {
        &mut self.store
    }

    /// Computes the credibility that `candidate` is the correct value given
    /// the (non-blacklisted) votes.
    pub fn result_credibility<V: Ord + Clone>(&self, votes: &[Vote<V>], candidate: &V) -> f64 {
        let mut log_odds = 0.0_f64;
        for vote in votes {
            if self.store.is_blacklisted(vote.node) {
                continue;
            }
            // Clamp so a perfectly-credible node cannot produce infinite
            // odds from a single vote.
            let c = self.store.credibility(vote.node).clamp(1e-9, 1.0 - 1e-9);
            let weight = (c / (1.0 - c)).ln();
            if vote.value == *candidate {
                log_odds += weight;
            } else {
                log_odds -= weight;
            }
        }
        1.0 / (1.0 + (-log_odds).exp())
    }

    fn leading_candidate<V: Ord + Clone>(&self, votes: &[Vote<V>]) -> Option<V> {
        let mut best: Option<(V, f64)> = None;
        for vote in votes {
            if self.store.is_blacklisted(vote.node) {
                continue;
            }
            let cred = self.result_credibility(votes, &vote.value);
            match &best {
                Some((value, best_cred))
                    if *best_cred > cred || (*best_cred == cred && *value <= vote.value) => {}
                _ => best = Some((vote.value.clone(), cred)),
            }
        }
        best.map(|(value, _)| value)
    }
}

impl<V: Ord + Clone> NodeAwareStrategy<V> for CredibilityVoting {
    fn name(&self) -> &'static str {
        "credibility-voting"
    }

    fn decide_votes(&mut self, votes: &[Vote<V>]) -> Decision<V> {
        if let Some(candidate) = self.leading_candidate(votes) {
            if self.result_credibility(votes, &candidate) >= self.threshold.get() {
                return Decision::Accept(candidate);
            }
        }
        Decision::Deploy(self.wave_size)
    }

    fn observe_outcome(&mut self, votes: &[Vote<V>], accepted: &V) {
        for vote in votes {
            self.store
                .record_validation(vote.node, vote.value == *accepted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::reputation::ReputationConfig;

    fn validator(threshold: f64) -> CredibilityVoting {
        CredibilityVoting::new(
            ReputationStore::new(ReputationConfig::default()),
            Confidence::new(threshold).unwrap(),
        )
    }

    #[test]
    fn no_votes_deploys_a_wave() {
        let mut v = validator(0.9);
        assert_eq!(
            NodeAwareStrategy::<bool>::decide_votes(&mut v, &[]).deploy_count(),
            Some(1)
        );
    }

    #[test]
    fn single_prior_credibility_vote_is_not_enough_for_high_threshold() {
        // Prior credibility 0.7 < 0.9 threshold → replicate.
        let mut v = validator(0.9);
        let votes = [Vote::new(NodeId::new(1), true)];
        assert!(matches!(v.decide_votes(&votes), Decision::Deploy(_)));
    }

    #[test]
    fn agreeing_votes_accumulate_credibility() {
        let mut v = validator(0.9);
        let votes = [
            Vote::new(NodeId::new(1), true),
            Vote::new(NodeId::new(2), true),
            Vote::new(NodeId::new(3), true),
        ];
        // Three prior-0.7 voters: odds (7/3)³ ≈ 12.7 → credibility ≈ 0.927.
        assert_eq!(v.decide_votes(&votes), Decision::Accept(true));
    }

    #[test]
    fn credibility_matches_q_formula_for_uniform_nodes() {
        // With every node at credibility r, result credibility must equal
        // q(r, a, b) — the paper's observation that credibility-based fault
        // tolerance resembles the complex iterative algorithm.
        use crate::analysis::confidence::confidence;
        use crate::params::Reliability;
        let v = validator(0.9);
        let votes = [
            Vote::new(NodeId::new(1), true),
            Vote::new(NodeId::new(2), true),
            Vote::new(NodeId::new(3), true),
            Vote::new(NodeId::new(4), false),
        ];
        let got = v.result_credibility(&votes, &true);
        let expected = confidence(Reliability::new(0.7).unwrap(), 3, 1);
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn spot_checked_nodes_carry_more_weight() {
        let mut v = validator(0.9);
        let trusted = NodeId::new(1);
        for _ in 0..20 {
            v.store_mut().record_spot_check(trusted, true);
        }
        let votes = [Vote::new(trusted, true), Vote::new(NodeId::new(2), false)];
        // The heavily spot-checked node outweighs the unknown dissenter.
        assert!(v.result_credibility(&votes, &true) > 0.9);
        assert_eq!(v.decide_votes(&votes), Decision::Accept(true));
    }

    #[test]
    fn blacklisted_votes_are_ignored() {
        let mut v = validator(0.9);
        let bad = NodeId::new(13);
        v.store_mut().record_spot_check(bad, false);
        assert!(v.store().is_blacklisted(bad));
        let votes = [
            Vote::new(bad, false),
            Vote::new(NodeId::new(1), true),
            Vote::new(NodeId::new(2), true),
            Vote::new(NodeId::new(3), true),
        ];
        assert_eq!(v.decide_votes(&votes), Decision::Accept(true));
        // The blacklisted dissent did not dilute credibility at all.
        let without_bad = v.result_credibility(&votes[1..], &true);
        assert!((v.result_credibility(&votes, &true) - without_bad).abs() < 1e-12);
    }

    #[test]
    fn wave_size_is_configurable() {
        let mut v = validator(0.99).with_wave_size(NonZeroUsize::new(3).expect("3 > 0"));
        assert_eq!(
            NodeAwareStrategy::<bool>::decide_votes(&mut v, &[]).deploy_count(),
            Some(3)
        );
    }

    #[test]
    fn observe_outcome_updates_agreement_stats() {
        let mut v = validator(0.9);
        let node = NodeId::new(7);
        let votes = [Vote::new(node, true)];
        v.observe_outcome(&votes, &true);
        assert_eq!(v.store().record(node).agreements, 1);
        v.observe_outcome(&[Vote::new(node, false)], &true);
        assert_eq!(v.store().record(node).disagreements, 1);
    }
}
