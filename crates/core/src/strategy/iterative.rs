//! Iterative redundancy, in both the simple and the complex form (paper §3.3).

use crate::analysis::confidence::{minimum_margin, ConfidenceTable};
use crate::error::ParamError;
use crate::params::{Confidence, Reliability, VoteMargin};
use crate::strategy::{deploy, Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Iterative redundancy, simple form (Fig. 4 of the paper).
///
/// The task completes once the leading result has `d` more votes than the
/// runner-up; until then the strategy deploys exactly `d − margin` jobs —
/// the minimum that could close the gap if they all agree with the leader.
///
/// By Theorem 2, the confidence in the accepted result depends only on `d`,
/// never on how many disagreeing votes were seen along the way, so neither
/// the user nor the system needs to know node reliability. This is the
/// paper's headline contribution: the minimum-cost strategy for a desired
/// confidence level.
///
/// # Examples
///
/// ```
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::{Decision, Iterative, RedundancyStrategy};
/// use smartred_core::tally::VoteTally;
///
/// let ir = Iterative::new(VoteMargin::new(6)?);
/// let mut tally = VoteTally::new();
/// assert_eq!(ir.decide(&tally).deploy_count(), Some(6));
/// tally.record_n(true, 4);
/// tally.record_n(false, 2);
/// // Margin is 2; four more agreeing votes would make it 6.
/// assert_eq!(ir.decide(&tally).deploy_count(), Some(4));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iterative {
    d: VoteMargin,
}

impl Iterative {
    /// Creates an iterative strategy that stops at margin `d`.
    pub fn new(d: VoteMargin) -> Self {
        Self { d }
    }

    /// Creates the iterative strategy whose confidence matches `target` when
    /// node reliability is `r` — i.e. with `d = d(r, R, 0)` (paper §3.3).
    ///
    /// This is a convenience for experiments: the strategy itself never uses
    /// `r` at runtime.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] if `r ≤ 0.5`, for which no finite
    /// margin can achieve a confidence above one half.
    pub fn for_confidence(r: Reliability, target: Confidence) -> Result<Self, ParamError> {
        let d = minimum_margin(r, target)?;
        Ok(Self { d })
    }

    /// Returns the configured margin.
    pub fn d(&self) -> VoteMargin {
        self.d
    }
}

impl<V: Ord + Clone> RedundancyStrategy<V> for Iterative {
    fn name(&self) -> &'static str {
        "iterative"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        let d = self.d.get();
        let margin = tally.margin();
        if margin >= d {
            let (value, _) = tally.leader().expect("nonzero margin implies a leader");
            Decision::Accept(value.clone())
        } else {
            deploy(d - margin)
        }
    }
}

/// Iterative redundancy, complex form: the naïve algorithm that recomputes
/// Bayesian confidence from node reliability each wave (paper §3.3).
///
/// Given `b` minority votes, the strategy deploys enough jobs for the
/// majority to reach `d(r, R, b)` votes — the minimum `a` with
/// `q(r, a, b) ≥ R` — and accepts once that confidence is reached.
///
/// Theorem 1 proves `q(r, a, b) = q(r, a + j, b + j)`, so this strategy
/// deploys *exactly* the same waves as [`Iterative`] with
/// `d = d(r, R, 0)`; it exists to make that equivalence testable (ablation
/// A1 in `DESIGN.md`) and to serve systems that do track per-class
/// reliabilities (§5.3).
///
/// # Examples
///
/// ```
/// use smartred_core::params::{Confidence, Reliability};
/// use smartred_core::strategy::{IterativeComplex, RedundancyStrategy};
/// use smartred_core::tally::VoteTally;
///
/// let r = Reliability::new(0.7)?;
/// let target = Confidence::new(0.96)?;
/// let ir = IterativeComplex::new(r, target)?;
/// // First wave: the minimum unanimous count reaching 0.96 confidence.
/// assert_eq!(ir.decide(&VoteTally::<bool>::new()).deploy_count(), Some(4));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IterativeComplex {
    r: Reliability,
    target: Confidence,
    /// Cached `q(r, a, b)` values — `decide` runs in the per-task, per-wave
    /// hot path of every Monte-Carlo sweep, and each call would otherwise
    /// re-derive `θ^margin` several times during the majority search. The
    /// table returns bit-identical values to the uncached
    /// [`confidence`](crate::analysis::confidence::confidence) function,
    /// so behavior is unchanged.
    table: ConfidenceTable,
}

impl PartialEq for IterativeComplex {
    fn eq(&self, other: &Self) -> bool {
        // The table is derived from (r, target); it carries no extra state.
        self.r == other.r && self.target == other.target
    }
}

impl IterativeComplex {
    /// Creates a complex iterative strategy for node reliability `r` and
    /// target confidence `R`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] if `r ≤ 0.5`: with a majority of
    /// faulty nodes no amount of voting raises confidence above one half.
    pub fn new(r: Reliability, target: Confidence) -> Result<Self, ParamError> {
        if r.get() <= 0.5 {
            return Err(ParamError::OutOfRange {
                name: "reliability",
                value: r.get(),
                expected: "(0.5, 1] for the complex algorithm",
            });
        }
        // Margins queried at runtime never exceed the stopping margin
        // d(r, R, 0): waves deploy exactly the jobs that would close the
        // gap, so the tally can only reach — never overshoot — it. A
        // little slack keeps the (bit-identical) fallback path cold.
        let d0 = minimum_margin(r, target)?.get();
        let table = ConfidenceTable::new(r, d0 + 2);
        Ok(Self { r, target, table })
    }

    /// Returns the node reliability this strategy assumes.
    pub fn reliability(&self) -> Reliability {
        self.r
    }

    /// Returns the target confidence.
    pub fn target(&self) -> Confidence {
        self.target
    }

    /// Returns the margin `d(r, R, 0)` this strategy is equivalent to
    /// (Theorem 1).
    pub fn equivalent_margin(&self) -> VoteMargin {
        minimum_margin(self.r, self.target)
            .expect("constructor guarantees r > 0.5, so a finite margin exists")
    }

    /// The literal `d(r, R, b)` of the paper: the minimum majority count `a`
    /// such that `q(r, a, b) ≥ R`, found by testing consecutive values.
    fn required_majority(&self, b: usize) -> usize {
        let mut a = b; // q(r, b, b) = 0.5 < R, so start searching above b.
        loop {
            a += 1;
            if self.table.q(a, b) >= self.target.get() {
                return a;
            }
        }
    }
}

impl<V: Ord + Clone> RedundancyStrategy<V> for IterativeComplex {
    fn name(&self) -> &'static str {
        "iterative-complex"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        // The paper's analysis is binary; for n-ary tallies we treat the
        // runner-up count as the disagreeing evidence, which is the
        // worst-case reading (§5.3 shows non-binary can only help).
        let a = tally.leader().map(|(_, count)| count).unwrap_or(0);
        let b = tally.runner_up_count();
        if a > b && self.table.q(a, b) >= self.target.get() {
            let (value, _) = tally.leader().expect("a > b implies a leader");
            return Decision::Accept(value.clone());
        }
        deploy(self.required_majority(b) - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn margin(d: usize) -> VoteMargin {
        VoteMargin::new(d).unwrap()
    }

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn conf(v: f64) -> Confidence {
        Confidence::new(v).unwrap()
    }

    #[test]
    fn first_wave_deploys_d_jobs() {
        let ir = Iterative::new(margin(6));
        let tally: VoteTally<bool> = VoteTally::new();
        assert_eq!(ir.decide(&tally).deploy_count(), Some(6));
    }

    #[test]
    fn paper_example_six_sought_four_versus_two() {
        // §3.3: "if the algorithm first sought 6 unanimously agreeing results,
        // but got 4 agreeing and 2 disagreeing results, the algorithm would
        // distribute 4 additional jobs in an effort to produce an 8-to-2
        // majority."
        let ir = Iterative::new(margin(6));
        let mut tally = VoteTally::new();
        tally.record_n(true, 4);
        tally.record_n(false, 2);
        assert_eq!(ir.decide(&tally).deploy_count(), Some(4));
    }

    #[test]
    fn accepts_at_exact_margin() {
        let ir = Iterative::new(margin(4));
        let mut tally = VoteTally::new();
        tally.record_n(false, 104);
        tally.record_n(true, 100);
        assert_eq!(ir.decide(&tally), Decision::Accept(false));
    }

    #[test]
    fn unbounded_job_bound() {
        let ir = Iterative::new(margin(3));
        assert_eq!(RedundancyStrategy::<bool>::job_bound(&ir), None);
    }

    #[test]
    fn for_confidence_matches_paper_example() {
        // §3.3: r = 0.7; four unanimous jobs give confidence
        // 0.7⁴/(0.7⁴+0.3⁴) ≈ 0.9674 — the paper's "0.97" after rounding.
        let ir = Iterative::for_confidence(r(0.7), conf(0.96)).unwrap();
        assert_eq!(ir.d().get(), 4);
    }

    #[test]
    fn for_confidence_rejects_unreliable_pool() {
        assert!(Iterative::for_confidence(r(0.5), conf(0.97)).is_err());
        assert!(Iterative::for_confidence(r(0.3), conf(0.97)).is_err());
    }

    #[test]
    fn complex_rejects_r_at_or_below_half() {
        assert!(IterativeComplex::new(r(0.5), conf(0.97)).is_err());
        assert!(IterativeComplex::new(r(0.7), conf(0.97)).is_ok());
    }

    #[test]
    fn complex_first_wave_is_equivalent_margin() {
        let ir = IterativeComplex::new(r(0.7), conf(0.96)).unwrap();
        assert_eq!(ir.equivalent_margin().get(), 4);
        let tally: VoteTally<bool> = VoteTally::new();
        assert_eq!(ir.decide(&tally).deploy_count(), Some(4));
    }

    #[test]
    fn complex_paper_example_three_to_one_needs_two_more() {
        // §3.3: with r = 0.7 and target ≈ 0.97, after a 3-to-1 split "at
        // least two more jobs must return the majority result".
        let ir = IterativeComplex::new(r(0.7), conf(0.96)).unwrap();
        let mut tally = VoteTally::new();
        tally.record_n(true, 3);
        tally.record(false);
        assert_eq!(ir.decide(&tally).deploy_count(), Some(2));
    }

    #[test]
    fn complex_and_simple_agree_on_adversarial_paths() {
        // Theorem 1 consequence: identical wave-by-wave deployments.
        let complex = IterativeComplex::new(r(0.8), conf(0.99)).unwrap();
        let simple = Iterative::new(complex.equivalent_margin());
        // Walk a deterministic pseudo-random result path and compare at each
        // step, including non-wave-aligned tallies.
        let mut tally: VoteTally<bool> = VoteTally::new();
        let mut state = 0x9e37_79b9_u32;
        for _ in 0..200 {
            let s = RedundancyStrategy::<bool>::decide(&simple, &tally);
            let c = RedundancyStrategy::<bool>::decide(&complex, &tally);
            assert_eq!(s, c, "diverged at tally {tally:?}");
            if let Decision::Accept(_) = s {
                tally = VoteTally::new();
                continue;
            }
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            tally.record(state & 0b100 != 0);
        }
    }

    #[test]
    fn complex_accessors() {
        let ir = IterativeComplex::new(r(0.7), conf(0.97)).unwrap();
        assert_eq!(ir.reliability().get(), 0.7);
        assert_eq!(ir.target().get(), 0.97);
    }
}
