//! Weighted voting with known per-node reliabilities (§5.3).
//!
//! When per-node (or per-class) reliabilities *are* available, §5.3 notes
//! the analysis "would again change as above, with `r` being replaced with
//! the specific reliabilities of the relevant nodes" — i.e. the complex
//! iterative algorithm generalizes to a weighted Bayesian vote. This
//! module implements that oracle-information upper bound. Comparing it to
//! node-blind [`Iterative`](crate::strategy::Iterative) quantifies the
//! *value of perfect reliability information* — which the A3/A6 ablations
//! show to be small, supporting the paper's case for not needing it.

use std::collections::HashMap;
use std::num::NonZeroUsize;

use crate::error::ParamError;
use crate::node::{NodeAwareStrategy, NodeId, Vote};
use crate::params::Confidence;
use crate::strategy::Decision;

/// Bayesian weighted voting with exact, externally supplied per-node
/// reliabilities.
///
/// Each vote contributes `ln(rᵢ / (1 − rᵢ))` of log-odds toward its value;
/// the leading value is accepted once its posterior (against the colluding
/// alternative) reaches the target confidence. With every node at the same
/// reliability `r`, this reduces exactly to the complex iterative
/// algorithm.
#[derive(Debug, Clone)]
pub struct WeightedVoting {
    reliabilities: HashMap<NodeId, f64>,
    default_reliability: f64,
    target: Confidence,
    wave: NonZeroUsize,
}

impl WeightedVoting {
    /// Creates a weighted voter with the given target confidence.
    ///
    /// `default_reliability` is used for nodes absent from the map (e.g.
    /// fresh volunteers).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] if `default_reliability ∉ (0, 1)`
    /// or any supplied reliability is outside `(0, 1)` (certainties of 0 or
    /// 1 produce infinite weights; clamp upstream if needed).
    pub fn new(
        reliabilities: HashMap<NodeId, f64>,
        default_reliability: f64,
        target: Confidence,
    ) -> Result<Self, ParamError> {
        let check = |value: f64| -> Result<(), ParamError> {
            if !(value.is_finite() && 0.0 < value && value < 1.0) {
                return Err(ParamError::OutOfRange {
                    name: "node reliability",
                    value,
                    expected: "(0, 1) exclusive",
                });
            }
            Ok(())
        };
        check(default_reliability)?;
        for &r in reliabilities.values() {
            check(r)?;
        }
        Ok(Self {
            reliabilities,
            default_reliability,
            target,
            wave: NonZeroUsize::new(1).expect("1 > 0"),
        })
    }

    /// Sets the wave size used while confidence is insufficient (default 1).
    pub fn with_wave_size(mut self, wave: NonZeroUsize) -> Self {
        self.wave = wave;
        self
    }

    /// The reliability assumed for `node`.
    pub fn reliability_of(&self, node: NodeId) -> f64 {
        self.reliabilities
            .get(&node)
            .copied()
            .unwrap_or(self.default_reliability)
    }

    /// Posterior confidence that `candidate` is correct given the votes,
    /// under the binary colluding-alternative model.
    pub fn posterior<V: Ord + Clone>(&self, votes: &[Vote<V>], candidate: &V) -> f64 {
        let mut log_odds = 0.0;
        for vote in votes {
            let r = self.reliability_of(vote.node);
            let weight = (r / (1.0 - r)).ln();
            if vote.value == *candidate {
                log_odds += weight;
            } else {
                log_odds -= weight;
            }
        }
        1.0 / (1.0 + (-log_odds).exp())
    }

    fn best_candidate<V: Ord + Clone>(&self, votes: &[Vote<V>]) -> Option<(V, f64)> {
        let mut best: Option<(V, f64)> = None;
        for vote in votes {
            let p = self.posterior(votes, &vote.value);
            match &best {
                Some((value, bp)) if *bp > p || (*bp == p && *value <= vote.value) => {}
                _ => best = Some((vote.value.clone(), p)),
            }
        }
        best
    }
}

impl<V: Ord + Clone> NodeAwareStrategy<V> for WeightedVoting {
    fn name(&self) -> &'static str {
        "weighted-voting"
    }

    fn decide_votes(&mut self, votes: &[Vote<V>]) -> Decision<V> {
        if let Some((value, posterior)) = self.best_candidate(votes) {
            if posterior >= self.target.get() {
                return Decision::Accept(value);
            }
        }
        Decision::Deploy(self.wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf(v: f64) -> Confidence {
        Confidence::new(v).unwrap()
    }

    fn node(id: u64) -> NodeId {
        NodeId::new(id)
    }

    fn uniform_voter(r: f64, target: f64) -> WeightedVoting {
        WeightedVoting::new(HashMap::new(), r, conf(target)).unwrap()
    }

    #[test]
    fn uniform_reliabilities_reduce_to_q() {
        use crate::analysis::confidence::confidence;
        use crate::params::Reliability;
        let voter = uniform_voter(0.7, 0.97);
        let votes = [
            Vote::new(node(1), true),
            Vote::new(node(2), true),
            Vote::new(node(3), true),
            Vote::new(node(4), false),
        ];
        let got = voter.posterior(&votes, &true);
        let expected = confidence(Reliability::new(0.7).unwrap(), 3, 1);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn accepts_exactly_at_margin_threshold() {
        // With uniform r = 0.7 and target 0.96, the equivalent margin is 4.
        let mut voter = uniform_voter(0.7, 0.96);
        let mut votes: Vec<Vote<bool>> = Vec::new();
        for i in 0..3 {
            votes.push(Vote::new(node(i), true));
            assert!(matches!(voter.decide_votes(&votes), Decision::Deploy(_)));
        }
        votes.push(Vote::new(node(3), true));
        assert_eq!(voter.decide_votes(&votes), Decision::Accept(true));
    }

    #[test]
    fn reliable_nodes_carry_more_weight() {
        let mut map = HashMap::new();
        map.insert(node(1), 0.99);
        let mut voter = WeightedVoting::new(map, 0.6, conf(0.995)).unwrap();
        // One highly reliable "yes" outweighs two mediocre "no"s: the
        // posterior is ln(99) − 2·ln(1.5) of log-odds ≈ 0.978.
        let votes = [
            Vote::new(node(1), true),
            Vote::new(node(2), false),
            Vote::new(node(3), false),
        ];
        let posterior = voter.posterior(&votes, &true);
        assert!((posterior - 0.978).abs() < 0.01, "posterior {posterior}");
        // Above ½ but short of the 0.995 target: keep deploying.
        assert!(matches!(voter.decide_votes(&votes), Decision::Deploy(_)));
    }

    #[test]
    fn rejects_degenerate_reliabilities() {
        assert!(WeightedVoting::new(HashMap::new(), 1.0, conf(0.9)).is_err());
        assert!(WeightedVoting::new(HashMap::new(), 0.0, conf(0.9)).is_err());
        let mut map = HashMap::new();
        map.insert(node(1), 1.0);
        assert!(WeightedVoting::new(map, 0.7, conf(0.9)).is_err());
    }

    #[test]
    fn empty_votes_deploy_wave() {
        let mut voter =
            uniform_voter(0.7, 0.9).with_wave_size(NonZeroUsize::new(4).expect("4 > 0"));
        assert_eq!(
            NodeAwareStrategy::<bool>::decide_votes(&mut voter, &[]).deploy_count(),
            Some(4)
        );
    }

    #[test]
    fn default_reliability_applies_to_unknown_nodes() {
        let mut map = HashMap::new();
        map.insert(node(1), 0.9);
        let voter = WeightedVoting::new(map, 0.6, conf(0.9)).unwrap();
        assert_eq!(voter.reliability_of(node(1)), 0.9);
        assert_eq!(voter.reliability_of(node(99)), 0.6);
    }
}
