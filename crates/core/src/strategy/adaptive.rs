//! BOINC-style adaptive replication (related-work baseline, §5.1).
//!
//! "BOINC has recently added adaptive replication, which prevents
//! replication of a task if a trusted node returns its result." A node
//! becomes trusted after enough consecutive validated agreements; the paper
//! points out that malicious nodes can *earn* this trust and then defect, or
//! shed a bad history by changing identity — the ablation benches exercise
//! both attacks.

use crate::node::{NodeAwareStrategy, NodeId, Vote};
use crate::reputation::ReputationStore;
use crate::strategy::{Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Adaptive replication: accept a single result from a trusted node,
/// otherwise fall back to an inner redundancy strategy.
///
/// # Examples
///
/// ```
/// use smartred_core::node::{NodeAwareStrategy, NodeId, Vote};
/// use smartred_core::params::KVotes;
/// use smartred_core::reputation::{ReputationConfig, ReputationStore};
/// use smartred_core::strategy::{AdaptiveReplication, Decision, Traditional};
///
/// let store = ReputationStore::new(ReputationConfig::default());
/// let inner = Traditional::new(KVotes::new(3)?);
/// let mut ar = AdaptiveReplication::new(inner, store, 10);
///
/// // An unknown node's single result is not trusted: replicate.
/// let vote = Vote::new(NodeId::new(1), true);
/// assert!(matches!(ar.decide_votes(&[vote]), Decision::Deploy(_)));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveReplication<S> {
    inner: S,
    store: ReputationStore,
    /// Consecutive validated agreements required before a node is trusted.
    trust_after: u32,
}

impl<S> AdaptiveReplication<S> {
    /// Creates an adaptive-replication wrapper around `inner`.
    ///
    /// `trust_after` is the number of consecutive validated agreements after
    /// which a node's lone result is accepted without replication (BOINC's
    /// default policy is on the order of 10).
    pub fn new(inner: S, store: ReputationStore, trust_after: u32) -> Self {
        Self {
            inner,
            store,
            trust_after,
        }
    }

    /// Returns `true` if `node` is currently trusted.
    pub fn is_trusted(&self, node: NodeId) -> bool {
        !self.store.is_blacklisted(node)
            && self.store.record(node).consecutive_agreements >= self.trust_after
    }

    /// Shared access to the reputation store.
    pub fn store(&self) -> &ReputationStore {
        &self.store
    }

    /// Mutable access to the reputation store (e.g. to model identity
    /// churn via [`ReputationStore::forget`]).
    pub fn store_mut(&mut self) -> &mut ReputationStore {
        &mut self.store
    }
}

impl<V, S> NodeAwareStrategy<V> for AdaptiveReplication<S>
where
    V: Ord + Clone,
    S: RedundancyStrategy<V>,
{
    fn name(&self) -> &'static str {
        "adaptive-replication"
    }

    fn decide_votes(&mut self, votes: &[Vote<V>]) -> Decision<V> {
        if votes.is_empty() {
            // Optimistically try a single job first; if its node turns out
            // to be trusted we are done at cost 1.
            return Decision::Deploy(std::num::NonZeroUsize::new(1).expect("1 > 0"));
        }
        if votes.len() == 1 && self.is_trusted(votes[0].node) {
            return Decision::Accept(votes[0].value.clone());
        }
        // Fall back to the inner strategy over the value tally.
        let tally: VoteTally<V> = votes.iter().map(|v| v.value.clone()).collect();
        self.inner.decide(&tally)
    }

    fn observe_outcome(&mut self, votes: &[Vote<V>], accepted: &V) {
        for vote in votes {
            self.store
                .record_validation(vote.node, vote.value == *accepted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KVotes;
    use crate::reputation::ReputationConfig;
    use crate::strategy::Traditional;

    fn adaptive(trust_after: u32) -> AdaptiveReplication<Traditional> {
        AdaptiveReplication::new(
            Traditional::new(KVotes::new(3).unwrap()),
            ReputationStore::new(ReputationConfig::default()),
            trust_after,
        )
    }

    fn earn_trust(ar: &mut AdaptiveReplication<Traditional>, node: NodeId, times: u32) {
        for _ in 0..times {
            ar.observe_outcome(&[Vote::new(node, true)], &true);
        }
    }

    #[test]
    fn untrusted_single_vote_falls_back_to_inner() {
        let mut ar = adaptive(3);
        let decision = ar.decide_votes(&[Vote::new(NodeId::new(1), true)]);
        // Inner traditional k=3 wants 2 more votes.
        assert_eq!(decision.deploy_count(), Some(2));
    }

    #[test]
    fn trusted_single_vote_is_accepted() {
        let mut ar = adaptive(3);
        let node = NodeId::new(1);
        earn_trust(&mut ar, node, 3);
        assert!(ar.is_trusted(node));
        let decision = ar.decide_votes(&[Vote::new(node, false)]);
        assert_eq!(decision, Decision::Accept(false));
    }

    #[test]
    fn disagreement_resets_trust() {
        let mut ar = adaptive(3);
        let node = NodeId::new(1);
        earn_trust(&mut ar, node, 3);
        // One validated disagreement resets the streak.
        ar.observe_outcome(&[Vote::new(node, false)], &true);
        assert!(!ar.is_trusted(node));
    }

    #[test]
    fn trust_earning_attack_sneaks_a_wrong_result() {
        // The §5.1 critique: a malicious node earns credibility, then lies —
        // and its lie is accepted at cost 1 with no vote at all.
        let mut ar = adaptive(5);
        let attacker = NodeId::new(66);
        earn_trust(&mut ar, attacker, 5);
        let lie = Vote::new(attacker, false);
        assert_eq!(ar.decide_votes(&[lie]), Decision::Accept(false));
    }

    #[test]
    fn empty_votes_deploy_one() {
        let mut ar = adaptive(3);
        assert_eq!(
            NodeAwareStrategy::<bool>::decide_votes(&mut ar, &[]).deploy_count(),
            Some(1)
        );
    }

    #[test]
    fn multiple_votes_use_inner_strategy() {
        let mut ar = adaptive(1);
        let votes = [
            Vote::new(NodeId::new(1), true),
            Vote::new(NodeId::new(2), true),
            Vote::new(NodeId::new(3), false),
        ];
        assert_eq!(ar.decide_votes(&votes), Decision::Accept(true));
    }
}
