//! Progressive `k`-vote redundancy (paper §3.2).

use crate::params::KVotes;
use crate::strategy::{deploy, Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Progressive redundancy: deploy the fewest jobs that could still reach a
/// `(k+1)/2`-consensus, wave by wave.
///
/// The first wave has `(k+1)/2` jobs. After each wave, if some value has at
/// least `(k+1)/2` matching votes the task completes; otherwise the strategy
/// deploys exactly `consensus − leading count` more jobs — the minimum that
/// could produce a consensus if they all agree with the current leader.
///
/// Progressive redundancy achieves the same system reliability as
/// traditional `k`-vote redundancy (Eq. 4) at a strictly lower expected cost
/// (Eq. 3), and never deploys more than `k` jobs in total for a binary task.
///
/// # Examples
///
/// ```
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::{Decision, Progressive, RedundancyStrategy};
/// use smartred_core::tally::VoteTally;
///
/// let pr = Progressive::new(KVotes::new(5)?); // consensus = 3
/// let mut tally = VoteTally::new();
/// assert_eq!(pr.decide(&tally).deploy_count(), Some(3));
/// tally.record_n(true, 2);
/// tally.record(false);
/// // Leader has 2 of the 3 needed: one more job could settle it.
/// assert_eq!(pr.decide(&tally).deploy_count(), Some(1));
/// tally.record(true);
/// assert_eq!(pr.decide(&tally), Decision::Accept(true));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progressive {
    k: KVotes,
}

impl Progressive {
    /// Creates a `k`-vote progressive strategy.
    pub fn new(k: KVotes) -> Self {
        Self { k }
    }

    /// Returns the configured vote count.
    pub fn k(&self) -> KVotes {
        self.k
    }

    /// Returns the consensus size `(k+1)/2`.
    pub fn consensus(&self) -> usize {
        self.k.consensus()
    }
}

impl<V: Ord + Clone> RedundancyStrategy<V> for Progressive {
    fn name(&self) -> &'static str {
        "progressive"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        let consensus = self.k.consensus();
        match tally.leader() {
            Some((value, count)) if count >= consensus => Decision::Accept(value.clone()),
            Some((_, count)) => deploy(consensus - count),
            None => deploy(consensus),
        }
    }

    fn job_bound(&self) -> Option<usize> {
        // For binary results the pigeonhole principle caps total jobs at k:
        // once k votes exist, one side holds at least (k+1)/2. With more than
        // two observed values the total can exceed k, but each wave is still
        // bounded by the consensus size. We report the binary bound, which is
        // the model the paper analyzes.
        Some(self.k.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pr(v: usize) -> Progressive {
        Progressive::new(KVotes::new(v).unwrap())
    }

    #[test]
    fn first_wave_is_consensus_size() {
        let tally: VoteTally<bool> = VoteTally::new();
        assert_eq!(pr(19).decide(&tally).deploy_count(), Some(10));
        assert_eq!(pr(1).decide(&tally).deploy_count(), Some(1));
    }

    #[test]
    fn unanimous_first_wave_completes() {
        let mut tally = VoteTally::new();
        tally.record_n(true, 10);
        assert_eq!(pr(19).decide(&tally), Decision::Accept(true));
    }

    #[test]
    fn split_wave_requests_minimum_topup() {
        let mut tally = VoteTally::new();
        tally.record_n(true, 7);
        tally.record_n(false, 3);
        // Needs 10 matching; leader has 7 → 3 more.
        assert_eq!(pr(19).decide(&tally).deploy_count(), Some(3));
    }

    #[test]
    fn minority_can_become_the_consensus() {
        let mut tally = VoteTally::new();
        tally.record_n(true, 2);
        tally.record_n(false, 3);
        assert_eq!(pr(5).decide(&tally), Decision::Accept(false));
    }

    #[test]
    fn binary_task_never_exceeds_k_jobs() {
        // Adversarial alternation: every wave splits as evenly as possible.
        let strategy = pr(19);
        let mut tally: VoteTally<bool> = VoteTally::new();
        let mut total = 0usize;
        while let Decision::Deploy(n) = strategy.decide(&tally) {
            let n = n.get();
            total += n;
            // Feed alternating results, minority value first.
            for i in 0..n {
                tally.record(i % 2 == 0);
            }
        }
        assert!(total <= 19, "deployed {total} > k");
    }

    #[test]
    fn consensus_accessor() {
        assert_eq!(pr(19).consensus(), 10);
    }

    #[test]
    fn job_bound_is_k() {
        assert_eq!(RedundancyStrategy::<bool>::job_bound(&pr(9)), Some(9));
    }
}
