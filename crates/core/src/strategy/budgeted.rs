//! A budget wrapper for strategies with unbounded tails (§5.2).
//!
//! Iterative redundancy "makes no such guarantees [on wave count], and
//! while it is very unlikely, any one task may require arbitrarily many
//! waves of jobs". [`TaskExecution::with_job_cap`] turns that tail into a
//! hard error; [`Budgeted`] instead degrades gracefully: once the budget is
//! reached it accepts the current plurality — trading a small, quantifiable
//! amount of reliability for a hard cost bound.
//!
//! [`TaskExecution::with_job_cap`]: crate::execution::TaskExecution::with_job_cap

use crate::strategy::{deploy, Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Wraps a strategy with a hard per-task job budget.
///
/// Decisions delegate to the inner strategy, but waves are clipped so the
/// total never exceeds `budget`; when the budget is exhausted without an
/// inner accept, the current plurality is accepted (ties break toward the
/// smaller value, as everywhere in the tally).
///
/// # Examples
///
/// ```
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::{Budgeted, Decision, Iterative, RedundancyStrategy};
/// use smartred_core::tally::VoteTally;
///
/// let ir = Budgeted::new(Iterative::new(VoteMargin::new(4)?), 6);
/// let mut tally = VoteTally::new();
/// assert_eq!(ir.decide(&tally).deploy_count(), Some(4));
/// tally.record_n(true, 2);
/// tally.record_n(false, 2);
/// // Inner strategy wants 4 more, but only 2 remain in the budget.
/// assert_eq!(ir.decide(&tally).deploy_count(), Some(2));
/// tally.record(true);
/// tally.record(false);
/// // Budget exhausted: accept the plurality (tie → smaller value).
/// assert_eq!(ir.decide(&tally), Decision::Accept(false));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgeted<S> {
    inner: S,
    budget: usize,
}

impl<S> Budgeted<S> {
    /// Wraps `inner` with a job budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero — a task must be allowed at least one
    /// job.
    pub fn new(inner: S, budget: usize) -> Self {
        assert!(budget >= 1, "budget must allow at least one job");
        Self { inner, budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<V, S> RedundancyStrategy<V> for Budgeted<S>
where
    V: Ord + Clone,
    S: RedundancyStrategy<V>,
{
    fn name(&self) -> &'static str {
        "budgeted"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        let remaining = self.budget.saturating_sub(tally.total());
        if remaining == 0 {
            let (value, _) = tally
                .leader()
                .expect("budget >= 1 guarantees at least one vote before exhaustion");
            return Decision::Accept(value.clone());
        }
        match self.inner.decide(tally) {
            Decision::Accept(v) => Decision::Accept(v),
            Decision::Deploy(n) => deploy(n.get().min(remaining)),
        }
    }

    fn job_bound(&self) -> Option<usize> {
        Some(match self.inner.job_bound() {
            Some(inner_bound) => inner_bound.min(self.budget),
            None => self.budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{estimate, MonteCarloConfig};
    use crate::params::{Reliability, VoteMargin};
    use crate::strategy::Iterative;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ir(d: usize) -> Iterative {
        Iterative::new(VoteMargin::new(d).unwrap())
    }

    #[test]
    fn inner_accepts_pass_through() {
        let s = Budgeted::new(ir(2), 100);
        let mut tally = VoteTally::new();
        tally.record_n(true, 2);
        assert_eq!(s.decide(&tally), Decision::Accept(true));
    }

    #[test]
    fn waves_are_clipped_to_budget() {
        let s = Budgeted::new(ir(6), 4);
        let tally: VoteTally<bool> = VoteTally::new();
        assert_eq!(s.decide(&tally).deploy_count(), Some(4));
    }

    #[test]
    fn exhausted_budget_accepts_plurality() {
        let s = Budgeted::new(ir(6), 3);
        let mut tally = VoteTally::new();
        tally.record_n(false, 2);
        tally.record(true);
        assert_eq!(s.decide(&tally), Decision::Accept(false));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_budget_panics() {
        let _ = Budgeted::new(ir(2), 0);
    }

    #[test]
    fn job_bound_is_min_of_inner_and_budget() {
        let unbounded = Budgeted::new(ir(4), 25);
        assert_eq!(RedundancyStrategy::<bool>::job_bound(&unbounded), Some(25));
        let bounded = Budgeted::new(
            crate::strategy::Traditional::new(crate::params::KVotes::new(9).unwrap()),
            25,
        );
        assert_eq!(RedundancyStrategy::<bool>::job_bound(&bounded), Some(9));
    }

    #[test]
    fn monte_carlo_never_exceeds_budget_and_degrades_gracefully() {
        let r = Reliability::new(0.7).unwrap();
        // An odd budget avoids exhaustion ties (binary votes cannot split
        // 50/50 across an odd count), so the plurality fallback stays fair.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let capped = estimate(
            &Budgeted::new(ir(4), 13),
            MonteCarloConfig::new(40_000, r),
            &mut rng,
        );
        assert!(capped.max_jobs_single_task <= 13);
        assert_eq!(capped.capped_tasks, 0, "budgeted never errors");

        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let free = estimate(&ir(4), MonteCarloConfig::new(40_000, r), &mut rng);
        // Exhausted tasks accept a sub-margin plurality, costing a few
        // points of reliability — bounded, not catastrophic.
        assert!(free.reliability() - capped.reliability() < 0.06);
        assert!(capped.reliability() > 0.9);
        // The budgeted cost can only be lower.
        assert!(capped.cost_factor() <= free.cost_factor() + 1e-9);
    }

    #[test]
    fn tight_budget_still_terminates_at_half_reliability() {
        // r = 0.5 with an even budget: exhaustion ties break toward the
        // smaller value (false — the "wrong" one in this model), so the
        // measured reliability sits *below* ½ by half the tie probability
        // P(Binomial(10, ½) = 5) ≈ 0.246. Deterministic tie-breaking is the
        // worst case, consistent with the threat model.
        let r = Reliability::new(0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let report = estimate(
            &Budgeted::new(ir(8), 10),
            MonteCarloConfig::new(20_000, r),
            &mut rng,
        );
        assert_eq!(report.capped_tasks, 0);
        assert!(report.max_jobs_single_task <= 10);
        let expected = 0.5 - 0.246 / 2.0;
        assert!(
            (report.reliability() - expected).abs() < 0.03,
            "reliability {} vs expected {expected}",
            report.reliability()
        );
    }
}
