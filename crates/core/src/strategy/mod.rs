//! The three redundancy techniques as pure decision procedures.
//!
//! A [`RedundancyStrategy`] looks at the votes gathered so far for one task
//! (a [`VoteTally`]) and decides either to deploy more jobs or to accept a
//! result. Keeping strategies pure lets the same implementation drive the
//! analytic machinery in [`crate::analysis`], the Monte-Carlo estimator in
//! [`crate::monte_carlo`], the discrete-event simulator (`smartred-dca`), and
//! the volunteer-computing system (`smartred-volunteer`).
//!
//! | Strategy | Paper section | Type |
//! |---|---|---|
//! | Traditional `k`-vote | §3.1 | [`Traditional`] |
//! | Progressive `k`-vote | §3.2 | [`Progressive`] |
//! | Iterative (simple, Fig. 4) | §3.3 | [`Iterative`] |
//! | Iterative (complex, needs `r`) | §3.3 | [`IterativeComplex`] |

mod adaptive;
mod budgeted;
mod credibility;
mod hedged;
mod iterative;
mod progressive;
mod traditional;
mod weighted;

pub use adaptive::AdaptiveReplication;
pub use budgeted::Budgeted;
pub use credibility::CredibilityVoting;
pub use hedged::Hedged;
pub use iterative::{Iterative, IterativeComplex};
pub use progressive::Progressive;
pub use traditional::Traditional;
pub use weighted::WeightedVoting;

use std::num::NonZeroUsize;

use crate::tally::VoteTally;

/// A strategy's verdict after inspecting the current tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision<V> {
    /// Deploy this many additional jobs, then consult the strategy again
    /// once they have all reported (one *wave*, in the paper's terms).
    Deploy(NonZeroUsize),
    /// The task is complete; accept this value as its result.
    Accept(V),
}

impl<V> Decision<V> {
    /// Returns the wave size if this decision deploys more jobs.
    pub fn deploy_count(&self) -> Option<usize> {
        match self {
            Decision::Deploy(n) => Some(n.get()),
            Decision::Accept(_) => None,
        }
    }

    /// Returns the accepted value if this decision completes the task.
    pub fn accepted(&self) -> Option<&V> {
        match self {
            Decision::Deploy(_) => None,
            Decision::Accept(v) => Some(v),
        }
    }
}

/// A redundancy technique, expressed as a wave-by-wave decision procedure.
///
/// Implementations must be deterministic functions of the tally: given the
/// same votes they must return the same decision. The driver contract is:
///
/// 1. call [`decide`](Self::decide) on the (initially empty) tally;
/// 2. on [`Decision::Deploy`], run that many jobs on independent, randomly
///    chosen nodes, record their results into the tally, and repeat;
/// 3. on [`Decision::Accept`], the task is complete.
///
/// The blanket driver in [`crate::execution::TaskExecution`] implements this
/// loop with job-cap protection.
///
/// # Examples
///
/// ```
/// use smartred_core::params::VoteMargin;
/// use smartred_core::strategy::{Decision, Iterative, RedundancyStrategy};
/// use smartred_core::tally::VoteTally;
///
/// let ir = Iterative::new(VoteMargin::new(2)?);
/// let mut tally = VoteTally::new();
/// assert_eq!(ir.decide(&tally).deploy_count(), Some(2));
/// tally.record(true);
/// tally.record(true);
/// assert_eq!(ir.decide(&tally), Decision::Accept(true));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
pub trait RedundancyStrategy<V: Ord + Clone> {
    /// A short human-readable name ("traditional", "progressive", …) used in
    /// experiment output.
    fn name(&self) -> &'static str;

    /// Decides whether to deploy more jobs or accept a result.
    ///
    /// Must return [`Decision::Deploy`] with a positive count whenever it does
    /// not accept; a strategy that could neither deploy nor accept would
    /// deadlock its driver, so the signature makes that unrepresentable.
    fn decide(&self, tally: &VoteTally<V>) -> Decision<V>;

    /// An optional upper bound on the total jobs this strategy can ever
    /// deploy for one task (`Some(k)` for the fixed-`k` techniques, `None`
    /// for iterative redundancy, which is unbounded — paper §5.2).
    fn job_bound(&self) -> Option<usize> {
        None
    }
}

// Allow `&S` and boxed strategies wherever a strategy is expected.
impl<V: Ord + Clone, S: RedundancyStrategy<V> + ?Sized> RedundancyStrategy<V> for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        (**self).decide(tally)
    }

    fn job_bound(&self) -> Option<usize> {
        (**self).job_bound()
    }
}

impl<V: Ord + Clone, S: RedundancyStrategy<V> + ?Sized> RedundancyStrategy<V> for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        (**self).decide(tally)
    }

    fn job_bound(&self) -> Option<usize> {
        (**self).job_bound()
    }
}

impl<V: Ord + Clone, S: RedundancyStrategy<V> + ?Sized> RedundancyStrategy<V> for std::rc::Rc<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        (**self).decide(tally)
    }

    fn job_bound(&self) -> Option<usize> {
        (**self).job_bound()
    }
}

impl<V: Ord + Clone, S: RedundancyStrategy<V> + ?Sized> RedundancyStrategy<V>
    for std::sync::Arc<S>
{
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        (**self).decide(tally)
    }

    fn job_bound(&self) -> Option<usize> {
        (**self).job_bound()
    }
}

/// Convenience constructor for a deploy decision.
///
/// # Panics
///
/// Panics if `n == 0`; strategies compute `n` from tally invariants that
/// guarantee positivity, so a zero here is a logic error.
pub(crate) fn deploy<V>(n: usize) -> Decision<V> {
    Decision::Deploy(NonZeroUsize::new(n).expect("wave size must be positive"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::VoteMargin;

    #[test]
    fn decision_accessors() {
        let d: Decision<bool> = deploy(3);
        assert_eq!(d.deploy_count(), Some(3));
        assert_eq!(d.accepted(), None);

        let a = Decision::Accept(true);
        assert_eq!(a.deploy_count(), None);
        assert_eq!(a.accepted(), Some(&true));
    }

    #[test]
    #[should_panic(expected = "wave size must be positive")]
    fn deploy_zero_panics() {
        let _: Decision<bool> = deploy(0);
    }

    #[test]
    fn strategies_work_through_references_and_boxes() {
        let ir = Iterative::new(VoteMargin::new(2).unwrap());
        let by_ref: &dyn RedundancyStrategy<bool> = &ir;
        assert_eq!(by_ref.name(), "iterative");
        let boxed: Box<dyn RedundancyStrategy<bool>> = Box::new(ir);
        assert_eq!(boxed.decide(&VoteTally::new()).deploy_count(), Some(2));
        assert_eq!(boxed.job_bound(), None);
    }
}
