//! Traditional `k`-modular redundancy (paper §3.1).

use crate::params::KVotes;
use crate::strategy::{deploy, Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// Traditional (k-modular) redundancy: run `k` jobs, majority vote.
///
/// All `k` jobs are requested in a single wave; once all have reported, the
/// plurality value is accepted. This is the state of the practice in BOINC
/// and Hadoop and costs exactly `k` jobs per task (Eq. 1).
///
/// With binary results and odd `k` the plurality is always a strict
/// majority. With n-ary results a plurality that is not a majority can still
/// win, which the paper notes only improves reliability (§5.3), so the
/// analytic formulas remain valid upper bounds on failure.
///
/// # Examples
///
/// ```
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::{Decision, RedundancyStrategy, Traditional};
/// use smartred_core::tally::VoteTally;
///
/// let tr = Traditional::new(KVotes::new(3)?);
/// let mut tally = VoteTally::new();
/// assert_eq!(tr.decide(&tally).deploy_count(), Some(3));
/// tally.record_n(true, 2);
/// tally.record(false);
/// assert_eq!(tr.decide(&tally), Decision::Accept(true));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traditional {
    k: KVotes,
}

impl Traditional {
    /// Creates a `k`-vote traditional strategy.
    pub fn new(k: KVotes) -> Self {
        Self { k }
    }

    /// Returns the configured vote count.
    pub fn k(&self) -> KVotes {
        self.k
    }
}

impl<V: Ord + Clone> RedundancyStrategy<V> for Traditional {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        let k = self.k.get();
        if tally.total() < k {
            // A single wave of everything still missing. If the driver loses
            // jobs (e.g. a node vanished without reporting), this re-requests
            // the difference, which matches BOINC's re-issue behavior.
            deploy(k - tally.total())
        } else {
            let (value, _) = tally
                .leader()
                .expect("tally with k >= 1 votes has a leader");
            Decision::Accept(value.clone())
        }
    }

    fn job_bound(&self) -> Option<usize> {
        Some(self.k.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: usize) -> KVotes {
        KVotes::new(v).unwrap()
    }

    #[test]
    fn deploys_all_k_in_one_wave() {
        let tr = Traditional::new(k(19));
        let tally: VoteTally<bool> = VoteTally::new();
        assert_eq!(tr.decide(&tally).deploy_count(), Some(19));
    }

    #[test]
    fn accepts_majority_after_k_votes() {
        let tr = Traditional::new(k(5));
        let mut tally = VoteTally::new();
        tally.record_n(false, 3);
        tally.record_n(true, 2);
        assert_eq!(tr.decide(&tally), Decision::Accept(false));
    }

    #[test]
    fn redeploys_missing_votes() {
        let tr = Traditional::new(k(5));
        let mut tally = VoteTally::new();
        tally.record_n(true, 3);
        // Two jobs were lost: ask for exactly the difference.
        assert_eq!(tr.decide(&tally).deploy_count(), Some(2));
    }

    #[test]
    fn k_equals_one_is_no_redundancy() {
        let tr = Traditional::new(k(1));
        let mut tally = VoteTally::new();
        assert_eq!(tr.decide(&tally).deploy_count(), Some(1));
        tally.record(true);
        assert_eq!(tr.decide(&tally), Decision::Accept(true));
    }

    #[test]
    fn nary_plurality_wins() {
        let tr = Traditional::new(k(5));
        let mut tally = VoteTally::new();
        tally.record_n(10u32, 2);
        tally.record_n(20u32, 2);
        tally.record_n(30u32, 1);
        // Plurality tie between 10 and 20 breaks toward the smaller value.
        assert_eq!(tr.decide(&tally), Decision::Accept(10));
    }

    #[test]
    fn job_bound_is_k() {
        let tr = Traditional::new(k(7));
        assert_eq!(RedundancyStrategy::<bool>::job_bound(&tr), Some(7));
    }
}
