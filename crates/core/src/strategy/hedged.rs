//! The straggler-aware hedged variant of any base strategy.

use crate::hedge::HedgePolicy;
use crate::strategy::{Decision, RedundancyStrategy};
use crate::tally::VoteTally;

/// A base strategy plus a straggler-hedging policy.
///
/// `Hedged` changes nothing about the *voting* decision procedure — it
/// delegates [`decide`](RedundancyStrategy::decide) and
/// [`job_bound`](RedundancyStrategy::job_bound) to the wrapped strategy
/// unchanged, so reliability analysis, cost formulas, and verdict streams
/// are those of the base technique. What it adds is the
/// [`HedgePolicy`] the execution platform reads to arm its
/// quantile-triggered duplicate replicas: a job that outlives the online
/// latency-quantile estimate gets a twin on another worker, the first copy
/// to answer supplies the replica's vote, and the loser is discarded
/// (journalled as wasted). The split of concerns is deliberate: *what to
/// accept* stays a pure function of the tally, *when to duplicate* is a
/// function of elapsed time that only platforms can evaluate.
///
/// # Examples
///
/// ```
/// use smartred_core::hedge::HedgePolicy;
/// use smartred_core::params::KVotes;
/// use smartred_core::strategy::{Hedged, RedundancyStrategy, Traditional};
/// use smartred_core::tally::VoteTally;
///
/// let hedged = Hedged::new(Traditional::new(KVotes::new(3)?), HedgePolicy::default());
/// assert_eq!(RedundancyStrategy::<bool>::name(&hedged), "hedged");
/// // The voting decision is the base strategy's, untouched.
/// let tally: VoteTally<bool> = VoteTally::new();
/// assert_eq!(hedged.decide(&tally).deploy_count(), Some(3));
/// # Ok::<(), smartred_core::error::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hedged<S> {
    inner: S,
    policy: HedgePolicy,
}

impl<S> Hedged<S> {
    /// Wraps `inner` with hedging under `policy`.
    pub fn new(inner: S, policy: HedgePolicy) -> Self {
        Self { inner, policy }
    }

    /// The hedging policy platforms arm their triggers with.
    pub fn policy(&self) -> HedgePolicy {
        self.policy
    }

    /// The wrapped base strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<V: Ord + Clone, S: RedundancyStrategy<V>> RedundancyStrategy<V> for Hedged<S> {
    fn name(&self) -> &'static str {
        "hedged"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        self.inner.decide(tally)
    }

    fn job_bound(&self) -> Option<usize> {
        self.inner.job_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::VoteMargin;
    use crate::strategy::Iterative;

    #[test]
    fn hedged_delegates_decisions_to_the_base_strategy() {
        let base = Iterative::new(VoteMargin::new(2).unwrap());
        let hedged = Hedged::new(base, HedgePolicy::default());
        let mut tally = VoteTally::new();
        assert_eq!(hedged.decide(&tally), base.decide(&tally));
        tally.record(true);
        tally.record(true);
        assert_eq!(hedged.decide(&tally), Decision::Accept(true));
        assert_eq!(
            RedundancyStrategy::<bool>::job_bound(&hedged),
            RedundancyStrategy::<bool>::job_bound(&base)
        );
    }
}
