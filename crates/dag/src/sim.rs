//! Transfer-charged discrete-event simulation of a DAG pipeline.
//!
//! Each task runs its stage's [`StageStrategy`] through the shared
//! [`TaskExecution`] decision surface; every replica pays its stage's
//! payload transfer (via [`NetworkModel`]) before service may start; a
//! stage's verdicts gate dispatch of its dependents; and a wrong accepted
//! intermediate poisons every downstream task that reads it.
//!
//! ## Determinism contract
//!
//! Every stochastic draw — replica node choice, vote correctness, service
//! time, hedge-twin draws, node speeds — is a pure function of
//! `(seed, task, replica)` via counter-based RNG streams
//! ([`smartred_core::parallel::task_rng`]), so votes and verdicts are
//! schedule-independent and journals are bit-identical across thread
//! counts and repeat runs.

use smartred_core::execution::{TaskExecution, WaveStep};
use smartred_core::parallel::{map_indexed, task_rng, Threads};
use smartred_desim::engine::Simulator;
use smartred_desim::journal::{Journal, RunEvent};
use smartred_desim::network::{LinkSpec, NetworkModel};
use smartred_desim::rng::sample;
use smartred_desim::time::{SimDuration, SimTime};

use crate::spec::{DagSpec, DepKind, StageStrategy};

/// RNG stream offset separating hedge-twin draws from origin-replica draws
/// (task ids are `u32`, so `task` and `HEDGE_STREAM | task` never collide).
const HEDGE_STREAM: u64 = 1 << 32;
/// RNG stream offset for per-node speed factors.
const NODE_STREAM: u64 = 2 << 32;

/// A seeded poisoning adversary that targets one stage.
///
/// Colluding nodes corrupt the stage where a wrong value is cheapest to
/// slip through and most damaging downstream (typically the wide map cut),
/// while staying near-honest elsewhere to avoid detection. Modeled as a
/// per-replica wrong-vote rate that depends only on the task's stage, so
/// draws stay schedule-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonAdversary {
    /// The stage whose replicas are attacked (`None` = no targeting).
    pub target_stage: Option<u32>,
    /// Wrong-vote probability for replicas of the targeted stage.
    pub targeted_wrong: f64,
    /// Wrong-vote probability everywhere else (background noise).
    pub background_wrong: f64,
}

impl PoisonAdversary {
    /// No adversary: every replica votes correctly.
    pub fn honest() -> Self {
        Self {
            target_stage: None,
            targeted_wrong: 0.0,
            background_wrong: 0.0,
        }
    }

    /// An adversary lying at rate `targeted` on `stage`'s replicas and
    /// `background` elsewhere.
    pub fn targeting(stage: u32, targeted: f64, background: f64) -> Self {
        Self {
            target_stage: Some(stage),
            targeted_wrong: targeted,
            background_wrong: background,
        }
    }

    /// The wrong-vote probability for one replica of `stage`.
    pub fn wrong_rate(&self, stage: u32) -> f64 {
        if self.target_stage == Some(stage) {
            self.targeted_wrong
        } else {
            self.background_wrong
        }
    }
}

/// Configuration of one DAG pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSimConfig {
    /// Worker nodes available (each with its own speed and link budget).
    pub nodes: usize,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Default link budget (override per node on the model if needed).
    pub link: LinkSpec,
    /// Node speed factors are uniform in `[1 − spread, 1 + spread]`
    /// (multiplying service time; must be in `[0, 1)`).
    pub speed_spread: f64,
    /// The poisoning adversary in play.
    pub adversary: PoisonAdversary,
    /// Optional per-task job cap ([`TaskExecution::with_job_cap`]); a
    /// capped task counts as a wrong effective output.
    pub job_cap: Option<usize>,
    /// Hedged stages launch a twin when a replica's service draw exceeds
    /// this multiple of the stage's `service_units`.
    pub hedge_after_units: f64,
}

impl Default for DagSimConfig {
    fn default() -> Self {
        Self {
            nodes: 24,
            seed: 11,
            link: LinkSpec::new(64 * 1024, SimDuration::from_units(0.05)),
            speed_spread: 0.2,
            adversary: PoisonAdversary::honest(),
            job_cap: None,
            hedge_after_units: 1.3,
        }
    }
}

/// Per-run outcome of one DAG pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DagRunReport {
    /// End-to-end completion time of the whole pipeline, in units.
    pub makespan_units: f64,
    /// Vote-carrying jobs dispatched (excludes hedge twins).
    pub jobs: u64,
    /// Hedge twins launched (each costs a real job but the pair casts one
    /// vote).
    pub hedge_jobs: u64,
    /// Payload transfers charged.
    pub transfers: u64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
    /// Vote-carrying jobs per stage.
    pub stage_jobs: Vec<u64>,
    /// Per stage: tasks whose *effective* output is correct.
    pub stage_correct: Vec<u32>,
    /// Per stage: tasks whose effective output is wrong (own wrong accept
    /// or upstream poison).
    pub stage_wrong: Vec<u32>,
    /// Downstream tasks poisoned by a wrong accepted intermediate.
    pub poisoned_tasks: u64,
}

impl DagRunReport {
    fn empty(stages: usize) -> Self {
        Self {
            makespan_units: 0.0,
            jobs: 0,
            hedge_jobs: 0,
            transfers: 0,
            bytes_moved: 0,
            stage_jobs: vec![0; stages],
            stage_correct: vec![0; stages],
            stage_wrong: vec![0; stages],
            poisoned_tasks: 0,
        }
    }

    /// Total job cost of the run: vote jobs plus hedge twins.
    pub fn total_cost(&self) -> u64 {
        self.jobs + self.hedge_jobs
    }

    /// Wrong effective outputs across `spec`'s sink stages.
    pub fn sink_wrong(&self, spec: &DagSpec) -> u32 {
        spec.sinks()
            .iter()
            .map(|&s| self.stage_wrong[s as usize])
            .sum()
    }

    /// Fraction of sink outputs whose effective value is wrong — the run's
    /// poison-escape rate (every wrong sink output was *accepted*, so it
    /// escaped the redundancy checks).
    pub fn escape_rate(&self, spec: &DagSpec) -> f64 {
        f64::from(self.sink_wrong(spec)) / f64::from(spec.sink_tasks())
    }
}

struct TaskState {
    exec: TaskExecution<bool, StageStrategy>,
    /// Per-task replica dispatch cursor (indexes the RNG stream).
    replicas: u32,
    /// Lowest-id wrong upstream dependency, if any.
    poisoned_by: Option<u32>,
    /// Whether the task's *effective* output is correct (set at settle).
    effective: Option<bool>,
}

struct World {
    spec: DagSpec,
    cfg: DagSimConfig,
    network: NetworkModel,
    tasks: Vec<TaskState>,
    /// Undecided tasks per stage.
    stage_remaining: Vec<u32>,
    /// Undecided dependency edges per stage.
    deps_unmet: Vec<u32>,
    /// stage → stages that depend on it (one entry per edge).
    dependents: Vec<Vec<u32>>,
    node_speed: Vec<f64>,
    next_job: u32,
    stages_done: usize,
    report: DagRunReport,
}

impl World {
    fn new(spec: &DagSpec, cfg: &DagSimConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(
            (0.0..1.0).contains(&cfg.speed_spread),
            "speed spread must be in [0, 1)"
        );
        let stages = spec.len();
        let mut deps_unmet = vec![0u32; stages];
        let mut dependents = vec![Vec::new(); stages];
        for (i, stage) in spec.stages().iter().enumerate() {
            deps_unmet[i] = stage.deps.len() as u32;
            for dep in &stage.deps {
                dependents[dep.on as usize].push(i as u32);
            }
        }
        let tasks = (0..spec.total_tasks())
            .map(|t| {
                let strategy = spec.stages()[spec.stage_of(t) as usize].strategy;
                let mut exec = TaskExecution::new(strategy);
                if let Some(cap) = cfg.job_cap {
                    exec = exec.with_job_cap(cap);
                }
                TaskState {
                    exec,
                    replicas: 0,
                    poisoned_by: None,
                    effective: None,
                }
            })
            .collect();
        let node_speed = (0..cfg.nodes)
            .map(|n| {
                let u: f64 = sample(&mut task_rng(cfg.seed, NODE_STREAM, n as u64), 0.0..1.0);
                1.0 + cfg.speed_spread * (2.0 * u - 1.0)
            })
            .collect();
        Self {
            network: NetworkModel::uniform(cfg.link),
            tasks,
            stage_remaining: spec.stages().iter().map(|s| s.width).collect(),
            deps_unmet,
            dependents,
            node_speed,
            next_job: 0,
            stages_done: 0,
            report: DagRunReport::empty(stages),
            spec: spec.clone(),
            cfg: cfg.clone(),
        }
    }
}

/// Opens `stage`: marks poisoned tasks (journaling one
/// [`RunEvent::PoisonPropagated`] per poisoned task, `from` = its
/// lowest-id wrong upstream) and starts every task's first wave.
fn open_stage(w: &mut World, sim: &mut Simulator<World>, stage: u32) {
    let range = w.spec.tasks(stage);
    for t in range.clone() {
        let offset = t - w.spec.base(stage);
        let mut from: Option<u32> = None;
        for dep in &w.spec.stages()[stage as usize].deps {
            let bad = match dep.kind {
                DepKind::All => w
                    .spec
                    .tasks(dep.on)
                    .find(|&u| w.tasks[u as usize].effective == Some(false)),
                DepKind::Pairwise => {
                    let u = w.spec.base(dep.on) + offset;
                    (w.tasks[u as usize].effective == Some(false)).then_some(u)
                }
            };
            if let Some(u) = bad {
                from = Some(from.map_or(u, |f| f.min(u)));
            }
        }
        if let Some(u) = from {
            w.tasks[t as usize].poisoned_by = Some(u);
            w.report.poisoned_tasks += 1;
            sim.emit(RunEvent::PoisonPropagated {
                task: t,
                stage,
                from: u,
            });
        }
    }
    for t in range {
        advance_task(w, sim, t);
    }
}

/// Steps one task's strategy: opens the next wave, or settles the task on
/// a verdict or job-cap overrun.
fn advance_task(w: &mut World, sim: &mut Simulator<World>, t: u32) {
    match w.tasks[t as usize].exec.step_wave() {
        WaveStep::Wave { wave, jobs } => {
            sim.emit(RunEvent::WaveOpened {
                task: t,
                wave: wave as u32,
                jobs: jobs as u32,
            });
            for _ in 0..jobs {
                dispatch_replica(w, sim, t);
            }
        }
        WaveStep::Verdict(v) => {
            sim.emit(RunEvent::VerdictReached {
                task: t,
                value: v,
                degraded: false,
                confidence: 1.0,
            });
            settle_task(w, sim, t, Some(v));
        }
        WaveStep::Capped { .. } => {
            sim.emit(RunEvent::TaskCapped { task: t });
            settle_task(w, sim, t, None);
        }
        WaveStep::Pending => {}
    }
}

/// Dispatches one replica: draws its node, vote, and service time from the
/// `(seed, task, replica)` stream, charges the payload transfer, then runs
/// service (with an optional hedge twin on hedged stages).
fn dispatch_replica(w: &mut World, sim: &mut Simulator<World>, t: u32) {
    let stage = w.spec.stage_of(t);
    let s = &w.spec.stages()[stage as usize];
    let (payload, service_units, hedged) = (s.payload_bytes, s.service_units, s.strategy.hedged());
    let r = w.tasks[t as usize].replicas;
    w.tasks[t as usize].replicas += 1;
    let job = w.next_job;
    w.next_job += 1;

    let mut rng = task_rng(w.cfg.seed, u64::from(t), u64::from(r));
    let node = sample(&mut rng, 0..w.cfg.nodes as u32);
    let wrong = sample(&mut rng, 0.0..1.0f64) < w.cfg.adversary.wrong_rate(stage);
    let draw: f64 = sample(&mut rng, 0.5..1.5f64);
    let service = SimDuration::from_units(draw * service_units * w.node_speed[node as usize]);
    let value = !wrong;
    let hedge_after = SimDuration::from_units(w.cfg.hedge_after_units * service_units);
    let trigger = hedged && service > hedge_after;

    // Twin draws come from a disjoint stream so arming/removing hedges
    // never perturbs origin-replica votes.
    let twin = trigger.then(|| {
        let mut rng = task_rng(w.cfg.seed, HEDGE_STREAM | u64::from(t), u64::from(r));
        let node = sample(&mut rng, 0..w.cfg.nodes as u32);
        let wrong = sample(&mut rng, 0.0..1.0f64) < w.cfg.adversary.wrong_rate(stage);
        let draw: f64 = sample(&mut rng, 0.5..1.5f64);
        let service = SimDuration::from_units(draw * service_units * w.node_speed[node as usize]);
        (node, !wrong, service)
    });

    w.report.transfers += 1;
    w.report.bytes_moved += payload;
    w.network.begin(sim, job, t, node, payload, move |w, sim| {
        sim.emit(RunEvent::JobDispatched {
            job,
            task: t,
            node,
            eta: sim.now() + service,
        });
        w.report.jobs += 1;
        w.report.stage_jobs[stage as usize] += 1;
        match twin {
            None => sim.schedule_in(service, move |w, sim| {
                complete_replica(w, sim, t, job, node, value);
            }),
            Some((twin_node, twin_value, twin_service)) => {
                // The twin launches when the origin outlives the hedge
                // threshold; its input replica is already staged on the
                // pool (the transfer above replicated it), so it pays no
                // fresh WAN transfer. The first copy to finish casts the
                // replica's vote under the origin job id.
                let twin_job = w.next_job;
                w.next_job += 1;
                w.report.hedge_jobs += 1;
                sim.schedule_in(hedge_after, move |_, sim| {
                    sim.emit(RunEvent::HedgeLaunched {
                        job: twin_job,
                        task: t,
                        origin: job,
                        epoch: 0,
                    });
                });
                if hedge_after + twin_service < service {
                    sim.schedule_in(hedge_after + twin_service, move |w, sim| {
                        sim.emit(RunEvent::HedgeWon {
                            job: twin_job,
                            task: t,
                        });
                        complete_replica(w, sim, t, job, twin_node, twin_value);
                    });
                } else {
                    sim.schedule_in(service, move |w, sim| {
                        sim.emit(RunEvent::HedgeWasted {
                            job: twin_job,
                            task: t,
                        });
                        complete_replica(w, sim, t, job, node, value);
                    });
                }
            }
        }
    });
}

/// Records one replica's vote and advances the task at wave boundaries.
fn complete_replica(
    w: &mut World,
    sim: &mut Simulator<World>,
    t: u32,
    job: u32,
    node: u32,
    value: bool,
) {
    sim.emit(RunEvent::JobReturned {
        job,
        task: t,
        node,
        value,
    });
    let task = &mut w.tasks[t as usize];
    task.exec.record(value);
    let (leader, runner_up) = task.exec.leader_counts();
    sim.emit(RunEvent::VoteTallied {
        task: t,
        value,
        leader_count: leader as u32,
        runner_up: runner_up as u32,
    });
    if task.exec.outstanding() == 0 {
        advance_task(w, sim, t);
    }
}

/// Settles a decided (or capped) task and, when its stage completes,
/// journals the stage verdict and releases dependent stages.
fn settle_task(w: &mut World, sim: &mut Simulator<World>, t: u32, verdict: Option<bool>) {
    let effective = verdict == Some(true) && w.tasks[t as usize].poisoned_by.is_none();
    w.tasks[t as usize].effective = Some(effective);
    let stage = w.spec.stage_of(t);
    w.stage_remaining[stage as usize] -= 1;
    if w.stage_remaining[stage as usize] > 0 {
        return;
    }
    let correct = w
        .spec
        .tasks(stage)
        .filter(|&u| w.tasks[u as usize].effective == Some(true))
        .count() as u32;
    let wrong = w.spec.stages()[stage as usize].width - correct;
    w.report.stage_correct[stage as usize] = correct;
    w.report.stage_wrong[stage as usize] = wrong;
    sim.emit(RunEvent::StageDecided {
        stage,
        correct,
        wrong,
    });
    w.stages_done += 1;
    if w.stages_done == w.spec.len() {
        w.report.makespan_units = sim.now().as_units();
        sim.emit(RunEvent::RunEnded);
        return;
    }
    for i in 0..w.dependents[stage as usize].len() {
        let d = w.dependents[stage as usize][i];
        w.deps_unmet[d as usize] -= 1;
        if w.deps_unmet[d as usize] == 0 {
            open_stage(w, sim, d);
        }
    }
}

fn run_sim(spec: &DagSpec, cfg: &DagSimConfig, journal: bool) -> (DagRunReport, Journal) {
    let mut world = World::new(spec, cfg);
    let mut sim: Simulator<World> = Simulator::new();
    if journal {
        sim.enable_journal();
    }
    let ready: Vec<u32> = (0..spec.len() as u32)
        .filter(|&s| world.deps_unmet[s as usize] == 0)
        .collect();
    sim.schedule_at(SimTime::ZERO, move |w, sim| {
        for s in ready {
            open_stage(w, sim, s);
        }
    });
    sim.run(&mut world);
    assert_eq!(
        world.stages_done,
        spec.len(),
        "pipeline stalled: {} of {} stages decided",
        world.stages_done,
        spec.len()
    );
    let journal = sim.take_journal();
    (world.report, journal)
}

/// Runs one DAG pipeline without journaling (Monte-Carlo inner loop).
pub fn run(spec: &DagSpec, cfg: &DagSimConfig) -> DagRunReport {
    run_sim(spec, cfg, false).0
}

/// Runs one DAG pipeline with full event journaling.
pub fn run_journaled(spec: &DagSpec, cfg: &DagSimConfig) -> (DagRunReport, Journal) {
    run_sim(spec, cfg, true)
}

/// SplitMix64-style instance seed so Monte-Carlo runs use decorrelated
/// master seeds while staying a pure function of `(seed, instance)`.
pub fn instance_seed(seed: u64, instance: u64) -> u64 {
    let mut z = seed ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Monte-Carlo aggregate over many independent pipeline instances.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    /// Instances simulated.
    pub runs: usize,
    /// Mean per-run poison-escape rate over the sink stages.
    pub escape_rate: f64,
    /// Mean total job cost per run (vote jobs + hedge twins).
    pub mean_cost: f64,
    /// Mean end-to-end makespan per run, in units.
    pub mean_makespan: f64,
    /// Mean poisoned downstream tasks per run.
    pub mean_poisoned: f64,
}

/// Simulates `runs` independent instances of `(spec, cfg)` (instance `i`
/// reseeds with [`instance_seed`]) and averages. Results are bit-identical
/// for every thread count: each instance is a pure function of its index
/// and the fold runs in index order.
pub fn monte_carlo(spec: &DagSpec, cfg: &DagSimConfig, runs: usize, threads: Threads) -> DagStats {
    assert!(runs > 0, "need at least one run");
    let reports = map_indexed(runs, threads, |i| {
        let mut cfg = cfg.clone();
        cfg.seed = instance_seed(cfg.seed, i as u64);
        run(spec, &cfg)
    });
    let n = runs as f64;
    let mut escape = 0.0;
    let mut cost = 0.0;
    let mut makespan = 0.0;
    let mut poisoned = 0.0;
    for r in &reports {
        escape += r.escape_rate(spec);
        cost += r.total_cost() as f64;
        makespan += r.makespan_units;
        poisoned += r.poisoned_tasks as f64;
    }
    DagStats {
        runs,
        escape_rate: escape / n,
        mean_cost: cost / n,
        mean_makespan: makespan / n,
        mean_poisoned: poisoned / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StageSpec;
    use smartred_desim::journal::EventKind;

    fn small_spec(map: &str, combine: &str, reduce: &str) -> DagSpec {
        DagSpec::map_shuffle_reduce(
            4,
            1,
            StageStrategy::parse(map).unwrap(),
            StageStrategy::parse(combine).unwrap(),
            StageStrategy::parse(reduce).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn honest_pipeline_is_fully_correct() {
        let spec = small_spec("ir1", "ir1", "tr3");
        let cfg = DagSimConfig::default();
        let (report, journal) = run_journaled(&spec, &cfg);
        assert_eq!(report.stage_wrong, vec![0, 0, 0]);
        assert_eq!(report.stage_correct, vec![4, 4, 1]);
        assert_eq!(report.poisoned_tasks, 0);
        assert_eq!(report.escape_rate(&spec), 0.0);
        // Every replica paid a transfer before dispatch.
        assert_eq!(report.transfers, report.jobs);
        assert_eq!(
            journal.count(EventKind::TransferStarted) as u64,
            report.jobs
        );
        assert_eq!(
            journal.count(EventKind::TransferCompleted),
            journal.count(EventKind::TransferStarted)
        );
        assert_eq!(journal.count(EventKind::StageDecided), 3);
        assert_eq!(journal.count(EventKind::PoisonPropagated), 0);
        assert_eq!(journal.count(EventKind::RunEnded), 1);
        assert!(report.makespan_units > 0.0);
    }

    #[test]
    fn transfers_complete_before_dispatch() {
        let spec = small_spec("ir1", "ir1", "tr3");
        let (_, journal) = run_journaled(&spec, &DagSimConfig::default());
        // For each job, TransferStarted < TransferCompleted <= JobDispatched.
        for e in journal.events() {
            if let RunEvent::JobDispatched { job, .. } = e.event {
                let started = journal
                    .events()
                    .iter()
                    .find(
                        |s| matches!(s.event, RunEvent::TransferStarted { job: j, .. } if j == job),
                    )
                    .expect("every dispatch was preceded by a transfer");
                assert!(
                    started.at < e.at,
                    "job {job}: transfer must precede dispatch"
                );
            }
        }
    }

    #[test]
    fn targeted_adversary_poisons_descendants() {
        let spec = small_spec("tr1", "tr1", "tr1");
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.9, 0.0),
            ..DagSimConfig::default()
        };
        let (report, journal) = run_journaled(&spec, &cfg);
        // With 90% wrong single votes on the map cut, poison must flow.
        assert!(report.stage_wrong[0] > 0, "map stage should go wrong");
        assert!(report.poisoned_tasks > 0);
        assert_eq!(
            journal.count(EventKind::PoisonPropagated) as u64,
            report.poisoned_tasks
        );
        // Sink reads every combine output: it is poisoned too.
        assert_eq!(report.stage_wrong[2], 1);
        assert_eq!(report.escape_rate(&spec), 1.0);
    }

    #[test]
    fn stronger_redundancy_on_the_targeted_stage_blocks_poison() {
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.25, 0.0),
            ..DagSimConfig::default()
        };
        let weak = monte_carlo(
            &small_spec("ir1", "ir1", "ir1"),
            &cfg,
            60,
            Threads::fixed(2),
        );
        let strong = monte_carlo(
            &small_spec("ir5", "ir1", "ir1"),
            &cfg,
            60,
            Threads::fixed(2),
        );
        assert!(
            strong.escape_rate < weak.escape_rate,
            "ir5 on the attacked stage should escape less ({} vs {})",
            strong.escape_rate,
            weak.escape_rate
        );
    }

    #[test]
    fn journaled_runs_are_deterministic() {
        let spec = small_spec("ir2", "pr3", "tr3");
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.3, 0.02),
            ..DagSimConfig::default()
        };
        let (r1, j1) = run_journaled(&spec, &cfg);
        let (r2, j2) = run_journaled(&spec, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(j1.digest(), j2.digest());
        let mut other = cfg.clone();
        other.seed ^= 1;
        let (_, j3) = run_journaled(&spec, &other);
        assert_ne!(j1.digest(), j3.digest());
    }

    #[test]
    fn hedged_stages_launch_and_settle_twins() {
        let spec = DagSpec::new(vec![StageSpec::new(
            "map",
            8,
            1024,
            1.0,
            StageStrategy::hir(2).unwrap(),
        )])
        .unwrap();
        let cfg = DagSimConfig {
            hedge_after_units: 0.7, // ~80% of U[0.5,1.5] draws trigger
            ..DagSimConfig::default()
        };
        let (report, journal) = run_journaled(&spec, &cfg);
        assert!(report.hedge_jobs > 0, "low threshold must trigger twins");
        assert_eq!(
            journal.count(EventKind::HedgeLaunched) as u64,
            report.hedge_jobs
        );
        assert_eq!(
            journal.count(EventKind::HedgeWon) + journal.count(EventKind::HedgeWasted),
            journal.count(EventKind::HedgeLaunched)
        );
        // Exactly one vote per logical replica regardless of twins.
        assert_eq!(journal.count(EventKind::JobReturned) as u64, report.jobs);
    }

    #[test]
    fn monte_carlo_is_thread_invariant() {
        let spec = small_spec("ir2", "ir1", "tr3");
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.3, 0.02),
            ..DagSimConfig::default()
        };
        let a = monte_carlo(&spec, &cfg, 48, Threads::fixed(1));
        let b = monte_carlo(&spec, &cfg, 48, Threads::fixed(8));
        assert_eq!(a, b);
    }

    #[test]
    fn job_cap_counts_as_wrong_effective_output() {
        let spec = DagSpec::new(vec![StageSpec::new(
            "only",
            2,
            0,
            1.0,
            StageStrategy::ir(3).unwrap(),
        )])
        .unwrap();
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.5, 0.5),
            job_cap: Some(3),
            ..DagSimConfig::default()
        };
        let (report, journal) = run_journaled(&spec, &cfg);
        assert_eq!(
            report.stage_correct[0] + report.stage_wrong[0],
            2,
            "every task settles"
        );
        if journal.count(EventKind::TaskCapped) > 0 {
            assert!(report.stage_wrong[0] > 0);
        }
    }
}
