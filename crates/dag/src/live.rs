//! Stage-gated DAG execution against the live (wall-clock) runtime.
//!
//! The simulator in [`crate::sim`] owns its whole world; here the DAG
//! layer sits *on top of* a running [`smartred_runtime`] coordinator (or
//! sharded fleet): it submits one stage at a time, waits for every verdict
//! in the stage, works out which downstream tasks a wrong accepted output
//! poisons, and journals the DAG bookkeeping — `StageDecided` and
//! `PoisonPropagated` — durably into the runtime's WAL through the
//! client's annotation channel. A crash mid-pipeline therefore leaves a
//! WAL from which both the tally state (runtime recovery) and the stage
//! progress (the annotation stream) can be reconstructed.
//!
//! Task identity differs from the simulator: the runtime assigns its own
//! dense task ids at submission, so annotations reference *runtime* ids —
//! which is exactly what makes them shard-safe (the sharded router routes
//! an annotation by the task it references, landing it in the same WAL
//! segment as that task's votes).

use std::time::Duration;

use smartred_desim::journal::{Journal, RunEvent};
use smartred_runtime::{Client, Payload, ShardedClient, SubmitOutcome, TaskVerdict};

use crate::spec::{DagSpec, DepKind};

/// How long the driver waits for a verdict before concluding the runtime
/// crashed or shut down underneath it.
const VERDICT_PATIENCE: Duration = Duration::from_secs(30);

/// Back-off between submission retries while the admission gate is full.
const SHED_BACKOFF: Duration = Duration::from_millis(1);

/// Any submission surface the DAG driver can run against. Implemented by
/// both the single-coordinator [`Client`] and the sharded
/// [`ShardedClient`]; the driver never cares which.
pub trait DagClient {
    /// Submits one payload (see [`Client::submit`]).
    fn submit(&self, payload: Payload) -> SubmitOutcome;
    /// Waits for this client's next verdict.
    fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict>;
    /// Journals an annotation event durably into the runtime's WAL.
    fn annotate(&self, event: RunEvent) -> bool;
}

impl DagClient for Client {
    fn submit(&self, payload: Payload) -> SubmitOutcome {
        Client::submit(self, payload)
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict> {
        Client::recv_timeout(self, timeout)
    }
    fn annotate(&self, event: RunEvent) -> bool {
        Client::annotate(self, event)
    }
}

impl DagClient for ShardedClient {
    fn submit(&self, payload: Payload) -> SubmitOutcome {
        ShardedClient::submit(self, payload)
    }
    fn recv_timeout(&self, timeout: Duration) -> Option<TaskVerdict> {
        ShardedClient::recv_timeout(self, timeout)
    }
    fn annotate(&self, event: RunEvent) -> bool {
        ShardedClient::annotate(self, event)
    }
}

/// What a live DAG run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveDagReport {
    /// Runtime task id assigned to each DAG task, in global DAG-id order.
    pub runtime_ids: Vec<u32>,
    /// Per stage: tasks whose effective output is correct.
    pub stage_correct: Vec<u32>,
    /// Per stage: tasks whose effective output is wrong (own wrong or
    /// missing verdict, or upstream poison).
    pub stage_wrong: Vec<u32>,
    /// Downstream tasks poisoned by a wrong effective upstream output.
    pub poisoned_tasks: u32,
    /// Vote jobs the runtime dispatched for the DAG's tasks.
    pub jobs: u64,
    /// Whether the runtime died (crash or shutdown) before the pipeline
    /// finished; counts and annotations end at the last completed stage.
    pub crashed: bool,
}

impl LiveDagReport {
    /// Wrong effective outputs across `spec`'s sink stages.
    pub fn sink_wrong(&self, spec: &DagSpec) -> u32 {
        spec.sinks()
            .iter()
            .map(|&s| self.stage_wrong[s as usize])
            .sum()
    }

    /// Fraction of sink outputs whose effective value is wrong.
    pub fn escape_rate(&self, spec: &DagSpec) -> f64 {
        f64::from(self.sink_wrong(spec)) / f64::from(spec.sink_tasks())
    }
}

/// Runs `spec` against a live runtime, one stage at a time.
///
/// For each stage in topological order: every task is submitted (retrying
/// while the admission gate sheds), all verdicts are collected, poison is
/// propagated along the spec's dependency edges, and the stage verdict is
/// annotated into the WAL — `PoisonPropagated` per poisoned task (by
/// runtime id, so it routes to the owning shard) and one `StageDecided`
/// per stage. Stage `k + 1` is not submitted until stage `k` has decided:
/// the runtime's strategy gates every data edge.
///
/// A task's effective output is correct iff its accepted vote is the
/// honest one (`TaskVerdict::vote == Some(true)` — colluding workers
/// carry the `false` label) *and* no upstream dependency was effectively
/// wrong. Tasks that fail without a verdict (job cap, worker poisoning)
/// count as wrong.
///
/// Returns early with [`LiveDagReport::crashed`] set when the runtime
/// stops answering (chaos crash point or shutdown).
///
/// # Panics
///
/// Panics if `payloads.len()` differs from `spec.total_tasks()`.
pub fn run_dag<C: DagClient>(client: &C, spec: &DagSpec, payloads: &[Payload]) -> LiveDagReport {
    run_dag_with(client, spec, payloads, VERDICT_PATIENCE)
}

/// [`run_dag`] with an explicit verdict patience — how long the driver
/// waits on a silent runtime before declaring it crashed. Chaos tests use
/// a short patience; production callers should keep the default.
pub fn run_dag_with<C: DagClient>(
    client: &C,
    spec: &DagSpec,
    payloads: &[Payload],
    patience: Duration,
) -> LiveDagReport {
    assert_eq!(
        payloads.len(),
        spec.total_tasks() as usize,
        "one payload per DAG task"
    );
    let stages = spec.len();
    let mut report = LiveDagReport {
        runtime_ids: vec![0; payloads.len()],
        stage_correct: vec![0; stages],
        stage_wrong: vec![0; stages],
        poisoned_tasks: 0,
        jobs: 0,
        crashed: false,
    };
    // Per DAG task: Some(correct?) once its stage has decided.
    let mut effective: Vec<Option<bool>> = vec![None; payloads.len()];

    'stages: for stage in 0..stages as u32 {
        let range = spec.tasks(stage);
        let width = range.len();
        // Mark poison from already-decided upstream stages, then submit
        // the whole stage (poisoned tasks still run — they compute on bad
        // data; the cost is real even though the output is lost).
        let mut poisoned: Vec<Option<u32>> = vec![None; width];
        for t in range.clone() {
            let offset = (t - spec.base(stage)) as usize;
            for dep in &spec.stages()[stage as usize].deps {
                let bad = match dep.kind {
                    DepKind::All => spec
                        .tasks(dep.on)
                        .find(|&u| effective[u as usize] == Some(false)),
                    DepKind::Pairwise => {
                        let u = spec.base(dep.on) + offset as u32;
                        (effective[u as usize] == Some(false)).then_some(u)
                    }
                };
                if let Some(u) = bad {
                    let slot = &mut poisoned[offset];
                    *slot = Some(slot.map_or(u, |f| f.min(u)));
                }
            }
        }
        for t in range.clone() {
            let offset = (t - spec.base(stage)) as usize;
            let id = loop {
                match client.submit(payloads[t as usize].clone()) {
                    SubmitOutcome::Accepted { task } | SubmitOutcome::Queued { task } => {
                        break task
                    }
                    SubmitOutcome::Shed => std::thread::sleep(SHED_BACKOFF),
                }
            };
            report.runtime_ids[t as usize] = id;
            if let Some(u) = poisoned[offset] {
                report.poisoned_tasks += 1;
                if !client.annotate(RunEvent::PoisonPropagated {
                    task: id,
                    stage,
                    from: report.runtime_ids[u as usize],
                }) {
                    report.crashed = true;
                    break 'stages;
                }
            }
        }
        // Collect the stage's verdicts (they arrive in completion order;
        // match them back to DAG slots by runtime id).
        let mut decided = 0usize;
        while decided < width {
            let Some(verdict) = client.recv_timeout(patience) else {
                report.crashed = true;
                break 'stages;
            };
            let offset = range
                .clone()
                .position(|t| report.runtime_ids[t as usize] == verdict.task)
                .expect("verdict for a task this driver never submitted");
            let t = spec.base(stage) + offset as u32;
            report.jobs += u64::from(verdict.jobs);
            let own_correct = verdict.vote == Some(true);
            effective[t as usize] = Some(own_correct && poisoned[offset].is_none());
            decided += 1;
        }
        let correct = range
            .clone()
            .filter(|&t| effective[t as usize] == Some(true))
            .count() as u32;
        let wrong = width as u32 - correct;
        report.stage_correct[stage as usize] = correct;
        report.stage_wrong[stage as usize] = wrong;
        if !client.annotate(RunEvent::StageDecided {
            stage,
            correct,
            wrong,
        }) {
            report.crashed = true;
            break;
        }
    }
    report
}

/// The DAG annotation stream as recovered from a journal (or a WAL
/// prefix): per-stage verdicts and the poison count. Lets tests and
/// recovery tooling cross-check a [`LiveDagReport`] against what actually
/// reached disk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagAnnotations {
    /// `(stage, correct, wrong)` in journal order.
    pub stages: Vec<(u32, u32, u32)>,
    /// `PoisonPropagated` events seen.
    pub poisoned_tasks: u32,
}

/// Extracts the DAG annotations a live run journaled into `journal`.
pub fn annotations_from_journal(journal: &Journal) -> DagAnnotations {
    let mut out = DagAnnotations::default();
    for e in journal.events() {
        match e.event {
            RunEvent::StageDecided {
                stage,
                correct,
                wrong,
            } => out.stages.push((stage, correct, wrong)),
            RunEvent::PoisonPropagated { .. } => out.poisoned_tasks += 1,
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DagSpec, StageSpec, StageStrategy};
    use smartred_runtime::{
        FaultProfile, FaultyWorker, JobAssignment, Runtime, RuntimeConfig, Worker,
    };

    fn spec() -> DagSpec {
        DagSpec::map_shuffle_reduce(
            4,
            1,
            StageStrategy::ir(2).unwrap(),
            StageStrategy::ir(2).unwrap(),
            StageStrategy::ir(2).unwrap(),
        )
        .unwrap()
    }

    fn payloads(spec: &DagSpec) -> Vec<Payload> {
        (0..spec.total_tasks())
            .map(|t| Payload::Synthetic {
                answer: t % 2 == 0,
                work: Duration::ZERO,
            })
            .collect()
    }

    /// Colludes (unanimously) on one chosen runtime task id, so exactly
    /// that task accepts a wrong verdict — deterministic poisoning.
    struct TargetedColluder {
        target: u32,
    }

    impl Worker for TargetedColluder {
        fn execute(&mut self, job: &JobAssignment) -> Option<(bool, bool)> {
            let honest = job.payload.execute();
            if job.task == self.target {
                Some((false, !honest))
            } else {
                Some((true, honest))
            }
        }
    }

    fn runtime_with_target(target: Option<u32>) -> Runtime {
        let cfg = RuntimeConfig {
            workers: Some(4),
            journal: true,
            ..RuntimeConfig::default()
        };
        Runtime::start(
            cfg,
            StageStrategy::ir(2).unwrap(),
            move |_node| match target {
                Some(t) => Box::new(TargetedColluder { target: t }) as Box<dyn Worker>,
                None => Box::new(FaultyWorker::new(7, FaultProfile::default())) as Box<dyn Worker>,
            },
        )
    }

    #[test]
    fn honest_pipeline_decides_every_stage_in_order() {
        let spec = spec();
        let rt = runtime_with_target(None);
        let client = rt.client();
        let report = run_dag(&client, &spec, &payloads(&spec));
        drop(client);
        let run = rt.finish();
        assert!(!report.crashed);
        assert_eq!(report.stage_correct, vec![4, 4, 1]);
        assert_eq!(report.stage_wrong, vec![0, 0, 0]);
        assert_eq!(report.poisoned_tasks, 0);
        assert_eq!(report.escape_rate(&spec), 0.0);
        // The WAL-bound annotation stream matches the live report, in
        // stage order.
        let ann = annotations_from_journal(&run.journal);
        assert_eq!(ann.stages, vec![(0, 4, 0), (1, 4, 0), (2, 1, 0)]);
        assert_eq!(ann.poisoned_tasks, 0);
    }

    #[test]
    fn wrong_accepted_intermediate_poisons_descendants() {
        // Chain a → b (pairwise) → c (shuffle). Workers collude on task 1
        // only: the runtime accepts its wrong output, and the driver must
        // poison its pairwise descendant and the shuffle sink. Runtime
        // ids equal DAG ids here — the driver submits sequentially into a
        // fresh runtime.
        let spec = DagSpec::new(vec![
            StageSpec::new("a", 3, 0, 1.0, StageStrategy::ir(2).unwrap()),
            StageSpec::new("b", 3, 0, 1.0, StageStrategy::ir(2).unwrap()).after_pairwise(0),
            StageSpec::new("c", 1, 0, 1.0, StageStrategy::ir(2).unwrap()).after(1),
        ])
        .unwrap();
        let rt = runtime_with_target(Some(1));
        let client = rt.client();
        let report = run_dag(&client, &spec, &payloads(&spec));
        drop(client);
        let run = rt.finish();
        assert!(!report.crashed);
        assert_eq!(report.stage_wrong, vec![1, 1, 1]);
        // Task 4 (pairwise under task 1) and the sink are poisoned.
        assert_eq!(report.poisoned_tasks, 2);
        assert_eq!(report.escape_rate(&spec), 1.0);
        let ann = annotations_from_journal(&run.journal);
        assert_eq!(ann.stages, vec![(0, 2, 1), (1, 2, 1), (2, 0, 1)]);
        assert_eq!(ann.poisoned_tasks, 2);
    }

    #[test]
    fn sharded_runs_route_annotations_with_their_tasks() {
        use smartred_runtime::{ShardedConfig, ShardedRuntime};
        let spec = spec();
        let mut cfg = ShardedConfig::new(2);
        cfg.base.workers = Some(4);
        cfg.base.journal = true;
        let rt = ShardedRuntime::start(cfg, StageStrategy::ir(2).unwrap(), |_node| {
            Box::new(TargetedColluder { target: 2 }) as Box<dyn Worker>
        });
        let client = rt.client();
        let report = run_dag(&client, &spec, &payloads(&spec));
        drop(client);
        let run = rt.finish();
        assert!(!report.crashed);
        // Map task 2 wrong → its pairwise combine child is poisoned, and
        // the shuffle-fed reduce sink after it.
        assert_eq!(report.stage_wrong, vec![1, 1, 1]);
        assert_eq!(report.poisoned_tasks, 2);
        // Annotations survive the deterministic sharded merge.
        let ann = annotations_from_journal(&run.journal);
        assert_eq!(ann.poisoned_tasks, 2);
        assert_eq!(ann.stages.len(), 3);
        let mut by_stage = ann.stages.clone();
        by_stage.sort_unstable();
        assert_eq!(by_stage, vec![(0, 3, 1), (1, 3, 1), (2, 0, 1)]);
    }

    #[test]
    fn crashed_runtime_reports_instead_of_hanging() {
        let spec = spec();
        let cfg = RuntimeConfig {
            workers: Some(2),
            journal: true,
            crash_after_events: Some(6),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::start(cfg, StageStrategy::ir(2).unwrap(), |_node| {
            Box::new(FaultyWorker::new(7, FaultProfile::default())) as Box<dyn Worker>
        });
        let client = rt.client();
        let report = run_dag_with(&client, &spec, &payloads(&spec), Duration::from_millis(500));
        drop(client);
        let run = rt.finish();
        assert!(report.crashed);
        assert!(run.crashed);
    }
}
