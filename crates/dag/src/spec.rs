//! Typed DAG workload specifications.
//!
//! A [`DagSpec`] is an ordered list of [`StageSpec`]s with data
//! dependencies on earlier stages. Each stage runs `width` tasks under its
//! own [`StageStrategy`]; a task may start only after every stage it
//! depends on has decided all of its tasks, and a wrong accepted upstream
//! output poisons the dependent task's result no matter how its own
//! replicas vote.
//!
//! Task ids are dense and global: stage `i`'s tasks occupy
//! `base(i) .. base(i) + width(i)` in spec order, so the sharded runtime's
//! `shard_of` routing and the journal's per-task queries work unchanged.

use std::fmt;
use std::ops::Range;

use smartred_core::error::ParamError;
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Decision, Iterative, Progressive, RedundancyStrategy, Traditional};
use smartred_core::tally::VoteTally;

/// One stage's redundancy technique, selectable per stage.
///
/// `HedgedIterative` votes exactly like [`Iterative`] (hedging never
/// touches the tally) but tells the platform to arm straggler twins for
/// this stage's replicas.
///
/// # Examples
///
/// ```
/// use smartred_dag::StageStrategy;
///
/// let s = StageStrategy::parse("ir3").unwrap();
/// assert_eq!(s.label(), "ir3");
/// assert!(!s.hedged());
/// assert!(StageStrategy::parse("hir2").unwrap().hedged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageStrategy {
    /// Traditional `k`-vote (paper §3.1).
    Traditional(Traditional),
    /// Progressive `k`-vote (paper §3.2).
    Progressive(Progressive),
    /// Iterative with vote margin `d` (paper §3.3).
    Iterative(Iterative),
    /// Iterative voting plus straggler-hedged replicas.
    HedgedIterative(Iterative),
}

impl StageStrategy {
    /// Traditional redundancy with `k` votes (`k` odd).
    pub fn tr(k: usize) -> Result<Self, ParamError> {
        Ok(StageStrategy::Traditional(Traditional::new(KVotes::new(
            k,
        )?)))
    }

    /// Progressive redundancy with `k` votes (`k` odd).
    pub fn pr(k: usize) -> Result<Self, ParamError> {
        Ok(StageStrategy::Progressive(Progressive::new(KVotes::new(
            k,
        )?)))
    }

    /// Iterative redundancy with vote margin `d`.
    pub fn ir(d: usize) -> Result<Self, ParamError> {
        Ok(StageStrategy::Iterative(Iterative::new(VoteMargin::new(
            d,
        )?)))
    }

    /// Hedged iterative redundancy with vote margin `d`.
    pub fn hir(d: usize) -> Result<Self, ParamError> {
        Ok(StageStrategy::HedgedIterative(Iterative::new(
            VoteMargin::new(d)?,
        )))
    }

    /// Whether the platform should arm straggler twins for this stage.
    pub fn hedged(self) -> bool {
        matches!(self, StageStrategy::HedgedIterative(_))
    }

    /// Canonical compact label: `tr3`, `pr5`, `ir4`, `hir4`.
    pub fn label(self) -> String {
        match self {
            StageStrategy::Traditional(t) => format!("tr{}", t.k()),
            StageStrategy::Progressive(p) => format!("pr{}", p.k()),
            StageStrategy::Iterative(i) => format!("ir{}", i.d()),
            StageStrategy::HedgedIterative(i) => format!("hir{}", i.d()),
        }
    }

    /// Parses a compact label as produced by [`label`](Self::label).
    pub fn parse(s: &str) -> Option<Self> {
        let with = |digits: &str, make: fn(usize) -> Result<Self, ParamError>| {
            digits.parse::<usize>().ok().and_then(|n| make(n).ok())
        };
        if let Some(rest) = s.strip_prefix("hir") {
            with(rest, Self::hir)
        } else if let Some(rest) = s.strip_prefix("tr") {
            with(rest, Self::tr)
        } else if let Some(rest) = s.strip_prefix("pr") {
            with(rest, Self::pr)
        } else if let Some(rest) = s.strip_prefix("ir") {
            with(rest, Self::ir)
        } else {
            None
        }
    }
}

impl RedundancyStrategy<bool> for StageStrategy {
    fn name(&self) -> &'static str {
        match self {
            StageStrategy::Traditional(t) => RedundancyStrategy::<bool>::name(t),
            StageStrategy::Progressive(p) => RedundancyStrategy::<bool>::name(p),
            StageStrategy::Iterative(i) => RedundancyStrategy::<bool>::name(i),
            StageStrategy::HedgedIterative(_) => "hedged-iterative",
        }
    }

    fn decide(&self, tally: &VoteTally<bool>) -> Decision<bool> {
        match self {
            StageStrategy::Traditional(t) => t.decide(tally),
            StageStrategy::Progressive(p) => p.decide(tally),
            StageStrategy::Iterative(i) | StageStrategy::HedgedIterative(i) => i.decide(tally),
        }
    }

    fn job_bound(&self) -> Option<usize> {
        match self {
            StageStrategy::Traditional(t) => RedundancyStrategy::<bool>::job_bound(t),
            StageStrategy::Progressive(p) => RedundancyStrategy::<bool>::job_bound(p),
            StageStrategy::Iterative(i) | StageStrategy::HedgedIterative(i) => {
                RedundancyStrategy::<bool>::job_bound(i)
            }
        }
    }
}

/// How a dependent stage's tasks wire to an upstream stage's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Shuffle edge: every dependent task reads every upstream output, so
    /// one wrong upstream output poisons the whole dependent stage.
    All,
    /// Chain edge: dependent task `i` reads only upstream task `i`'s
    /// output (stages must have equal width).
    Pairwise,
}

/// One data dependency of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDep {
    /// Index of the upstream stage (must precede the dependent stage).
    pub on: u32,
    /// How outputs wire to the dependent stage's tasks.
    pub kind: DepKind,
}

/// One pipeline stage: `width` parallel tasks of identical shape.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Human-readable stage name (report/bench labels).
    pub name: String,
    /// Number of parallel tasks in this stage.
    pub width: u32,
    /// Input payload bytes each replica must receive before starting.
    pub payload_bytes: u64,
    /// Mean service time scale in simulated units (replica durations are
    /// `U[0.5, 1.5] × service_units`, the paper's window).
    pub service_units: f64,
    /// The redundancy technique this stage's tasks run under.
    pub strategy: StageStrategy,
    /// Upstream stages whose verdicts gate this stage's dispatch.
    pub deps: Vec<StageDep>,
}

impl StageSpec {
    /// A stage with no dependencies (callers chain [`after`](Self::after)).
    pub fn new(
        name: impl Into<String>,
        width: u32,
        payload_bytes: u64,
        service_units: f64,
        strategy: StageStrategy,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            payload_bytes,
            service_units,
            strategy,
            deps: Vec::new(),
        }
    }

    /// Adds a shuffle (all-to-all) dependency on `stage`.
    pub fn after(mut self, stage: u32) -> Self {
        self.deps.push(StageDep {
            on: stage,
            kind: DepKind::All,
        });
        self
    }

    /// Adds a pairwise (task-`i`-to-task-`i`) dependency on `stage`.
    pub fn after_pairwise(mut self, stage: u32) -> Self {
        self.deps.push(StageDep {
            on: stage,
            kind: DepKind::Pairwise,
        });
        self
    }
}

/// Why a [`DagSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagSpecError {
    /// The spec has no stages.
    Empty,
    /// A stage has zero tasks.
    EmptyStage(u32),
    /// A stage's service scale is non-positive or not finite.
    BadService(u32),
    /// A dependency points at the stage itself or a later stage.
    ForwardDep {
        /// The dependent stage.
        stage: u32,
        /// The (invalid) upstream index.
        on: u32,
    },
    /// A pairwise dependency joins stages of different widths.
    WidthMismatch {
        /// The dependent stage.
        stage: u32,
        /// The upstream stage.
        on: u32,
    },
}

impl fmt::Display for DagSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagSpecError::Empty => write!(f, "a DAG needs at least one stage"),
            DagSpecError::EmptyStage(s) => write!(f, "stage {s} has zero tasks"),
            DagSpecError::BadService(s) => {
                write!(f, "stage {s} has a non-positive service scale")
            }
            DagSpecError::ForwardDep { stage, on } => write!(
                f,
                "stage {stage} depends on stage {on}, which does not precede it"
            ),
            DagSpecError::WidthMismatch { stage, on } => write!(
                f,
                "pairwise dependency of stage {stage} on stage {on} joins different widths"
            ),
        }
    }
}

impl std::error::Error for DagSpecError {}

/// A validated DAG of stages (dependencies always point backwards, so the
/// spec order is a topological order).
#[derive(Debug, Clone, PartialEq)]
pub struct DagSpec {
    stages: Vec<StageSpec>,
    /// `base[i]` = first global task id of stage `i`; one extra entry
    /// holds the total task count.
    base: Vec<u32>,
}

impl DagSpec {
    /// Validates and freezes a stage list.
    ///
    /// # Errors
    ///
    /// Rejects empty specs, empty stages, non-positive service scales,
    /// forward/self dependencies, and pairwise width mismatches.
    pub fn new(stages: Vec<StageSpec>) -> Result<Self, DagSpecError> {
        if stages.is_empty() {
            return Err(DagSpecError::Empty);
        }
        let mut base = Vec::with_capacity(stages.len() + 1);
        let mut next = 0u32;
        for (i, stage) in stages.iter().enumerate() {
            let i = i as u32;
            if stage.width == 0 {
                return Err(DagSpecError::EmptyStage(i));
            }
            if !(stage.service_units.is_finite() && stage.service_units > 0.0) {
                return Err(DagSpecError::BadService(i));
            }
            for dep in &stage.deps {
                if dep.on >= i {
                    return Err(DagSpecError::ForwardDep {
                        stage: i,
                        on: dep.on,
                    });
                }
                if dep.kind == DepKind::Pairwise && stages[dep.on as usize].width != stage.width {
                    return Err(DagSpecError::WidthMismatch {
                        stage: i,
                        on: dep.on,
                    });
                }
            }
            base.push(next);
            next += stage.width;
        }
        base.push(next);
        Ok(Self { stages, base })
    }

    /// The classic 3-stage map → shuffle/combine → reduce pipeline over
    /// 3-SAT assignment blocks: `width` map tasks, `width` pairwise
    /// combine tasks, and one narrow reduce stage of `reduce_width` tasks
    /// reading every combine output.
    ///
    /// # Errors
    ///
    /// Propagates [`DagSpec::new`] validation.
    pub fn map_shuffle_reduce(
        width: u32,
        reduce_width: u32,
        map: StageStrategy,
        combine: StageStrategy,
        reduce: StageStrategy,
    ) -> Result<Self, DagSpecError> {
        Self::new(vec![
            StageSpec::new("map", width, 64 * 1024, 1.0, map),
            StageSpec::new("combine", width, 8 * 1024, 0.5, combine).after_pairwise(0),
            StageSpec::new("reduce", reduce_width, 2 * 1024, 0.75, reduce).after(1),
        ])
    }

    /// The stages, in topological (spec) order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the spec has no stages (never true for a validated spec).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Total tasks across all stages.
    pub fn total_tasks(&self) -> u32 {
        *self.base.last().expect("base always has len+1 entries")
    }

    /// First global task id of `stage`.
    pub fn base(&self, stage: u32) -> u32 {
        self.base[stage as usize]
    }

    /// Global task-id range of `stage`.
    pub fn tasks(&self, stage: u32) -> Range<u32> {
        self.base[stage as usize]..self.base[stage as usize + 1]
    }

    /// The stage that owns global task id `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn stage_of(&self, task: u32) -> u32 {
        assert!(task < self.total_tasks(), "task {task} out of range");
        // base is sorted; partition_point returns the first stage whose
        // base exceeds `task`.
        (self.base.partition_point(|&b| b <= task) - 1) as u32
    }

    /// Sink stages: those no other stage depends on. The pipeline's
    /// poison-escape rate is measured over their effective outputs.
    pub fn sinks(&self) -> Vec<u32> {
        let mut depended: Vec<bool> = vec![false; self.stages.len()];
        for stage in &self.stages {
            for dep in &stage.deps {
                depended[dep.on as usize] = true;
            }
        }
        (0..self.stages.len() as u32)
            .filter(|&i| !depended[i as usize])
            .collect()
    }

    /// Total tasks across the sink stages.
    pub fn sink_tasks(&self) -> u32 {
        self.sinks()
            .iter()
            .map(|&s| self.stages[s as usize].width)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir1() -> StageStrategy {
        StageStrategy::ir(1).unwrap()
    }

    #[test]
    fn strategy_labels_round_trip() {
        for label in ["tr3", "pr5", "ir2", "hir4"] {
            let s = StageStrategy::parse(label).unwrap();
            assert_eq!(s.label(), label);
        }
        assert!(StageStrategy::parse("xx3").is_none());
        assert!(StageStrategy::parse("tr4").is_none()); // even k
        assert!(StageStrategy::parse("ir0").is_none());
    }

    #[test]
    fn strategy_votes_delegate() {
        use smartred_core::strategy::Decision;
        let mut tally = VoteTally::new();
        assert_eq!(
            StageStrategy::tr(3).unwrap().decide(&tally).deploy_count(),
            Some(3)
        );
        tally.record(true);
        tally.record(true);
        assert_eq!(
            StageStrategy::ir(2).unwrap().decide(&tally),
            Decision::Accept(true)
        );
        // Hedged votes exactly like its inner iterative.
        assert_eq!(
            StageStrategy::hir(2).unwrap().decide(&tally),
            StageStrategy::ir(2).unwrap().decide(&tally)
        );
        assert_eq!(
            RedundancyStrategy::<bool>::job_bound(&StageStrategy::tr(5).unwrap()),
            Some(5)
        );
    }

    #[test]
    fn task_id_layout_is_dense_per_stage() {
        let spec = DagSpec::map_shuffle_reduce(6, 2, ir1(), ir1(), ir1()).unwrap();
        assert_eq!(spec.total_tasks(), 14);
        assert_eq!(spec.tasks(0), 0..6);
        assert_eq!(spec.tasks(1), 6..12);
        assert_eq!(spec.tasks(2), 12..14);
        assert_eq!(spec.stage_of(0), 0);
        assert_eq!(spec.stage_of(5), 0);
        assert_eq!(spec.stage_of(6), 1);
        assert_eq!(spec.stage_of(13), 2);
        assert_eq!(spec.sinks(), vec![2]);
        assert_eq!(spec.sink_tasks(), 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert_eq!(DagSpec::new(vec![]), Err(DagSpecError::Empty));
        assert_eq!(
            DagSpec::new(vec![StageSpec::new("a", 0, 0, 1.0, ir1())]),
            Err(DagSpecError::EmptyStage(0))
        );
        assert_eq!(
            DagSpec::new(vec![StageSpec::new("a", 1, 0, 0.0, ir1())]),
            Err(DagSpecError::BadService(0))
        );
        assert_eq!(
            DagSpec::new(vec![StageSpec::new("a", 1, 0, 1.0, ir1()).after(0)]),
            Err(DagSpecError::ForwardDep { stage: 0, on: 0 })
        );
        assert_eq!(
            DagSpec::new(vec![
                StageSpec::new("a", 2, 0, 1.0, ir1()),
                StageSpec::new("b", 3, 0, 1.0, ir1()).after_pairwise(0),
            ]),
            Err(DagSpecError::WidthMismatch { stage: 1, on: 0 })
        );
        // Errors render.
        assert!(DagSpecError::Empty.to_string().contains("at least one"));
    }

    #[test]
    fn multi_sink_dags_are_allowed() {
        let spec = DagSpec::new(vec![
            StageSpec::new("root", 2, 0, 1.0, ir1()),
            StageSpec::new("left", 2, 0, 1.0, ir1()).after_pairwise(0),
            StageSpec::new("right", 1, 0, 1.0, ir1()).after(0),
        ])
        .unwrap();
        assert_eq!(spec.sinks(), vec![1, 2]);
        assert_eq!(spec.sink_tasks(), 3);
    }
}
