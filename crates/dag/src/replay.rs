//! Rebuilds a [`DagRunReport`] from a journaled event stream.
//!
//! The fold is exact: replaying the journal of [`crate::sim::run_journaled`]
//! must reproduce the live report bit-for-bit, which makes the journal (and
//! any WAL prefix of it that re-reaches `RunEnded`) a complete record of
//! the run. Tests assert equality on every scenario.

use smartred_desim::journal::{EventKind, Journal, RunEvent};

use crate::sim::DagRunReport;
use crate::spec::DagSpec;

/// Folds `journal` into the report its run produced.
///
/// Only DAG-relevant events contribute: dispatches (per-stage job counts),
/// transfers, hedge launches, stage verdicts, poison marks, and the final
/// `RunEnded` makespan stamp. Everything else (votes, waves, verdicts) is
/// already summarized by the `StageDecided` stream.
///
/// # Panics
///
/// Panics if an event references a task or stage outside `spec` — that
/// journal belongs to a different spec.
pub fn report_from_journal(journal: &Journal, spec: &DagSpec) -> DagRunReport {
    let mut report = DagRunReport {
        makespan_units: 0.0,
        jobs: 0,
        hedge_jobs: 0,
        transfers: 0,
        bytes_moved: 0,
        stage_jobs: vec![0; spec.len()],
        stage_correct: vec![0; spec.len()],
        stage_wrong: vec![0; spec.len()],
        poisoned_tasks: 0,
    };
    for e in journal.events() {
        match e.event {
            RunEvent::JobDispatched { task, .. } => {
                report.jobs += 1;
                report.stage_jobs[spec.stage_of(task) as usize] += 1;
            }
            RunEvent::TransferStarted { bytes, .. } => {
                report.transfers += 1;
                report.bytes_moved += bytes;
            }
            RunEvent::HedgeLaunched { .. } => report.hedge_jobs += 1,
            RunEvent::StageDecided {
                stage,
                correct,
                wrong,
            } => {
                report.stage_correct[stage as usize] = correct;
                report.stage_wrong[stage as usize] = wrong;
            }
            RunEvent::PoisonPropagated { .. } => report.poisoned_tasks += 1,
            RunEvent::RunEnded => report.makespan_units = e.at.as_units(),
            _ => {}
        }
    }
    debug_assert_eq!(
        journal.count(EventKind::RunEnded),
        1,
        "a complete DAG journal carries exactly one run-ended event"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_journaled, DagSimConfig, PoisonAdversary};
    use crate::spec::{DagSpec, StageStrategy};

    fn spec() -> DagSpec {
        DagSpec::map_shuffle_reduce(
            4,
            1,
            StageStrategy::ir(2).unwrap(),
            StageStrategy::pr(3).unwrap(),
            StageStrategy::tr(3).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn replay_reproduces_the_live_report_exactly() {
        for (targeted, background) in [(0.0, 0.0), (0.35, 0.02)] {
            let cfg = DagSimConfig {
                adversary: PoisonAdversary::targeting(0, targeted, background),
                ..DagSimConfig::default()
            };
            let (live, journal) = run_journaled(&spec(), &cfg);
            assert_eq!(report_from_journal(&journal, &spec()), live);
        }
    }

    #[test]
    fn replay_survives_jsonl_round_trip() {
        let cfg = DagSimConfig {
            adversary: PoisonAdversary::targeting(0, 0.4, 0.05),
            ..DagSimConfig::default()
        };
        let (live, journal) = run_journaled(&spec(), &cfg);
        let restored = Journal::from_jsonl(&journal.to_jsonl()).expect("round trip");
        assert_eq!(restored.digest(), journal.digest());
        assert_eq!(report_from_journal(&restored, &spec()), live);
    }

    #[test]
    fn replay_of_hedged_runs_counts_twins() {
        let spec = DagSpec::map_shuffle_reduce(
            6,
            1,
            StageStrategy::hir(2).unwrap(),
            StageStrategy::ir(1).unwrap(),
            StageStrategy::tr(3).unwrap(),
        )
        .unwrap();
        let cfg = DagSimConfig {
            hedge_after_units: 0.8,
            ..DagSimConfig::default()
        };
        let (live, journal) = run_journaled(&spec, &cfg);
        assert!(live.hedge_jobs > 0);
        assert_eq!(report_from_journal(&journal, &spec), live);
    }
}
