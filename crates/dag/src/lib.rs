//! # smartred-dag — network-aware DAG workloads with per-stage redundancy
//!
//! The paper's redundancy strategies treat tasks as independent, but the
//! regime where smart redundancy matters most is a *pipeline*: a wrong
//! accepted intermediate poisons everything computed from it. This crate
//! adds that workload layer on top of the existing decision surface:
//!
//! * [`spec`] — typed DAGs of stages with data dependencies, each stage
//!   under its own strategy ([`StageStrategy`]: TR/PR/IR/hedged-IR);
//! * [`sim`] — a transfer-charged discrete-event simulation: replicas pay
//!   their stage's payload transfer through
//!   [`smartred_desim::network::NetworkModel`] before service, stage
//!   verdicts gate dependent dispatch, and poison propagates along data
//!   edges (journaled as `TransferStarted` / `TransferCompleted` /
//!   `StageDecided` / `PoisonPropagated` events);
//! * [`replay`] — exact report reconstruction from the journal;
//! * [`live`] — stage-gated submission against the live (wall-clock)
//!   runtime, with DAG events journaled durably into its WAL.
//!
//! The motivating trade-off (Peng, Soljanin & Whiting, arXiv:2010.02147;
//! Rajesh, Karamchandani & Prabhakaran, arXiv:2507.16014): data-movement
//! cost penalizes redundancy *uniformly*, while verification gates make
//! redundancy most valuable on the stages an adversary actually attacks —
//! so placing strategies per stage beats any uniform choice at matched
//! total job cost.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod live;
pub mod replay;
pub mod sim;
pub mod spec;

pub use live::{
    annotations_from_journal, run_dag, run_dag_with, DagAnnotations, DagClient, LiveDagReport,
};
pub use replay::report_from_journal;
pub use sim::{
    instance_seed, monte_carlo, run, run_journaled, DagRunReport, DagSimConfig, DagStats,
    PoisonAdversary,
};
pub use spec::{DagSpec, DagSpecError, DepKind, StageDep, StageSpec, StageStrategy};
