//! Golden journal digests for seeded DAG pipeline runs.
//!
//! One pinned digest per per-stage strategy mix. These pins freeze the
//! complete observable behavior of the DAG simulator — every event, field,
//! and timestamp — under a fixed seed and config: any change to replica
//! scheduling, transfer charging, vote draws, hedge arming, poison
//! propagation, or JSONL encoding shows up as a digest mismatch here
//! before it silently shifts published results. The digests must also be
//! invariant under `SMARTRED_THREADS`, because a journaled run is a pure
//! single-threaded fold no matter what the parallelism knob says.
//!
//! If a PR changes these digests *intentionally* (new event fields, a
//! different draw order), re-pin them and say so in the PR description.

use smartred_dag::{run_journaled, DagSimConfig, DagSpec, PoisonAdversary, StageStrategy};
use smartred_desim::network::LinkSpec;
use smartred_desim::time::SimDuration;

/// The pinned config: explicit in every field so a change to
/// `DagSimConfig::default()` cannot silently re-seed the goldens.
fn golden_cfg() -> DagSimConfig {
    DagSimConfig {
        nodes: 24,
        seed: 20110620,
        link: LinkSpec::new(64 * 1024, SimDuration::from_units(0.05)),
        speed_spread: 0.2,
        adversary: PoisonAdversary::targeting(0, 0.3, 0.02),
        job_cap: None,
        hedge_after_units: 1.0,
    }
}

fn golden_spec(map: &str, combine: &str, reduce: &str) -> DagSpec {
    DagSpec::map_shuffle_reduce(
        8,
        2,
        StageStrategy::parse(map).unwrap(),
        StageStrategy::parse(combine).unwrap(),
        StageStrategy::parse(reduce).unwrap(),
    )
    .unwrap()
}

/// `(map, combine, reduce) -> journal digest` for the pinned seed.
const PINS: &[(&str, &str, &str, &str)] = &[
    ("ir4", "ir2", "tr3", "a3c42b3db3a8d545"),
    ("tr3", "tr3", "tr3", "3da1bca96db5d74e"),
    ("pr5", "ir1", "tr3", "61b1c5e7fa3b5059"),
    ("hir4", "ir2", "tr3", "4a21948fe6257882"),
];

#[test]
fn seeded_dag_runs_match_their_pinned_digests() {
    let cfg = golden_cfg();
    for &(map, combine, reduce, pin) in PINS {
        let (_, journal) = run_journaled(&golden_spec(map, combine, reduce), &cfg);
        assert_eq!(
            journal.digest_hex(),
            pin,
            "digest drifted for mix {map}/{combine}/{reduce}"
        );
    }
}

#[test]
fn pinned_digests_are_thread_setting_invariant() {
    let cfg = golden_cfg();
    let spec = golden_spec("ir4", "ir2", "tr3");
    let mut digests = Vec::new();
    for threads in ["1", "8"] {
        std::env::set_var("SMARTRED_THREADS", threads);
        let (_, journal) = run_journaled(&spec, &cfg);
        digests.push(journal.digest_hex());
    }
    std::env::remove_var("SMARTRED_THREADS");
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], PINS[0].3);
}

#[test]
fn a_different_seed_moves_every_pin() {
    let mut cfg = golden_cfg();
    cfg.seed ^= 1;
    for &(map, combine, reduce, pin) in PINS {
        let (_, journal) = run_journaled(&golden_spec(map, combine, reduce), &cfg);
        assert_ne!(
            journal.digest_hex(),
            pin,
            "mix {map}/{combine}/{reduce}: digest ignored the seed"
        );
    }
}
