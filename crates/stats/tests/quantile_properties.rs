//! Property-based tests of the P² streaming quantile estimator: the
//! estimate never escapes the observed value range, the exact warm-up
//! path is monotone in the target quantile, estimates are a pure fold of
//! the stream, and on shuffled uniform ramps the estimate tracks the true
//! quantile — the guarantees the hedge trigger's "never fire before the
//! configured quantile" contract rests on.

use proptest::prelude::*;
use smartred_stats::P2Quantile;

proptest! {
    /// After every observation, the estimate lies inside the closed range
    /// of values seen so far — a threshold derived from it can never
    /// demand a latency no worker has exhibited.
    #[test]
    fn estimate_always_lies_within_observed_bounds(
        q in 0.01f64..0.99,
        xs in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200),
    ) {
        let mut est = P2Quantile::new(q);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            est.observe(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let e = est.estimate().expect("at least one observation");
            prop_assert!(
                (lo..=hi).contains(&e),
                "estimate {e} escaped [{lo}, {hi}] after {} observations",
                est.count()
            );
            prop_assert_eq!(est.min_seen(), Some(lo));
            prop_assert_eq!(est.max_seen(), Some(hi));
        }
    }

    /// Below five samples the estimator reads the exact nearest-rank
    /// statistic off its sorted warm-up buffer, so for the same stream a
    /// higher target quantile never yields a smaller estimate.
    #[test]
    fn warmup_estimates_are_monotone_in_the_quantile(
        q1 in 0.01f64..0.99,
        q2 in 0.01f64..0.99,
        xs in proptest::collection::vec(-1.0e3f64..1.0e3, 1..=4),
    ) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let mut lo = P2Quantile::new(lo_q);
        let mut hi = P2Quantile::new(hi_q);
        for &x in &xs {
            lo.observe(x);
            hi.observe(x);
        }
        prop_assert!(lo.estimate().unwrap() <= hi.estimate().unwrap());
    }

    /// The estimator is a pure fold: non-finite inputs are ignored without
    /// perturbing the state, so a NaN/∞ latency glitch can never move the
    /// hedge threshold.
    #[test]
    fn non_finite_inputs_never_perturb_the_estimate(
        q in 0.01f64..0.99,
        xs in proptest::collection::vec(-1.0e4f64..1.0e4, 1..100),
    ) {
        let mut clean = P2Quantile::new(q);
        let mut dirty = P2Quantile::new(q);
        for (i, &x) in xs.iter().enumerate() {
            clean.observe(x);
            dirty.observe(x);
            match i % 3 {
                0 => dirty.observe(f64::NAN),
                1 => dirty.observe(f64::INFINITY),
                _ => dirty.observe(f64::NEG_INFINITY),
            }
        }
        prop_assert_eq!(clean.estimate(), dirty.estimate());
        prop_assert_eq!(clean.count(), dirty.count());
    }

    /// On a uniformly shuffled ramp (a random arrival order of a known
    /// value population — the regime P² is designed for) the steady-state
    /// estimate lands near the true quantile: the trigger's threshold
    /// reflects the configured quantile of the actual latency population,
    /// not the arrival schedule.
    #[test]
    fn estimate_tracks_the_true_quantile_on_shuffled_ramps(
        q in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut xs: Vec<f64> = (0..800).map(f64::from).collect();
        // Fisher–Yates driven by splitmix64: a uniform permutation.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in (1..xs.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
        let mut est = P2Quantile::new(q);
        for &x in &xs {
            est.observe(x);
        }
        let e = est.estimate().unwrap();
        let truth = q * 799.0;
        prop_assert!(
            (e - truth).abs() <= 80.0,
            "P² estimate {e} strayed from true quantile {truth}"
        );
    }
}
