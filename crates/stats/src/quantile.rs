//! Streaming quantile estimation via the P² algorithm (Jain & Chlamtac,
//! CACM 1985).
//!
//! The estimator maintains five markers whose heights track the running
//! minimum, the target quantile, the quantile's two neighbours, and the
//! running maximum, adjusting marker positions with a piecewise-parabolic
//! (P²) interpolation on every observation. It uses O(1) memory and no
//! allocation after construction, is fully deterministic (a pure fold over
//! the observation stream), and never leaves the observed value range —
//! the properties the hedging layer's trigger logic and its proptests rely
//! on.

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// Returns the element at rank `⌈p·n⌉` (1-based, clamped to `[1, n]`) —
/// the classic nearest-rank definition, which always returns an actual
/// observation and never interpolates. Returns `0.0` for an empty sample.
/// `p` outside `[0, 1]` clamps to the extremes.
///
/// The caller sorts; benchmarks typically take several percentiles off one
/// sorted latency vector, so sorting inside the helper would waste work.
///
/// # Examples
///
/// ```
/// use smartred_stats::percentile_nearest_rank;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_nearest_rank(&sorted, 0.50), 2.0);
/// assert_eq!(percentile_nearest_rank(&sorted, 0.99), 4.0);
/// ```
///
/// # Panics
///
/// Debug builds panic if `sorted` is not ascending.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_nearest_rank needs an ascending-sorted sample"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A streaming estimator of a single quantile using constant memory.
///
/// # Examples
///
/// ```
/// use smartred_stats::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=100 {
///     q.observe(i as f64);
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 50.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    /// The target quantile, in (0, 1).
    q: f64,
    /// Marker heights (estimates of min, q/2-ish, q, (1+q)/2-ish, max).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator of quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1` and `q` is finite.
    pub fn new(q: f64) -> Self {
        assert!(
            q.is_finite() && 0.0 < q && q < 1.0,
            "quantile must lie strictly inside (0, 1), got {q}"
        );
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation into the estimate. Non-finite values are
    /// ignored (a NaN latency must never poison the marker state).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            // Warm-up: collect the first five observations sorted.
            let n = self.count as usize;
            self.heights[n] = x;
            self.count += 1;
            let filled = self.count as usize;
            self.heights[..filled].sort_by(|a, b| a.total_cmp(b));
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= x < heights[k+1], updating
        // the extreme markers when x falls outside the current range.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            while cell < 3 && x >= self.heights[cell + 1] {
                cell += 1;
            }
            cell
        };
        for marker in (k + 1)..5 {
            self.positions[marker] += 1.0;
        }
        for marker in 0..5 {
            self.desired[marker] += self.increments[marker];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let adjusted = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = adjusted;
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction would break marker
    /// height monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, or `None` before five observations.
    ///
    /// The estimate always lies within the closed range of observed values.
    pub fn estimate(&self) -> Option<f64> {
        if self.count >= 5 {
            return Some(self.heights[2]);
        }
        if self.count == 0 {
            return None;
        }
        // Fewer than five samples: read the target rank off the sorted
        // warm-up buffer (nearest-rank, deterministic).
        let n = self.count as usize;
        let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.heights[rank - 1])
    }

    /// The observed minimum, or `None` before any observation.
    pub fn min_seen(&self) -> Option<f64> {
        (self.count > 0).then(|| self.heights[0])
    }

    /// The observed maximum, or `None` before any observation.
    pub fn max_seen(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => Some(self.heights[n as usize - 1]),
            _ => Some(self.heights[4]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computed_ranks() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_nearest_rank(&sorted, 0.50), 50.0);
        assert_eq!(percentile_nearest_rank(&sorted, 0.99), 99.0);
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), 100.0);
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&sorted, -1.0), 1.0);
        assert_eq!(percentile_nearest_rank(&sorted, 2.0), 100.0);
    }

    #[test]
    fn nearest_rank_of_empty_and_singleton() {
        assert_eq!(percentile_nearest_rank(&[], 0.5), 0.0);
        assert_eq!(percentile_nearest_rank(&[7.5], 0.01), 7.5);
        assert_eq!(percentile_nearest_rank(&[7.5], 0.99), 7.5);
    }

    #[test]
    fn exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.observe(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.observe(1.0);
        q.observe(2.0);
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_ramp_converges() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            q.observe((i % 1000) as f64);
        }
        let m = q.estimate().unwrap();
        assert!((m - 500.0).abs() < 25.0, "median estimate {m} off");
    }

    #[test]
    fn p99_of_heavy_tail_lands_in_the_tail() {
        let mut q = P2Quantile::new(0.99);
        // 99% of mass at 1.0, 1% at 100.0, interleaved deterministically.
        for i in 0..10_000 {
            q.observe(if i % 100 == 7 { 100.0 } else { 1.0 });
        }
        let p99 = q.estimate().unwrap();
        assert!(p99 >= 1.0, "p99 {p99} fell below the body");
    }

    #[test]
    fn estimate_is_bounded_by_observations() {
        let mut q = P2Quantile::new(0.9);
        let xs = [5.0, 1.0, 9.0, 2.0, 7.0, 3.0, 8.0, 0.5, 6.0, 4.0];
        for &x in &xs {
            q.observe(x);
            let e = q.estimate().unwrap();
            assert!((0.5..=9.0).contains(&e), "estimate {e} escaped the data");
        }
    }

    #[test]
    fn constant_stream_estimates_the_constant() {
        let mut q = P2Quantile::new(0.95);
        for _ in 0..100 {
            q.observe(2.5);
        }
        assert_eq!(q.estimate(), Some(2.5));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut q = P2Quantile::new(0.5);
        for _ in 0..10 {
            q.observe(1.0);
        }
        q.observe(f64::NAN);
        q.observe(f64::INFINITY);
        assert_eq!(q.count(), 10);
        assert_eq!(q.estimate(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn rejects_quantile_of_one() {
        let _ = P2Quantile::new(1.0);
    }
}
