//! Fixed-width histograms for job-count and latency distributions.

/// A histogram over `[lo, hi)` with equal-width buckets, plus overflow and
/// underflow counters.
///
/// # Examples
///
/// ```
/// use smartred_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5); // buckets of width 2
/// h.record(1.0);
/// h.record(3.0);
/// h.record(3.5);
/// h.record(42.0);
/// assert_eq!(h.bucket_counts(), &[1, 2, 0, 0, 0]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    lo_bits: u64,
    hi_bits: u64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal cells.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, the bounds are not finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range [{lo}, {hi})"
        );
        Self {
            lo_bits: lo.to_bits(),
            hi_bits: hi.to_bits(),
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    fn lo(&self) -> f64 {
        f64::from_bits(self.lo_bits)
    }

    fn hi(&self) -> f64 {
        f64::from_bits(self.hi_bits)
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let (lo, hi) = (self.lo(), self.hi());
        if value < lo {
            self.underflow += 1;
        } else if value >= hi {
            self.overflow += 1;
        } else {
            let width = (hi - lo) / self.buckets.len() as f64;
            let idx = (((value - lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts (excludes under/overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The `(low, high)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let width = (self.hi() - self.lo()) / self.buckets.len() as f64;
        (
            self.lo() + width * i as f64,
            self.lo() + width * (i + 1) as f64,
        )
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The value below which `quantile` of the in-range mass lies,
    /// interpolated within buckets. Returns `None` if nothing in range was
    /// recorded or the quantile is outside `[0, 1]`.
    pub fn quantile(&self, quantile: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&quantile) {
            return None;
        }
        let in_range: u64 = self.buckets.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = quantile * in_range as f64;
        let mut acc = 0.0;
        for (i, &count) in self.buckets.iter().enumerate() {
            let next = acc + count as f64;
            if next >= target && count > 0 {
                let (b_lo, b_hi) = self.bucket_bounds(i);
                let frac = ((target - acc) / count as f64).clamp(0.0, 1.0);
                return Some(b_lo + frac * (b_hi - b_lo));
            }
            acc = next;
        }
        Some(self.hi())
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for v in [0.0, 0.5, 1.0, 2.9, 3.999] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(1.0, 2.0, 2);
        h.record(0.5);
        h.record(2.0); // upper bound is exclusive
        h.record(1.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_counts(), &[0, 1]);
    }

    #[test]
    fn bucket_bounds_partition_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        let mut edge = 0.0;
        for i in 0..5 {
            let (lo, hi) = h.bucket_bounds(i);
            assert!((lo - edge).abs() < 1e-12);
            edge = hi;
        }
        assert!((edge - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_bounds_checks_index() {
        Histogram::new(0.0, 1.0, 2).bucket_bounds(2);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_panics() {
        Histogram::new(2.0, 1.0, 3);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        h.extend((0..100).map(|i| i as f64 + 0.5));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 1.5, "median {median}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() < 1.5, "p95 {p95}");
        assert_eq!(h.quantile(1.5), None);
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.quantile(0.5), None);
    }
}
