//! # smartred-stats — descriptive statistics for experiments
//!
//! Streaming summary statistics, binomial confidence intervals, and plain
//! text table rendering used by the experiment harness. Kept dependency-free
//! so every crate in the workspace can use it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod quantile;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use quantile::{percentile_nearest_rank, P2Quantile};
pub use summary::{binomial_ci, two_proportion_z, Summary};
pub use table::Table;
