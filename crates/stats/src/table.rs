//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table, used by the `experiments` binary to print
/// the rows behind each figure of the paper.
///
/// # Examples
///
/// ```
/// use smartred_stats::Table;
///
/// let mut t = Table::new(vec!["k".into(), "cost".into()]);
/// t.push_row(vec!["19".into(), "14.2".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("k"));
/// assert!(rendered.contains("14.2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first).
    ///
    /// Cells containing a comma, a double quote, or a newline are wrapped
    /// in double quotes with internal quotes doubled (RFC 4180), so cells
    /// like `[0.9, 1.0]` round-trip through CSV tooling. The output is a
    /// pure function of the cell strings — the CI determinism job diffs two
    /// of these byte-for-byte.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            let cells: Vec<String> = line.iter().map(|c| escape(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimal places — a convenience
/// for building table cells.
pub fn cell(value: f64, places: usize) -> String {
    format!("{value:.places$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-longer-name".into(), "2.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
                                    // All lines align to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn cell_formats_places() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell(2.0, 0), "2");
    }

    #[test]
    fn csv_quotes_commas_and_doubles_quotes() {
        let mut t = Table::new(vec!["technique".into(), "95% CI".into()]);
        t.push_row(vec!["TR".into(), "[0.9123, 0.9456]".into()]);
        t.push_row(vec!["say \"hi\"".into(), "plain".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "technique,95% CI");
        assert_eq!(lines[1], "TR,\"[0.9123, 0.9456]\"");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",plain");
    }

    #[test]
    fn empty_table_still_renders_headers() {
        let t = Table::new(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.contains("only"));
    }
}
