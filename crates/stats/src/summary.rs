//! Streaming summary statistics and confidence intervals.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use smartred_stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.sample_variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    total: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0.0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.total += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (0 when empty).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the normal-approximation confidence interval at
    /// `z` standard errors (e.g. `z = 1.96` for 95%).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// Decomposes the accumulator into its raw parts
    /// `(count, mean, m2, min, max, total)` for bit-exact persistence.
    /// Round-tripping through [`Summary::from_parts`] reproduces the
    /// accumulator exactly, including the `±∞` sentinels of an empty
    /// summary — callers serializing to text should store the floats via
    /// `f64::to_bits`.
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (
            self.count, self.mean, self.m2, self.min, self.max, self.total,
        )
    }

    /// Reassembles an accumulator from [`Summary::to_parts`] output.
    /// Feeding back the exact parts yields a summary whose future
    /// `record` calls continue the original Welford sequence bit-for-bit.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, total: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
            total,
        }
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.mean += delta * n2 / n;
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Normal-approximation (Wald) confidence interval for a binomial
/// proportion: returns `(low, high)` clipped to `[0, 1]`.
///
/// Suitable for the large samples the experiments use (10⁵–10⁶ tasks);
/// callers with tiny samples should prefer an exact interval.
///
/// # Panics
///
/// Panics if `successes > trials`.
pub fn binomial_ci(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(successes <= trials, "successes exceed trials");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let p = successes as f64 / trials as f64;
    let half = z * (p * (1.0 - p) / trials as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

/// Two-proportion pooled z-statistic for comparing binomial rates (e.g.
/// the reliabilities of two techniques over many simulated tasks).
///
/// Positive values mean sample A's rate is higher. |z| > 1.96 rejects
/// equality at the 5% level under the normal approximation. Returns 0 when
/// either sample is empty or the pooled rate is degenerate (both all-
/// success or all-failure).
///
/// # Panics
///
/// Panics if successes exceed trials in either sample.
pub fn two_proportion_z(successes_a: u64, trials_a: u64, successes_b: u64, trials_b: u64) -> f64 {
    assert!(successes_a <= trials_a, "sample A successes exceed trials");
    assert!(successes_b <= trials_b, "sample B successes exceed trials");
    if trials_a == 0 || trials_b == 0 {
        return 0.0;
    }
    let pa = successes_a as f64 / trials_a as f64;
    let pb = successes_b as f64 / trials_b as f64;
    let pooled = (successes_a + successes_b) as f64 / (trials_a + trials_b) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / trials_a as f64 + 1.0 / trials_b as f64)).sqrt();
    if se == 0.0 {
        return 0.0;
    }
    (pa - pb) / se
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn known_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.total(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Summary = (0..100).map(|i| (i as f64).sin()).collect();
        let mut a: Summary = (0..37).map(|i| (i as f64).sin()).collect();
        let b: Summary = (37..100).map(|i| (i as f64).sin()).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extend_records_all() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [4.2].into_iter().collect();
        assert_eq!(s.mean(), 4.2);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 4.2);
        assert_eq!(s.max(), 4.2);
    }

    #[test]
    fn parts_round_trip_is_bit_exact() {
        let s: Summary = (0..9).map(|i| (i as f64).cos() * 3.7).collect();
        let (count, mean, m2, min, max, total) = s.to_parts();
        let r = Summary::from_parts(count, mean, m2, min, max, total);
        assert_eq!(r.count(), s.count());
        assert_eq!(r.mean().to_bits(), s.mean().to_bits());
        assert_eq!(r.min().to_bits(), s.min().to_bits());
        assert_eq!(r.max().to_bits(), s.max().to_bits());
        assert_eq!(r.total().to_bits(), s.total().to_bits());
        // Continuing the stream from restored parts matches continuing the
        // original bit-for-bit (same Welford op sequence).
        let mut a = s;
        let mut b = r;
        for v in [0.25, -7.5, 1e9] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.sample_variance().to_bits(), b.sample_variance().to_bits());

        // The empty summary's ±∞ sentinels survive the round trip.
        let (count, mean, m2, min, max, total) = Summary::new().to_parts();
        let empty = Summary::from_parts(count, mean, m2, min, max, total);
        assert_eq!(empty.min(), f64::INFINITY);
        assert_eq!(empty.max(), f64::NEG_INFINITY);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn ci_half_width_shrinks_with_samples() {
        let small: Summary = (0..10).map(|i| i as f64).collect();
        let large: Summary = (0..10).cycle().take(1000).map(|i| i as f64).collect();
        assert!(large.ci_half_width(1.96) < small.ci_half_width(1.96));
    }

    #[test]
    fn binomial_ci_brackets_p() {
        let (lo, hi) = binomial_ci(700, 1000, 1.96);
        assert!(lo < 0.7 && 0.7 < hi);
        assert!(hi - lo < 0.06);
    }

    #[test]
    fn binomial_ci_clips_to_unit_interval() {
        let (lo, _) = binomial_ci(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        let (_, hi) = binomial_ci(50, 50, 1.96);
        assert_eq!(hi, 1.0);
        assert_eq!(binomial_ci(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "successes exceed trials")]
    fn binomial_ci_rejects_impossible_counts() {
        binomial_ci(5, 3, 1.96);
    }

    #[test]
    fn z_test_detects_different_rates() {
        let z = two_proportion_z(900, 1000, 800, 1000);
        assert!(z > 1.96, "z = {z}");
        let z_rev = two_proportion_z(800, 1000, 900, 1000);
        assert!((z + z_rev).abs() < 1e-12, "antisymmetric");
    }

    #[test]
    fn z_test_accepts_equal_rates() {
        let z = two_proportion_z(700, 1000, 700, 1000);
        assert_eq!(z, 0.0);
        let z_close = two_proportion_z(700, 1000, 705, 1000);
        assert!(z_close.abs() < 1.0);
    }

    #[test]
    fn z_test_degenerate_cases() {
        assert_eq!(two_proportion_z(0, 0, 5, 10), 0.0);
        assert_eq!(two_proportion_z(10, 10, 10, 10), 0.0); // pooled rate 1
        assert_eq!(two_proportion_z(0, 10, 0, 10), 0.0); // pooled rate 0
    }

    #[test]
    #[should_panic(expected = "exceed trials")]
    fn z_test_rejects_impossible_sample() {
        two_proportion_z(11, 10, 5, 10);
    }
}
