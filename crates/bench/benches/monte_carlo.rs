//! Criterion benchmark of the Monte-Carlo engine: tasks-per-second
//! throughput of each strategy under the binary Byzantine model, plus the
//! n-ary variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::SeedableRng;
use smartred_core::monte_carlo::{estimate, estimate_nary, MonteCarloConfig, NaryConfig};
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, Traditional};

const TASKS: usize = 10_000;

fn r07() -> Reliability {
    Reliability::new(0.7).unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.throughput(Throughput::Elements(TASKS as u64));

    group.bench_function("traditional k=19", |b| {
        b.iter_batched(
            || rand_chacha::ChaCha8Rng::seed_from_u64(1),
            |mut rng| {
                estimate(
                    &Traditional::new(KVotes::new(19).unwrap()),
                    MonteCarloConfig::new(TASKS, r07()),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("progressive k=19", |b| {
        b.iter_batched(
            || rand_chacha::ChaCha8Rng::seed_from_u64(2),
            |mut rng| {
                estimate(
                    &Progressive::new(KVotes::new(19).unwrap()),
                    MonteCarloConfig::new(TASKS, r07()),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("iterative d=4", |b| {
        b.iter_batched(
            || rand_chacha::ChaCha8Rng::seed_from_u64(3),
            |mut rng| {
                estimate(
                    &Iterative::new(VoteMargin::new(4).unwrap()),
                    MonteCarloConfig::new(TASKS, r07()),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("iterative d=4 (n-ary, 8 wrong values)", |b| {
        b.iter_batched(
            || rand_chacha::ChaCha8Rng::seed_from_u64(4),
            |mut rng| {
                estimate_nary(
                    &Iterative::new(VoteMargin::new(4).unwrap()),
                    NaryConfig::new(TASKS, r07(), 8, 0.5),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(monte_carlo, bench_strategies);
criterion_main!(monte_carlo);
