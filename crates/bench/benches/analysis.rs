//! Criterion benchmarks of the analytic kernels behind Figure 3 and the
//! worked examples: confidence, closed forms, literal series, and wave DPs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smartred_core::analysis::{confidence, iterative, progressive, traditional, walk};
use smartred_core::params::{Confidence, KVotes, Reliability, VoteMargin};

fn r07() -> Reliability {
    Reliability::new(0.7).unwrap()
}

fn bench_confidence(c: &mut Criterion) {
    let r = r07();
    c.bench_function("q(r, a, b) confidence", |b| {
        b.iter(|| confidence::confidence(black_box(r), black_box(106), black_box(100)))
    });
    let target = Confidence::new(0.97).unwrap();
    c.bench_function("minimum margin d(r, R, 0)", |b| {
        b.iter(|| confidence::minimum_margin(black_box(r), black_box(target)).unwrap())
    });
}

fn bench_traditional(c: &mut Criterion) {
    let r = r07();
    let k = KVotes::new(19).unwrap();
    c.bench_function("traditional reliability Eq.2 (k=19)", |b| {
        b.iter(|| traditional::reliability(black_box(k), black_box(r)))
    });
    let k_large = KVotes::new(199).unwrap();
    c.bench_function("traditional reliability Eq.2 (k=199)", |b| {
        b.iter(|| traditional::reliability(black_box(k_large), black_box(r)))
    });
}

fn bench_progressive(c: &mut Criterion) {
    let r = r07();
    let k = KVotes::new(19).unwrap();
    c.bench_function("progressive cost series Eq.3 (k=19)", |b| {
        b.iter(|| progressive::cost_series(black_box(k), black_box(r)))
    });
    c.bench_function("progressive wave DP (k=19)", |b| {
        b.iter(|| progressive::profile(black_box(k), black_box(r), (0.5, 1.5)))
    });
}

fn bench_iterative(c: &mut Criterion) {
    let r = r07();
    let d = VoteMargin::new(4).unwrap();
    c.bench_function("iterative cost closed form Eq.5 (d=4)", |b| {
        b.iter(|| iterative::cost(black_box(d), black_box(r)))
    });
    c.bench_function("iterative cost series Eq.5 (d=4)", |b| {
        b.iter(|| iterative::cost_series(black_box(d), black_box(r), 1e-12))
    });
    c.bench_function("iterative wave DP (d=4)", |b| {
        b.iter(|| iterative::profile(black_box(d), black_box(r), (0.5, 1.5), 1e-12))
    });
    c.bench_function("first passage distribution (d=4)", |b| {
        b.iter(|| walk::first_passage(black_box(4), black_box(0.7), 1e-12, 1_000_000))
    });
}

criterion_group!(
    benches,
    bench_confidence,
    bench_traditional,
    bench_progressive,
    bench_iterative
);
criterion_main!(benches);
