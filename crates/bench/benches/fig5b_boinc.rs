//! Criterion benchmark of the Figure 5(b) volunteer deployment: one full
//! deployment (140 workunits, 200 hosts, PlanetLab profile) per technique
//! on a reduced 14-variable instance.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_volunteer::server::{run, SharedStrategy, VolunteerConfig};

fn bench_run(c: &mut Criterion, name: &str, strategy: fn() -> SharedStrategy) {
    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || VolunteerConfig::paper_deployment(14, 9),
            |cfg| run(strategy(), &cfg).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_run(c, "traditional k=19 deployment", || {
        Rc::new(Traditional::new(KVotes::new(19).unwrap()))
    });
    bench_run(c, "progressive k=19 deployment", || {
        Rc::new(Progressive::new(KVotes::new(19).unwrap()))
    });
    bench_run(c, "iterative d=4 deployment", || {
        Rc::new(Iterative::new(VoteMargin::new(4).unwrap()))
    });
}

criterion_group!(fig5b, benches);
criterion_main!(fig5b);
