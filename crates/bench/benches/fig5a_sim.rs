//! Criterion benchmark of the Figure 5(a) discrete-event simulations:
//! times one scaled-down run per technique (TR k=19, PR k=19, IR d=4) at
//! `r = 0.7`.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::{run, SharedStrategy};

const TASKS: usize = 4_000;
const NODES: usize = 400;

fn bench_run(c: &mut Criterion, name: &str, strategy: fn() -> SharedStrategy) {
    let mut group = c.benchmark_group("fig5a");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || DcaConfig::paper_baseline(TASKS, NODES, 0.3, 7),
            |cfg| run(strategy(), &cfg).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_run(c, "traditional k=19 (4k tasks)", || {
        Rc::new(Traditional::new(KVotes::new(19).unwrap()))
    });
    bench_run(c, "progressive k=19 (4k tasks)", || {
        Rc::new(Progressive::new(KVotes::new(19).unwrap()))
    });
    bench_run(c, "iterative d=4 (4k tasks)", || {
        Rc::new(Iterative::new(VoteMargin::new(4).unwrap()))
    });
}

criterion_group!(fig5a, benches);
criterion_main!(fig5a);
