//! Criterion benchmark of the Figure 6 response-time machinery: the
//! analytic wave DPs and a response-focused simulation run.

use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use smartred_core::analysis::{iterative, progressive};
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_core::strategy::Iterative;
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::run;

fn bench_analytic(c: &mut Criterion) {
    let r = Reliability::new(0.7).unwrap();
    let k = KVotes::new(19).unwrap();
    let d = VoteMargin::new(6).unwrap();
    c.bench_function("fig6 analytic PR response (k=19)", |b| {
        b.iter(|| progressive::profile(black_box(k), black_box(r), (0.5, 1.5)).expected_response)
    });
    c.bench_function("fig6 analytic IR response (d=6)", |b| {
        b.iter(|| {
            iterative::profile(black_box(d), black_box(r), (0.5, 1.5), 1e-12).expected_response
        })
    });
}

fn bench_simulated(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("simulated IR d=6 response (2k tasks)", |b| {
        b.iter_batched(
            || DcaConfig::paper_baseline(2_000, 1_000, 0.3, 13),
            |cfg| run(Rc::new(Iterative::new(VoteMargin::new(6).unwrap())), &cfg).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(fig6, bench_analytic, bench_simulated);
criterion_main!(fig6);
