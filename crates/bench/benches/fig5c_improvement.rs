//! Criterion benchmark of the Figure 5(c) improvement sweep (pure
//! analysis; also regenerates the figure's data as a side effect of the
//! computation it times).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smartred_core::analysis::improvement::{improvement, improvement_sweep, MarginMatch};
use smartred_core::params::{KVotes, Reliability};

fn bench_single_point(c: &mut Criterion) {
    let k = KVotes::new(19).unwrap();
    let r = Reliability::new(0.86).unwrap();
    c.bench_function("fig5c improvement point (k=19, r=0.86)", |b| {
        b.iter(|| improvement(black_box(k), black_box(r), MarginMatch::Nearest).unwrap())
    });
}

fn bench_sweep(c: &mut Criterion) {
    let k = KVotes::new(19).unwrap();
    c.bench_function("fig5c full sweep (95 points)", |b| {
        b.iter(|| improvement_sweep(black_box(k), 0.525, 0.995, 95, MarginMatch::Nearest).unwrap())
    });
}

criterion_group!(benches, bench_single_point, bench_sweep);
criterion_main!(benches);
