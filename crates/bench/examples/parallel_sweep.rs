//! Timed demonstration of the parallel sweep engine's two promises:
//!
//! 1. **Determinism** — the Figure 5(a)-sized Monte-Carlo sweep renders to
//!    a byte-identical CSV at every thread count (asserted below).
//! 2. **Speedup** — on a multi-core machine the 8-thread run finishes
//!    several times faster than the 1-thread run (≥3× on 8 physical
//!    cores; on fewer cores the measured ratio degrades gracefully).
//!
//! ```text
//! cargo run --release -p smartred-bench --example parallel_sweep
//! ```

use std::time::Instant;

use smartred_bench::sweep;
use smartred_core::parallel::Threads;

fn main() {
    const TASKS: usize = 40_000; // Scale::Quick::sim_tasks() — fig5a-sized
    const R: f64 = 0.7;
    const SEED: u64 = 20110620;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel sweep: {} configs x {TASKS} tasks, r = {R} ({cores} cores available)",
        sweep::grid().len()
    );

    let mut baseline = (String::new(), 0.0f64);
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let csv = sweep::table(TASKS, R, SEED, Threads::fixed(workers)).to_csv();
        let secs = start.elapsed().as_secs_f64();
        if workers == 1 {
            baseline = (csv.clone(), secs);
            println!("  {workers} thread : {secs:7.3}s  (baseline)");
        } else {
            assert_eq!(
                baseline.0, csv,
                "CSV at {workers} threads differs from the 1-thread run"
            );
            println!(
                "  {workers} threads: {secs:7.3}s  ({:.2}x, byte-identical)",
                baseline.1 / secs
            );
        }
    }
    println!("all thread counts produced byte-identical CSVs");
}
