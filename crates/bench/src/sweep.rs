//! The parallel Monte-Carlo sweep behind the determinism CI job and the
//! `parallel_sweep` timed example.
//!
//! One call fans the full Figure 5(a)-sized technique grid (TR/PR at
//! `k ∈ {3, 5, 9, 13, 19}`, IR at `d ∈ 1..=6`) through
//! `smartred_core::monte_carlo::sweep`. The engine's determinism contract
//! — per-task counter-based RNG streams plus exact integer merges — makes
//! the output (and therefore [`table`]'s CSV rendering) **byte-identical
//! for every thread count**, which CI checks by diffing the CSV generated
//! at `SMARTRED_THREADS=1` against `SMARTRED_THREADS=8`.

use smartred_core::monte_carlo::{sweep, MonteCarloConfig, MonteCarloReport, SweepSpec};
use smartred_core::parallel::Threads;
use smartred_core::params::Reliability;
use smartred_stats::{binomial_ci, Table};

use crate::StrategySpec;

/// The technique grid of the sweep — the Figure 5(a) configurations.
pub fn grid() -> Vec<StrategySpec> {
    crate::fig5a::configurations()
}

/// Runs every grid configuration for `tasks` Monte-Carlo tasks at node
/// reliability `r`, fanned across `threads` workers.
///
/// # Panics
///
/// Panics if `r` is not a valid probability (callers pass constants).
pub fn monte_carlo(
    tasks: usize,
    r: f64,
    master_seed: u64,
    threads: Threads,
) -> Vec<(StrategySpec, MonteCarloReport)> {
    let r = Reliability::new(r).expect("valid reliability");
    let specs: Vec<SweepSpec<StrategySpec>> = grid()
        .into_iter()
        .map(|strategy| SweepSpec {
            strategy,
            config: MonteCarloConfig::new(tasks, r),
        })
        .collect();
    let reports = sweep(&specs, master_seed, threads);
    specs
        .into_iter()
        .map(|spec| spec.strategy)
        .zip(reports)
        .collect()
}

/// Renders the sweep as a table; `to_csv` on the result is the artifact
/// the CI determinism job diffs across thread counts.
pub fn table(tasks: usize, r: f64, master_seed: u64, threads: Threads) -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "tasks".into(),
        "cost factor".into(),
        "reliability".into(),
        "95% CI".into(),
        "mean waves".into(),
        "max jobs/task".into(),
    ]);
    for (spec, report) in monte_carlo(tasks, r, master_seed, threads) {
        let (lo, hi) = binomial_ci(
            report.correct_tasks as u64,
            (report.tasks - report.capped_tasks) as u64,
            1.96,
        );
        table.push_row(vec![
            spec.label().into(),
            spec.param().to_string(),
            report.tasks.to_string(),
            format!("{:.6}", report.cost_factor()),
            format!("{:.6}", report.reliability()),
            format!("[{lo:.6}, {hi:.6}]"),
            format!("{:.4}", report.mean_waves()),
            report.max_jobs_single_task.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_is_identical_across_thread_counts() {
        let one = table(2_000, 0.7, 7, Threads::fixed(1)).to_csv();
        for workers in [2usize, 8] {
            let many = table(2_000, 0.7, 7, Threads::fixed(workers)).to_csv();
            assert_eq!(one, many, "CSV differs at {workers} workers");
        }
    }

    #[test]
    fn sweep_tracks_analysis() {
        use smartred_core::analysis::{iterative, traditional};
        let r = Reliability::new(0.7).unwrap();
        for (spec, report) in monte_carlo(20_000, 0.7, 11, Threads::Auto) {
            let (cost, rel) = match spec {
                StrategySpec::Traditional(k) => {
                    (traditional::cost(k), traditional::reliability(k, r))
                }
                // PR cost depends on the vote schedule; reliability matches
                // TR's by Eq. (4), but skip to keep the test focused.
                StrategySpec::Progressive(_) => continue,
                StrategySpec::Iterative(d) => (iterative::cost(d, r), iterative::reliability(d, r)),
            };
            assert!(
                (report.cost_factor() - cost).abs() < 0.25,
                "{} {}: cost {} vs analytic {}",
                spec.label(),
                spec.param(),
                report.cost_factor(),
                cost
            );
            assert!(
                (report.reliability() - rel).abs() < 0.02,
                "{} {}: reliability {} vs analytic {}",
                spec.label(),
                spec.param(),
                report.reliability(),
                rel
            );
        }
    }
}
