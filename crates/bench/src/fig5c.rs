//! Figure 5(c): cost-factor improvement of PR and IR over TR as a function
//! of node reliability.
//!
//! Matching protocol (see DESIGN.md): the reference is `k = 19` (the
//! paper's running example); PR is compared at the same `k` (identical
//! reliability by Eq. 4); IR at the margin whose Eq. (6) failure
//! probability is nearest TR's in log space. The paper reports PR → 2.0×
//! as `r → 1`, IR ≥ 1.6× near `r = 0.6`, an interior IR peak ≈ 2.8×
//! around `r ≈ 0.86`, and ≈ 2.4× as `r → 1`.

use smartred_core::analysis::improvement::{
    improvement, improvement_sweep, Improvement, MarginMatch,
};
use smartred_core::parallel::{self, Threads};
use smartred_core::params::{KVotes, Reliability};
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::run as run_dca;
use smartred_stats::Table;

use crate::StrategySpec;

/// The sweep behind the figure: `r ∈ [0.525, 0.995]`.
pub fn sweep(points: usize) -> Vec<Improvement> {
    improvement_sweep(
        KVotes::new(19).expect("odd"),
        0.525,
        0.995,
        points,
        MarginMatch::Nearest,
    )
    .expect("range inside (0.5, 1)")
}

/// Renders the Figure 5(c) table.
pub fn table(points: usize) -> Table {
    let mut table = Table::new(vec![
        "r".into(),
        "d*".into(),
        "C_TR".into(),
        "C_PR".into(),
        "C_IR".into(),
        "PR improvement".into(),
        "IR improvement".into(),
    ]);
    for imp in sweep(points) {
        table.push_row(vec![
            format!("{:.3}", imp.r.get()),
            imp.d.get().to_string(),
            format!("{:.2}", imp.tr_cost),
            format!("{:.2}", imp.pr_cost),
            format!("{:.2}", imp.ir_cost),
            format!("{:.2}", imp.pr_ratio()),
            format!("{:.2}", imp.ir_ratio()),
        ]);
    }
    table
}

/// Cross-checks the analytic Figure 5(c) ratios against full
/// discrete-event simulations at selected reliabilities: for each `r`,
/// simulate TR at `k = 19` and IR at the matched margin, and compare the
/// measured cost ratio with the analytic one.
pub fn simulated_check(tasks: usize, nodes: usize, seed: u64) -> Table {
    let k = KVotes::new(19).expect("odd");
    let mut table = Table::new(vec![
        "r".into(),
        "d*".into(),
        "IR gain (analytic)".into(),
        "IR gain (simulated)".into(),
    ]);
    // Each probed reliability is an independent pair of simulations with a
    // seed that does not depend on the worker, so the fan-out is
    // deterministic for any thread count.
    let probes = [0.65, 0.75, 0.86, 0.95];
    let rows = parallel::map_slice(&probes, Threads::Auto, |_, &r| {
        let rel = Reliability::new(r).expect("valid");
        let imp = improvement(k, rel, MarginMatch::Nearest).expect("r in range");
        let cfg = DcaConfig::paper_baseline(tasks, nodes, 1.0 - r, seed);
        let tr = run_dca(StrategySpec::Traditional(k).build(), &cfg).expect("valid");
        let ir = run_dca(StrategySpec::Iterative(imp.d).build(), &cfg).expect("valid");
        let simulated = tr.cost_factor() / ir.cost_factor();
        vec![
            format!("{r:.2}"),
            imp.d.get().to_string(),
            format!("{:.2}", imp.ir_ratio()),
            format!("{simulated:.2}"),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_shape_claims() {
        let sweep = sweep(95);
        let pr: Vec<f64> = sweep.iter().map(|i| i.pr_ratio()).collect();
        let ir: Vec<f64> = sweep.iter().map(|i| i.ir_ratio()).collect();

        // PR approaches 2.0 from below as r → 1 (§4.2).
        let pr_end = *pr.last().unwrap();
        assert!((1.75..=2.05).contains(&pr_end), "PR end {pr_end}");
        assert!(pr.first().unwrap() < pr.last().unwrap());

        // IR peaks in the paper's band and the peak is interior.
        let peak = ir.iter().cloned().fold(f64::MIN, f64::max);
        let peak_idx = ir.iter().position(|&v| v == peak).unwrap();
        let peak_r = sweep[peak_idx].r.get();
        assert!((2.3..=3.2).contains(&peak), "IR peak {peak}");
        assert!(
            (0.78..=0.97).contains(&peak_r),
            "IR peak at r = {peak_r}, paper says ≈ 0.86"
        );
        // Ends lower than the peak (the paper's "decreases slightly" tail).
        assert!(*ir.last().unwrap() < peak);
        // IR beats PR throughout the sweep.
        for (i, imp) in sweep.iter().enumerate() {
            assert!(
                ir[i] >= pr[i] - 0.05,
                "IR {} < PR {} at r = {}",
                ir[i],
                pr[i],
                imp.r.get()
            );
        }
    }

    #[test]
    fn table_renders_every_point() {
        assert_eq!(table(20).len(), 20);
    }

    #[test]
    fn simulation_confirms_analytic_ratios() {
        let t = simulated_check(8_000, 300, 5);
        // Parse the last two columns of each row and require agreement
        // within simulation noise.
        for line in t.to_string().lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let analytic: f64 = cols[cols.len() - 2].parse().unwrap();
            let simulated: f64 = cols[cols.len() - 1].parse().unwrap();
            assert!(
                (analytic - simulated).abs() < 0.12,
                "analytic {analytic} vs simulated {simulated}"
            );
        }
    }
}
