//! Figure 3: analytic system reliability vs. cost factor at `r = 0.7`.
//!
//! Three series — traditional redundancy at `k ∈ {1, 3, …}`, progressive at
//! the same `k`, and iterative at `d ∈ {1, 2, …}` — each a (cost,
//! reliability) point. The paper's claim: for any cost, IR ≥ PR ≥ TR in
//! reliability.

use smartred_core::analysis::{iterative, progressive, traditional};
use smartred_core::parallel::{self, Threads};
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_stats::Table;

use crate::StrategySpec;

/// One point of a Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Technique label ("TR", "PR", "IR").
    pub technique: &'static str,
    /// The technique's parameter (`k` or `d`).
    pub param: usize,
    /// Expected cost factor.
    pub cost: f64,
    /// System reliability.
    pub reliability: f64,
}

/// Computes the three Figure 3 series at reliability `r`.
///
/// # Panics
///
/// Panics if `r` is not a valid probability (callers pass constants).
pub fn series(r: f64, max_k: usize, max_d: usize) -> Vec<Point> {
    let r = Reliability::new(r).expect("valid reliability");
    let mut specs = Vec::new();
    for k in (1..=max_k).step_by(2) {
        let k_votes = KVotes::new(k).expect("odd k");
        specs.push(StrategySpec::Traditional(k_votes));
        specs.push(StrategySpec::Progressive(k_votes));
    }
    for d in 1..=max_d {
        specs.push(StrategySpec::Iterative(VoteMargin::new(d).expect("d >= 1")));
    }
    // Each point is a pure function of its spec, so the analytic series
    // fans out across workers and reassembles in the original order.
    parallel::map_slice(&specs, Threads::Auto, |_, spec| {
        let (cost, reliability) = match *spec {
            StrategySpec::Traditional(k) => (traditional::cost(k), traditional::reliability(k, r)),
            StrategySpec::Progressive(k) => (
                progressive::cost_series(k, r),
                progressive::reliability(k, r),
            ),
            StrategySpec::Iterative(d) => (iterative::cost(d, r), iterative::reliability(d, r)),
        };
        Point {
            technique: spec.label(),
            param: spec.param(),
            cost,
            reliability,
        }
    })
}

/// Renders the Figure 3 table (the paper plots these points for
/// `r = 0.7`).
pub fn table() -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "cost factor".into(),
        "reliability".into(),
    ]);
    for p in series(0.7, 29, 15) {
        table.push_row(vec![
            p.technique.into(),
            p.param.to_string(),
            format!("{:.3}", p.cost),
            format!("{:.5}", p.reliability),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dominance the figure displays: at (approximately) any cost, the
    /// IR series sits above PR which sits above TR.
    #[test]
    fn series_are_ordered_at_common_costs() {
        let points = series(0.7, 29, 15);
        let at = |tech: &str| -> Vec<(f64, f64)> {
            let mut v: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.technique == tech)
                .map(|p| (p.cost, p.reliability))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            v
        };
        let interp = |series: &[(f64, f64)], cost: f64| -> Option<f64> {
            if cost < series[0].0 || cost > series.last().unwrap().0 {
                return None;
            }
            let i = series.iter().position(|&(c, _)| c >= cost).unwrap();
            if i == 0 {
                return Some(series[0].1);
            }
            let (c0, r0) = series[i - 1];
            let (c1, r1) = series[i];
            Some(r0 + (r1 - r0) * (cost - c0) / (c1 - c0))
        };
        let (tr, pr, ir) = (at("TR"), at("PR"), at("IR"));
        for probe in [5.0, 7.0, 9.0, 11.0, 13.0] {
            let r_tr = interp(&tr, probe).unwrap();
            let r_pr = interp(&pr, probe).unwrap();
            let r_ir = interp(&ir, probe).unwrap();
            assert!(r_ir >= r_pr - 1e-9, "cost {probe}: IR {r_ir} < PR {r_pr}");
            assert!(r_pr >= r_tr - 1e-9, "cost {probe}: PR {r_pr} < TR {r_tr}");
        }
    }

    #[test]
    fn table_has_all_rows() {
        let t = table();
        assert_eq!(t.len(), 15 + 15 + 15); // 15 TR + 15 PR + 15 IR points
    }
}
