//! Figure 5(b): BOINC-style deployment, reliability vs. cost factor.
//!
//! The paper averaged multiple PlanetLab executions per configuration with
//! 200 hosts, 140 tasks per 22-variable 3-SAT instance, seeded 30% faults
//! plus natural platform faults, and validated the runs by backing out an
//! effective node reliability of 0.64 < r < 0.67 (§4.2). This module does
//! the same, including the inference step.

use std::rc::Rc;

use smartred_core::analysis::inference;
use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Iterative, Progressive, Traditional};
use smartred_stats::{Summary, Table};
use smartred_volunteer::server::{run, SharedStrategy, VolunteerConfig};

use crate::Scale;

/// Averaged deployment results for one configuration.
#[derive(Debug, Clone)]
pub struct DeployPoint {
    /// Technique label.
    pub technique: &'static str,
    /// `k` or `d`.
    pub param: usize,
    /// Cost factors across executions.
    pub cost: Summary,
    /// Reliabilities across executions.
    pub reliability: Summary,
    /// Node reliability inferred from the mean cost (where the inversion
    /// applies).
    pub inferred_r: Option<f64>,
}

/// The deployed configurations.
pub fn configurations() -> Vec<(&'static str, usize, SharedStrategy)> {
    let mut configs: Vec<(&'static str, usize, SharedStrategy)> = Vec::new();
    for k in [3usize, 9, 19] {
        let kv = KVotes::new(k).expect("odd");
        configs.push(("TR", k, Rc::new(Traditional::new(kv))));
        configs.push(("PR", k, Rc::new(Progressive::new(kv))));
    }
    for d in [2usize, 4, 6] {
        let margin = VoteMargin::new(d).expect("d >= 1");
        configs.push(("IR", d, Rc::new(Iterative::new(margin))));
    }
    configs
}

/// Runs every configuration `scale.deployment_runs()` times with distinct
/// seeds and aggregates.
pub fn deploy(scale: Scale, seed: u64) -> Vec<DeployPoint> {
    configurations()
        .into_iter()
        .map(|(technique, param, strategy)| {
            let mut cost = Summary::new();
            let mut reliability = Summary::new();
            for run_idx in 0..scale.deployment_runs() {
                let cfg = VolunteerConfig::paper_deployment(
                    scale.sat_vars(),
                    seed.wrapping_mul(1000) + run_idx as u64 * 31 + param as u64,
                );
                let report = run(strategy.clone(), &cfg).expect("valid config");
                cost.record(report.cost_factor());
                reliability.record(report.reliability());
            }
            let inferred_r = match (technique, param) {
                ("IR", d) => inference::reliability_from_iterative_cost(
                    VoteMargin::new(d).expect("d"),
                    cost.mean(),
                )
                .ok()
                .map(|r| r.get()),
                ("PR", k) => inference::reliability_from_progressive_cost(
                    KVotes::new(k).expect("odd"),
                    cost.mean(),
                )
                .ok()
                .map(|r| r.get()),
                _ => None,
            };
            DeployPoint {
                technique,
                param,
                cost,
                reliability,
                inferred_r,
            }
        })
        .collect()
}

/// Renders the Figure 5(b) table.
pub fn table(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "cost factor".into(),
        "reliability".into(),
        "inferred r".into(),
    ]);
    for p in deploy(scale, seed) {
        table.push_row(vec![
            p.technique.into(),
            p.param.to_string(),
            format!("{:.3} ± {:.3}", p.cost.mean(), p.cost.ci_half_width(1.96)),
            format!(
                "{:.4} ± {:.4}",
                p.reliability.mean(),
                p.reliability.ci_half_width(1.96)
            ),
            p.inferred_r
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced Figure 5(b): IR cheaper than PR cheaper than TR at k = 19 /
    /// d = 4, and the inferred reliability lands in the paper's band.
    #[test]
    fn deployment_reproduces_ordering_and_inferred_r() {
        let scale = Scale::Quick;
        let points = deploy(scale, 5);
        let find = |tech: &str, param: usize| {
            points
                .iter()
                .find(|p| p.technique == tech && p.param == param)
                .expect("configuration present")
        };
        let tr = find("TR", 19);
        let pr = find("PR", 19);
        let ir = find("IR", 4);
        assert!(pr.cost.mean() < tr.cost.mean());
        assert!(ir.cost.mean() < pr.cost.mean());
        // §4.2: effective reliability 0.64 < r < 0.67 (allow sampling slack).
        let inferred = ir.inferred_r.expect("inversion applies");
        assert!(
            (0.62..0.69).contains(&inferred),
            "inferred r {inferred} outside the paper band"
        );
        if let Some(pr_inferred) = pr.inferred_r {
            assert!(
                (inferred - pr_inferred).abs() < 0.03,
                "inconsistent inferred r: IR {inferred} vs PR {pr_inferred}"
            );
        }
    }
}
