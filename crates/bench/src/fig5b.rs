//! Figure 5(b): BOINC-style deployment, reliability vs. cost factor.
//!
//! The paper averaged multiple PlanetLab executions per configuration with
//! 200 hosts, 140 tasks per 22-variable 3-SAT instance, seeded 30% faults
//! plus natural platform faults, and validated the runs by backing out an
//! effective node reliability of 0.64 < r < 0.67 (§4.2). This module does
//! the same, including the inference step.

use smartred_core::analysis::inference;
use smartred_core::parallel::{self, Threads};
use smartred_core::params::{KVotes, VoteMargin};
use smartred_stats::{Summary, Table};
use smartred_volunteer::server::{run, VolunteerConfig};

use crate::{Scale, StrategySpec};

/// Averaged deployment results for one configuration.
#[derive(Debug, Clone)]
pub struct DeployPoint {
    /// Technique label.
    pub technique: &'static str,
    /// `k` or `d`.
    pub param: usize,
    /// Cost factors across executions.
    pub cost: Summary,
    /// Reliabilities across executions.
    pub reliability: Summary,
    /// Node reliability inferred from the mean cost (where the inversion
    /// applies).
    pub inferred_r: Option<f64>,
}

/// The deployed configurations.
pub fn configurations() -> Vec<StrategySpec> {
    let mut configs = Vec::new();
    for k in [3usize, 9, 19] {
        let kv = KVotes::new(k).expect("odd");
        configs.push(StrategySpec::Traditional(kv));
        configs.push(StrategySpec::Progressive(kv));
    }
    for d in [2usize, 4, 6] {
        configs.push(StrategySpec::Iterative(VoteMargin::new(d).expect("d >= 1")));
    }
    configs
}

/// Runs every configuration `scale.deployment_runs()` times with distinct
/// seeds and aggregates.
///
/// The unit of parallelism is one deployment execution — `configurations ×
/// runs` independent units — so even a single configuration's repeats
/// spread across workers. Each unit's seed depends only on `seed`, the run
/// index, and the configuration parameter (the exact formula predates the
/// parallel engine), and the per-configuration summaries are folded from
/// the results in run-index order, so the aggregates are bit-identical for
/// any worker count.
pub fn deploy(scale: Scale, seed: u64) -> Vec<DeployPoint> {
    let configs = configurations();
    let runs = scale.deployment_runs();
    let units: Vec<(StrategySpec, usize)> = configs
        .iter()
        .flat_map(|&spec| (0..runs).map(move |run_idx| (spec, run_idx)))
        .collect();
    let outcomes = parallel::map_slice(&units, Threads::Auto, |_, &(spec, run_idx)| {
        let cfg = VolunteerConfig::paper_deployment(
            scale.sat_vars(),
            seed.wrapping_mul(1000) + run_idx as u64 * 31 + spec.param() as u64,
        );
        let report = run(spec.build(), &cfg).expect("valid config");
        (report.cost_factor(), report.reliability())
    });
    configs
        .iter()
        .enumerate()
        .map(|(cfg_idx, spec)| {
            let (technique, param) = (spec.label(), spec.param());
            let mut cost = Summary::new();
            let mut reliability = Summary::new();
            for &(c, rel) in &outcomes[cfg_idx * runs..(cfg_idx + 1) * runs] {
                cost.record(c);
                reliability.record(rel);
            }
            let inferred_r = match (technique, param) {
                ("IR", d) => inference::reliability_from_iterative_cost(
                    VoteMargin::new(d).expect("d"),
                    cost.mean(),
                )
                .ok()
                .map(|r| r.get()),
                ("PR", k) => inference::reliability_from_progressive_cost(
                    KVotes::new(k).expect("odd"),
                    cost.mean(),
                )
                .ok()
                .map(|r| r.get()),
                _ => None,
            };
            DeployPoint {
                technique,
                param,
                cost,
                reliability,
                inferred_r,
            }
        })
        .collect()
}

/// Renders the Figure 5(b) table.
pub fn table(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "cost factor".into(),
        "reliability".into(),
        "inferred r".into(),
    ]);
    for p in deploy(scale, seed) {
        table.push_row(vec![
            p.technique.into(),
            p.param.to_string(),
            format!("{:.3} ± {:.3}", p.cost.mean(), p.cost.ci_half_width(1.96)),
            format!(
                "{:.4} ± {:.4}",
                p.reliability.mean(),
                p.reliability.ci_half_width(1.96)
            ),
            p.inferred_r
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced Figure 5(b): IR cheaper than PR cheaper than TR at k = 19 /
    /// d = 4, and the inferred reliability lands in the paper's band.
    #[test]
    fn deployment_reproduces_ordering_and_inferred_r() {
        let scale = Scale::Quick;
        let points = deploy(scale, 5);
        let find = |tech: &str, param: usize| {
            points
                .iter()
                .find(|p| p.technique == tech && p.param == param)
                .expect("configuration present")
        };
        let tr = find("TR", 19);
        let pr = find("PR", 19);
        let ir = find("IR", 4);
        assert!(pr.cost.mean() < tr.cost.mean());
        assert!(ir.cost.mean() < pr.cost.mean());
        // §4.2: effective reliability 0.64 < r < 0.67 (allow sampling slack).
        let inferred = ir.inferred_r.expect("inversion applies");
        assert!(
            (0.62..0.69).contains(&inferred),
            "inferred r {inferred} outside the paper band"
        );
        if let Some(pr_inferred) = pr.inferred_r {
            assert!(
                (inferred - pr_inferred).abs() < 0.03,
                "inconsistent inferred r: IR {inferred} vs PR {pr_inferred}"
            );
        }
    }
}
