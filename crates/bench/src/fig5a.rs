//! Figure 5(a): discrete-event simulation, reliability vs. cost factor at
//! `r = 0.7`.
//!
//! The paper's XDEVS runs used ≥10⁶ tasks on 10⁴ nodes with job durations
//! `U[0.5, 1.5]` and mean node reliability 0.7 (§4.1). Each configuration
//! here is one `smartred-dca` run; the `Full` scale matches those numbers.

use smartred_core::parallel::{self, Threads};
use smartred_core::params::{KVotes, VoteMargin};
use smartred_dca::config::DcaConfig;
use smartred_dca::metrics::DcaReport;
use smartred_dca::sim::run;
use smartred_stats::{binomial_ci, Table};

use crate::{Scale, StrategySpec};

/// One simulated configuration.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Technique label.
    pub technique: &'static str,
    /// `k` or `d`.
    pub param: usize,
    /// The full run report.
    pub report: DcaReport,
}

/// The configurations the figure sweeps.
pub fn configurations() -> Vec<StrategySpec> {
    let mut configs = Vec::new();
    for k in [3usize, 5, 9, 13, 19] {
        let kv = KVotes::new(k).expect("odd");
        configs.push(StrategySpec::Traditional(kv));
        configs.push(StrategySpec::Progressive(kv));
    }
    for d in 1..=6usize {
        configs.push(StrategySpec::Iterative(VoteMargin::new(d).expect("d >= 1")));
    }
    configs
}

/// Runs every configuration at the given scale, fanning the configurations
/// across worker threads.
///
/// Each configuration's simulation is seeded from `seed` and its own
/// parameters only, so the output is identical for any worker count
/// (including the sequential path) — the CI determinism job relies on this.
pub fn simulate(scale: Scale, seed: u64) -> Vec<SimPoint> {
    let configs = configurations();
    parallel::map_slice(&configs, Threads::Auto, |_, spec| {
        let (technique, param) = (spec.label(), spec.param());
        let cfg = DcaConfig::paper_baseline(
            scale.sim_tasks(),
            scale.sim_nodes(),
            0.3,
            seed ^ (param as u64) << 8 ^ technique.len() as u64,
        );
        let report = run(spec.build(), &cfg).expect("valid config");
        SimPoint {
            technique,
            param,
            report,
        }
    })
}

/// Renders the Figure 5(a) table.
pub fn table(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "cost factor".into(),
        "reliability".into(),
        "95% CI".into(),
        "max jobs/task".into(),
        "mean waves".into(),
        "makespan".into(),
        "utilization".into(),
    ]);
    for p in simulate(scale, seed) {
        let (lo, hi) = binomial_ci(
            p.report.tasks_correct as u64,
            p.report.tasks_completed as u64,
            1.96,
        );
        table.push_row(vec![
            p.technique.into(),
            p.param.to_string(),
            format!("{:.3}", p.report.cost_factor()),
            format!("{:.4}", p.report.reliability()),
            format!("[{lo:.4}, {hi:.4}]"),
            format!("{:.0}", p.report.max_jobs_single_task()),
            format!("{:.2}", p.report.waves_per_task.mean()),
            format!("{:.0}", p.report.makespan_units),
            format!("{:.3}", p.report.utilization()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartred_core::analysis::{iterative, progressive, traditional};
    use smartred_core::params::Reliability;

    /// A reduced Figure 5(a): the simulated points land on the analytic
    /// curves.
    #[test]
    fn simulation_matches_analysis() {
        let r = Reliability::new(0.7).unwrap();
        let points: Vec<SimPoint> = configurations()
            .into_iter()
            .filter(|spec| {
                // Keep the test fast: one config per technique.
                matches!(
                    (spec.label(), spec.param()),
                    ("TR", 9) | ("PR", 9) | ("IR", 4)
                )
            })
            .map(|spec| {
                let cfg = DcaConfig::paper_baseline(15_000, 300, 0.3, 99 + spec.param() as u64);
                SimPoint {
                    technique: spec.label(),
                    param: spec.param(),
                    report: run(spec.build(), &cfg).expect("valid config"),
                }
            })
            .collect();
        for p in &points {
            let (cost, rel) = match (p.technique, p.param) {
                ("TR", k) => {
                    let k = KVotes::new(k).unwrap();
                    (traditional::cost(k), traditional::reliability(k, r))
                }
                ("PR", k) => {
                    let k = KVotes::new(k).unwrap();
                    (
                        progressive::cost_series(k, r),
                        progressive::reliability(k, r),
                    )
                }
                ("IR", d) => {
                    let d = VoteMargin::new(d).unwrap();
                    (iterative::cost(d, r), iterative::reliability(d, r))
                }
                _ => unreachable!(),
            };
            assert!(
                (p.report.cost_factor() - cost).abs() < 0.15,
                "{} {}: cost {} vs {}",
                p.technique,
                p.param,
                p.report.cost_factor(),
                cost
            );
            assert!(
                (p.report.reliability() - rel).abs() < 0.02,
                "{} {}: rel {} vs {}",
                p.technique,
                p.param,
                p.report.reliability(),
                rel
            );
        }
    }
}
