//! The DESIGN.md ablations A1–A4.
//!
//! * **A1** — the simple margin algorithm (Fig. 4) deploys identically to
//!   the complex confidence-recomputing algorithm (Theorems 1–2 in action).
//! * **A2** — wave granularity: one-job-at-a-time stopping costs the same
//!   jobs as wave deployment but pays for it in response time.
//! * **A3** — baselines that estimate node reliability (BOINC adaptive
//!   replication, credibility-based fault tolerance) versus node-oblivious
//!   iterative redundancy, under the §5.1 attacks.
//! * **A4** — relaxing the §2.3 assumptions: heterogeneous node
//!   reliabilities, correlated failures, a colluding cartel.
//! * **A5** — node churn: volunteers joining and leaving mid-computation.

use std::rc::Rc;

use smartred_core::monte_carlo::{estimate_par, MonteCarloConfig};
use smartred_core::parallel::{self, Threads};
use smartred_core::params::{Confidence, KVotes, Reliability, VoteMargin};
use smartred_core::reputation::{ReputationConfig, ReputationStore};
use smartred_core::strategy::{
    AdaptiveReplication, CredibilityVoting, Decision, Iterative, IterativeComplex,
    RedundancyStrategy,
};
use smartred_core::tally::VoteTally;
use smartred_dca::config::{DcaConfig, FailureConfig, ReliabilityProfile};
use smartred_dca::sim::run as run_dca;
use smartred_stats::Table;
use smartred_volunteer::campaign::{run_campaign, AttackModel, CampaignConfig, Validator};

use crate::StrategySpec;

/// A1: simple vs. complex iterative algorithm under identical randomness.
///
/// Both estimates run through the parallel Monte-Carlo engine with the same
/// master seed, so every task `i` sees the same vote sequence under both
/// algorithms (counter-based per-task streams) — the comparison is exact,
/// not statistical, and independent of the worker count.
pub fn simple_vs_complex() -> Table {
    let r = Reliability::new(0.7).expect("valid");
    let target = Confidence::new(0.96).expect("valid");
    let complex = IterativeComplex::new(r, target).expect("r > 0.5");
    let simple = Iterative::new(complex.equivalent_margin());

    let mut table = Table::new(vec![
        "algorithm".into(),
        "cost factor".into(),
        "reliability".into(),
        "max jobs".into(),
    ]);
    for (name, report) in [
        (
            "simple (Fig. 4)",
            estimate_par(
                &simple,
                MonteCarloConfig::new(100_000, r),
                11,
                Threads::Auto,
            ),
        ),
        (
            "complex (q-based)",
            estimate_par(
                &complex,
                MonteCarloConfig::new(100_000, r),
                11,
                Threads::Auto,
            ),
        ),
    ] {
        table.push_row(vec![
            name.into(),
            format!("{:.4}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            report.max_jobs_single_task.to_string(),
        ]);
    }
    table
}

/// A one-job-at-a-time variant of iterative redundancy (used by A2).
///
/// Identical stopping rule, so by the wave-boundary absorption property it
/// deploys exactly the same number of jobs — but each job is its own wave,
/// so response time balloons.
#[derive(Debug, Clone, Copy)]
pub struct OneAtATime {
    /// The stopping margin.
    pub d: VoteMargin,
}

impl<V: Ord + Clone> RedundancyStrategy<V> for OneAtATime {
    fn name(&self) -> &'static str {
        "iterative-one-at-a-time"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        if tally.margin() >= self.d.get() {
            let (value, _) = tally.leader().expect("positive margin has a leader");
            Decision::Accept(value.clone())
        } else {
            Decision::Deploy(std::num::NonZeroUsize::new(1).expect("1 > 0"))
        }
    }
}

/// A2: wave granularity — same cost, very different response time.
pub fn wave_granularity() -> Table {
    let d = VoteMargin::new(4).expect("d");
    let cfg = DcaConfig::paper_baseline(10_000, 2_000, 0.3, 21);
    // The two variants are independent simulations of the same config, so
    // they run on separate workers; strategies are built inside the worker
    // because the simulator's `Rc` handles are not `Send`.
    let mut reports = parallel::map_indexed(2, Threads::Auto, |i| {
        let strategy: Rc<dyn RedundancyStrategy<bool>> = if i == 0 {
            Rc::new(Iterative::new(d))
        } else {
            Rc::new(OneAtATime { d })
        };
        run_dca(strategy, &cfg).expect("valid")
    });
    let single = reports.pop().expect("two reports");
    let waves = reports.pop().expect("two reports");

    let mut table = Table::new(vec![
        "deployment granularity".into(),
        "cost factor".into(),
        "reliability".into(),
        "mean waves".into(),
        "mean response".into(),
    ]);
    for (name, report) in [("wave (Fig. 4)", &waves), ("one job at a time", &single)] {
        table.push_row(vec![
            name.into(),
            format!("{:.3}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            format!("{:.2}", report.waves_per_task.mean()),
            format!("{:.3}", report.mean_response()),
        ]);
    }
    table
}

/// A3: reliability-estimating baselines under the §5.1 attacks.
pub fn baselines_under_attack() -> Table {
    let mut table = Table::new(vec![
        "validator".into(),
        "attack".into(),
        "reliability".into(),
        "cost (votes+checks)".into(),
        "spot checks".into(),
        "rebirths".into(),
    ]);
    let attacks = [
        ("always-lie", AttackModel::AlwaysLie),
        (
            "earn-trust-then-lie",
            AttackModel::EarnTrustThenLie { streak: 5 },
        ),
        ("identity-churn", AttackModel::IdentityChurn),
    ];
    // One campaign per (attack, validator) pair; each is seeded
    // identically to the old sequential loop, so the fan-out only changes
    // wall-clock time. Validators hold reputation state, so each worker
    // builds its own from the pair index.
    const VALIDATORS: usize = 4;
    let rows = parallel::map_indexed(attacks.len() * VALIDATORS, Threads::Auto, |i| {
        let (attack_name, attack) = attacks[i / VALIDATORS];
        let cfg = CampaignConfig {
            tasks: 2_000,
            nodes: 200,
            malicious_fraction: 0.25,
            honest_reliability: 0.95,
            attack,
            seed: 31,
        };
        let validator = match i % VALIDATORS {
            0 => Validator::Oblivious(Iterative::new(VoteMargin::new(4).expect("d"))),
            1 => Validator::Adaptive(AdaptiveReplication::new(
                Iterative::new(VoteMargin::new(4).expect("d")),
                ReputationStore::new(ReputationConfig::default()),
                5,
            )),
            2 => Validator::Credibility {
                voting: CredibilityVoting::new(
                    ReputationStore::new(ReputationConfig::default()),
                    Confidence::new(0.97).expect("valid"),
                ),
                spot_check_rate: 0.25,
            },
            // The §5.3 upper bound: an oracle with every node's true static
            // reliability. Note how it *loses* to node-blind IR under
            // trust-earning (its likelihood model is wrong for time-varying
            // behavior) — perfect-but-stale information is fragile.
            _ => Validator::WeightedOracle {
                target: Confidence::new(0.99).expect("valid"),
            },
        };
        let report = run_campaign(validator, cfg);
        vec![
            report.validator.into(),
            attack_name.into(),
            format!("{:.4}", report.reliability()),
            format!("{:.2}", report.cost_factor()),
            report.spot_check_jobs.to_string(),
            report.rebirths.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// A4: relaxing the §2.3 assumptions in the DCA simulation.
pub fn relaxed_assumptions() -> Table {
    let d = VoteMargin::new(4).expect("d");
    let tasks = 20_000;
    let nodes = 1_000;

    let uniform = DcaConfig::paper_baseline(tasks, nodes, 0.3, 41);

    let mut spread = uniform.clone();
    spread.pool.profile = ReliabilityProfile::Spread {
        mean_wrong: 0.3,
        half_width: 0.25,
    };

    let mut cartel = uniform.clone();
    cartel.pool.profile = ReliabilityProfile::TwoClass {
        honest_wrong: 0.0,
        byzantine_wrong: 1.0,
        byzantine_fraction: 0.3,
    };

    let mut shocked = uniform.clone();
    shocked.failure = FailureConfig::CommonShock {
        shock_probability: 0.05,
    };

    let mut regional = uniform.clone();
    regional.failure = FailureConfig::RegionalOutages {
        regions: 8,
        outage_rate: 0.3,
        outage_duration: 5.0,
    };

    let mut table = Table::new(vec![
        "pool model".into(),
        "cost factor".into(),
        "reliability".into(),
        "note".into(),
    ]);
    let ir = StrategySpec::Iterative(d);
    // The last row repeats the shock scenario under traditional redundancy
    // for comparison ("no technique recovers a shocked task").
    let tr = StrategySpec::Traditional(KVotes::new(9).expect("odd"));
    let entries: Vec<(&'static str, &DcaConfig, &'static str, StrategySpec)> = vec![
        (
            "uniform r=0.7 (baseline)",
            &uniform,
            "assumptions 1–3 hold",
            ir,
        ),
        (
            "heterogeneous (±0.25 spread)",
            &spread,
            "same mean r; §5.3: formulas with mean r still apply",
            ir,
        ),
        (
            "colluding cartel (30% always-wrong)",
            &cartel,
            "same mean r; §2.2 worst case",
            ir,
        ),
        (
            "common shock 5%",
            &shocked,
            "correlated failures defeat any redundancy (§2.2)",
            ir,
        ),
        (
            "regional outages (8 regions)",
            &regional,
            "geographic correlation shows up as timeout bursts (§5.3)",
            ir,
        ),
        (
            "common shock 5% (TR k=9)",
            &shocked,
            "no technique recovers a shocked task",
            tr,
        ),
    ];
    let rows = parallel::map_slice(&entries, Threads::Auto, |_, &(name, cfg, note, spec)| {
        let report = run_dca(spec.build(), cfg).expect("valid");
        vec![
            name.into(),
            format!("{:.3}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            note.into(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// A5: node churn — volunteers joining and leaving mid-computation
/// (Fig. 1's "new nodes volunteer" / "nodes quit pool" arrows).
///
/// Orphaned jobs surface as server timeouts; under the default
/// count-as-wrong policy churn therefore behaves like extra unreliability,
/// which iterative redundancy absorbs by deploying more waves — reliability
/// holds while cost rises with the churn rate.
pub fn churn() -> Table {
    use smartred_dca::config::{ChurnConfig, TimeoutPolicy};

    let d = VoteMargin::new(4).expect("d");
    let mut table = Table::new(vec![
        "churn (leave=join, per unit)".into(),
        "policy".into(),
        "cost factor".into(),
        "reliability".into(),
        "timeouts".into(),
        "departures".into(),
    ]);
    let units: Vec<(f64, TimeoutPolicy)> = [0.0, 2.0, 8.0]
        .iter()
        .flat_map(|&rate| {
            [TimeoutPolicy::CountAsWrong, TimeoutPolicy::Reissue]
                .into_iter()
                .map(move |policy| (rate, policy))
        })
        .collect();
    let rows = parallel::map_slice(&units, Threads::Auto, |_, &(rate, policy)| {
        let mut cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 51);
        cfg.timeout_policy = policy;
        if rate > 0.0 {
            cfg.churn = Some(ChurnConfig {
                leave_rate: rate,
                join_rate: rate,
            });
        }
        let report = run_dca(Rc::new(Iterative::new(d)), &cfg).expect("valid");
        vec![
            format!("{rate:.1}"),
            format!("{policy:?}"),
            format!("{:.3}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            report.timeouts.to_string(),
            report.departures.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_simple_equals_complex_exactly() {
        // Same seed → identical deployments → identical reports.
        let t = simple_vs_complex();
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().skip(2).collect();
        let fields =
            |line: &str| -> Vec<String> { line.split_whitespace().map(str::to_string).collect() };
        let a = fields(lines[0]);
        let b = fields(lines[1]);
        // Compare the numeric tail (cost, reliability, max jobs).
        assert_eq!(a[a.len() - 3..], b[b.len() - 3..], "A1 reports differ");
    }

    #[test]
    fn a2_same_cost_worse_latency() {
        let d = VoteMargin::new(3).unwrap();
        let cfg = DcaConfig::paper_baseline(4_000, 1_000, 0.3, 22);
        let waves = run_dca(Rc::new(Iterative::new(d)), &cfg).unwrap();
        let single = run_dca(Rc::new(OneAtATime { d }), &cfg).unwrap();
        assert!(
            (waves.cost_factor() - single.cost_factor()).abs() < 0.35,
            "wave {} vs single {}",
            waves.cost_factor(),
            single.cost_factor()
        );
        assert!(
            single.mean_response() > waves.mean_response() * 1.3,
            "single {} should be much slower than wave {}",
            single.mean_response(),
            waves.mean_response()
        );
    }

    #[test]
    fn a3_produces_twelve_rows() {
        assert_eq!(baselines_under_attack().len(), 12);
    }

    #[test]
    fn a4_heterogeneous_pool_keeps_reliability_band() {
        let t = relaxed_assumptions();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn a5_churn_is_absorbed_as_unreliability() {
        use smartred_dca::config::ChurnConfig;
        let d = VoteMargin::new(4).unwrap();
        let base = DcaConfig::paper_baseline(8_000, 300, 0.3, 52);
        let calm = run_dca(Rc::new(Iterative::new(d)), &base).unwrap();
        let mut churny = base.clone();
        churny.churn = Some(ChurnConfig {
            leave_rate: 4.0,
            join_rate: 4.0,
        });
        let stormy = run_dca(Rc::new(Iterative::new(d)), &churny).unwrap();
        assert!(stormy.departures > 0 && stormy.arrivals > 0);
        // Orphaned jobs count as wrong votes -> lower effective r -> higher
        // cost; IR still completes everything it can.
        assert!(stormy.cost_factor() >= calm.cost_factor());
        assert_eq!(
            stormy.tasks_completed + stormy.tasks_capped + stormy.tasks_stranded,
            8_000
        );
    }
}
