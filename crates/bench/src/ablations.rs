//! The DESIGN.md ablations A1–A4.
//!
//! * **A1** — the simple margin algorithm (Fig. 4) deploys identically to
//!   the complex confidence-recomputing algorithm (Theorems 1–2 in action).
//! * **A2** — wave granularity: one-job-at-a-time stopping costs the same
//!   jobs as wave deployment but pays for it in response time.
//! * **A3** — baselines that estimate node reliability (BOINC adaptive
//!   replication, credibility-based fault tolerance) versus node-oblivious
//!   iterative redundancy, under the §5.1 attacks.
//! * **A4** — relaxing the §2.3 assumptions: heterogeneous node
//!   reliabilities, correlated failures, a colluding cartel.
//! * **A5** — node churn: volunteers joining and leaving mid-computation.

use std::rc::Rc;

use rand::SeedableRng;
use smartred_core::monte_carlo::{estimate, MonteCarloConfig};
use smartred_core::params::{Confidence, KVotes, Reliability, VoteMargin};
use smartred_core::reputation::{ReputationConfig, ReputationStore};
use smartred_core::strategy::{
    AdaptiveReplication, CredibilityVoting, Decision, Iterative, IterativeComplex,
    RedundancyStrategy, Traditional,
};
use smartred_core::tally::VoteTally;
use smartred_dca::config::{DcaConfig, FailureConfig, ReliabilityProfile};
use smartred_dca::sim::run as run_dca;
use smartred_stats::Table;
use smartred_volunteer::campaign::{run_campaign, AttackModel, CampaignConfig, Validator};

/// A1: simple vs. complex iterative algorithm under identical randomness.
pub fn simple_vs_complex() -> Table {
    let r = Reliability::new(0.7).expect("valid");
    let target = Confidence::new(0.96).expect("valid");
    let complex = IterativeComplex::new(r, target).expect("r > 0.5");
    let simple = Iterative::new(complex.equivalent_margin());

    let mut table = Table::new(vec![
        "algorithm".into(),
        "cost factor".into(),
        "reliability".into(),
        "max jobs".into(),
    ]);
    for (name, report) in [
        (
            "simple (Fig. 4)",
            estimate(
                &simple,
                MonteCarloConfig::new(100_000, r),
                &mut rand_chacha::ChaCha8Rng::seed_from_u64(11),
            ),
        ),
        (
            "complex (q-based)",
            estimate(
                &complex,
                MonteCarloConfig::new(100_000, r),
                &mut rand_chacha::ChaCha8Rng::seed_from_u64(11),
            ),
        ),
    ] {
        table.push_row(vec![
            name.into(),
            format!("{:.4}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            report.max_jobs_single_task.to_string(),
        ]);
    }
    table
}

/// A one-job-at-a-time variant of iterative redundancy (used by A2).
///
/// Identical stopping rule, so by the wave-boundary absorption property it
/// deploys exactly the same number of jobs — but each job is its own wave,
/// so response time balloons.
#[derive(Debug, Clone, Copy)]
pub struct OneAtATime {
    /// The stopping margin.
    pub d: VoteMargin,
}

impl<V: Ord + Clone> RedundancyStrategy<V> for OneAtATime {
    fn name(&self) -> &'static str {
        "iterative-one-at-a-time"
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        if tally.margin() >= self.d.get() {
            let (value, _) = tally.leader().expect("positive margin has a leader");
            Decision::Accept(value.clone())
        } else {
            Decision::Deploy(std::num::NonZeroUsize::new(1).expect("1 > 0"))
        }
    }
}

/// A2: wave granularity — same cost, very different response time.
pub fn wave_granularity() -> Table {
    let d = VoteMargin::new(4).expect("d");
    let cfg = DcaConfig::paper_baseline(10_000, 2_000, 0.3, 21);
    let waves = run_dca(Rc::new(Iterative::new(d)), &cfg).expect("valid");
    let single = run_dca(Rc::new(OneAtATime { d }), &cfg).expect("valid");

    let mut table = Table::new(vec![
        "deployment granularity".into(),
        "cost factor".into(),
        "reliability".into(),
        "mean waves".into(),
        "mean response".into(),
    ]);
    for (name, report) in [("wave (Fig. 4)", &waves), ("one job at a time", &single)] {
        table.push_row(vec![
            name.into(),
            format!("{:.3}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            format!("{:.2}", report.waves_per_task.mean()),
            format!("{:.3}", report.mean_response()),
        ]);
    }
    table
}

/// A3: reliability-estimating baselines under the §5.1 attacks.
pub fn baselines_under_attack() -> Table {
    let mut table = Table::new(vec![
        "validator".into(),
        "attack".into(),
        "reliability".into(),
        "cost (votes+checks)".into(),
        "spot checks".into(),
        "rebirths".into(),
    ]);
    let attacks = [
        ("always-lie", AttackModel::AlwaysLie),
        (
            "earn-trust-then-lie",
            AttackModel::EarnTrustThenLie { streak: 5 },
        ),
        ("identity-churn", AttackModel::IdentityChurn),
    ];
    for (attack_name, attack) in attacks {
        let cfg = CampaignConfig {
            tasks: 2_000,
            nodes: 200,
            malicious_fraction: 0.25,
            honest_reliability: 0.95,
            attack,
            seed: 31,
        };
        let validators = [
            Validator::Oblivious(Iterative::new(VoteMargin::new(4).expect("d"))),
            Validator::Adaptive(AdaptiveReplication::new(
                Iterative::new(VoteMargin::new(4).expect("d")),
                ReputationStore::new(ReputationConfig::default()),
                5,
            )),
            Validator::Credibility {
                voting: CredibilityVoting::new(
                    ReputationStore::new(ReputationConfig::default()),
                    Confidence::new(0.97).expect("valid"),
                ),
                spot_check_rate: 0.25,
            },
            // The §5.3 upper bound: an oracle with every node's true static
            // reliability. Note how it *loses* to node-blind IR under
            // trust-earning (its likelihood model is wrong for time-varying
            // behavior) — perfect-but-stale information is fragile.
            Validator::WeightedOracle {
                target: Confidence::new(0.99).expect("valid"),
            },
        ];
        for validator in validators {
            let report = run_campaign(validator, cfg);
            table.push_row(vec![
                report.validator.into(),
                attack_name.into(),
                format!("{:.4}", report.reliability()),
                format!("{:.2}", report.cost_factor()),
                report.spot_check_jobs.to_string(),
                report.rebirths.to_string(),
            ]);
        }
    }
    table
}

/// A4: relaxing the §2.3 assumptions in the DCA simulation.
pub fn relaxed_assumptions() -> Table {
    let d = VoteMargin::new(4).expect("d");
    let strategy = || -> Rc<dyn RedundancyStrategy<bool>> { Rc::new(Iterative::new(d)) };
    let tasks = 20_000;
    let nodes = 1_000;

    let uniform = DcaConfig::paper_baseline(tasks, nodes, 0.3, 41);

    let mut spread = uniform.clone();
    spread.pool.profile = ReliabilityProfile::Spread {
        mean_wrong: 0.3,
        half_width: 0.25,
    };

    let mut cartel = uniform.clone();
    cartel.pool.profile = ReliabilityProfile::TwoClass {
        honest_wrong: 0.0,
        byzantine_wrong: 1.0,
        byzantine_fraction: 0.3,
    };

    let mut shocked = uniform.clone();
    shocked.failure = FailureConfig::CommonShock {
        shock_probability: 0.05,
    };

    let mut regional = uniform.clone();
    regional.failure = FailureConfig::RegionalOutages {
        regions: 8,
        outage_rate: 0.3,
        outage_duration: 5.0,
    };

    let mut table = Table::new(vec![
        "pool model".into(),
        "cost factor".into(),
        "reliability".into(),
        "note".into(),
    ]);
    for (name, cfg, note) in [
        ("uniform r=0.7 (baseline)", &uniform, "assumptions 1–3 hold"),
        (
            "heterogeneous (±0.25 spread)",
            &spread,
            "same mean r; §5.3: formulas with mean r still apply",
        ),
        (
            "colluding cartel (30% always-wrong)",
            &cartel,
            "same mean r; §2.2 worst case",
        ),
        (
            "common shock 5%",
            &shocked,
            "correlated failures defeat any redundancy (§2.2)",
        ),
        (
            "regional outages (8 regions)",
            &regional,
            "geographic correlation shows up as timeout bursts (§5.3)",
        ),
    ] {
        let report = run_dca(strategy(), cfg).expect("valid");
        table.push_row(vec![
            name.into(),
            format!("{:.3}", report.cost_factor()),
            format!("{:.4}", report.reliability()),
            note.into(),
        ]);
    }

    // Traditional redundancy under the same shock, for comparison.
    let tr = run_dca(
        Rc::new(Traditional::new(KVotes::new(9).expect("odd"))),
        &shocked,
    )
    .expect("valid");
    table.push_row(vec![
        "common shock 5% (TR k=9)".into(),
        format!("{:.3}", tr.cost_factor()),
        format!("{:.4}", tr.reliability()),
        "no technique recovers a shocked task".into(),
    ]);
    table
}

/// A5: node churn — volunteers joining and leaving mid-computation
/// (Fig. 1's "new nodes volunteer" / "nodes quit pool" arrows).
///
/// Orphaned jobs surface as server timeouts; under the default
/// count-as-wrong policy churn therefore behaves like extra unreliability,
/// which iterative redundancy absorbs by deploying more waves — reliability
/// holds while cost rises with the churn rate.
pub fn churn() -> Table {
    use smartred_dca::config::{ChurnConfig, TimeoutPolicy};

    let d = VoteMargin::new(4).expect("d");
    let mut table = Table::new(vec![
        "churn (leave=join, per unit)".into(),
        "policy".into(),
        "cost factor".into(),
        "reliability".into(),
        "timeouts".into(),
        "departures".into(),
    ]);
    for &rate in &[0.0, 2.0, 8.0] {
        for policy in [TimeoutPolicy::CountAsWrong, TimeoutPolicy::Reissue] {
            let mut cfg = DcaConfig::paper_baseline(20_000, 500, 0.3, 51);
            cfg.timeout_policy = policy;
            if rate > 0.0 {
                cfg.churn = Some(ChurnConfig {
                    leave_rate: rate,
                    join_rate: rate,
                });
            }
            let report = run_dca(Rc::new(Iterative::new(d)), &cfg).expect("valid");
            table.push_row(vec![
                format!("{rate:.1}"),
                format!("{policy:?}"),
                format!("{:.3}", report.cost_factor()),
                format!("{:.4}", report.reliability()),
                report.timeouts.to_string(),
                report.departures.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_simple_equals_complex_exactly() {
        // Same seed → identical deployments → identical reports.
        let t = simple_vs_complex();
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().skip(2).collect();
        let fields =
            |line: &str| -> Vec<String> { line.split_whitespace().map(str::to_string).collect() };
        let a = fields(lines[0]);
        let b = fields(lines[1]);
        // Compare the numeric tail (cost, reliability, max jobs).
        assert_eq!(a[a.len() - 3..], b[b.len() - 3..], "A1 reports differ");
    }

    #[test]
    fn a2_same_cost_worse_latency() {
        let d = VoteMargin::new(3).unwrap();
        let cfg = DcaConfig::paper_baseline(4_000, 1_000, 0.3, 22);
        let waves = run_dca(Rc::new(Iterative::new(d)), &cfg).unwrap();
        let single = run_dca(Rc::new(OneAtATime { d }), &cfg).unwrap();
        assert!(
            (waves.cost_factor() - single.cost_factor()).abs() < 0.35,
            "wave {} vs single {}",
            waves.cost_factor(),
            single.cost_factor()
        );
        assert!(
            single.mean_response() > waves.mean_response() * 1.3,
            "single {} should be much slower than wave {}",
            single.mean_response(),
            waves.mean_response()
        );
    }

    #[test]
    fn a3_produces_twelve_rows() {
        assert_eq!(baselines_under_attack().len(), 12);
    }

    #[test]
    fn a4_heterogeneous_pool_keeps_reliability_band() {
        let t = relaxed_assumptions();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn a5_churn_is_absorbed_as_unreliability() {
        use smartred_dca::config::ChurnConfig;
        let d = VoteMargin::new(4).unwrap();
        let base = DcaConfig::paper_baseline(8_000, 300, 0.3, 52);
        let calm = run_dca(Rc::new(Iterative::new(d)), &base).unwrap();
        let mut churny = base.clone();
        churny.churn = Some(ChurnConfig {
            leave_rate: 4.0,
            join_rate: 4.0,
        });
        let stormy = run_dca(Rc::new(Iterative::new(d)), &churny).unwrap();
        assert!(stormy.departures > 0 && stormy.arrivals > 0);
        // Orphaned jobs count as wrong votes -> lower effective r -> higher
        // cost; IR still completes everything it can.
        assert!(stormy.cost_factor() >= calm.cost_factor());
        assert_eq!(
            stormy.tasks_completed + stormy.tasks_capped + stormy.tasks_stranded,
            8_000
        );
    }
}
