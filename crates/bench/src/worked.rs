//! The §3 worked examples, regenerated exactly.
//!
//! Every number quoted in the running example of the paper — `k = 19`,
//! `r = 0.7`, target "0.97" — is reproduced here, including the observation
//! that the paper's 0.97 is the rounded value of `R_TR(19, 0.7) ≈ 0.9674`.

use smartred_core::analysis::{confidence, iterative, progressive, traditional};
use smartred_core::params::{Confidence, KVotes, Reliability, VoteMargin};
use smartred_stats::Table;

/// One quoted value and its regenerated counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkedExample {
    /// What the paper says.
    pub claim: &'static str,
    /// The paper's quoted value.
    pub quoted: f64,
    /// Our computed value.
    pub computed: f64,
    /// Allowed relative error — set by how coarsely the paper rounded the
    /// quote (e.g. "1.3" is one decimal place, so ±5%).
    pub tolerance: f64,
}

/// Regenerates every §3 example.
pub fn examples() -> Vec<WorkedExample> {
    let r = Reliability::new(0.7).expect("valid");
    let k19 = KVotes::new(19).expect("odd");
    let d4 = VoteMargin::new(4).expect("d >= 1");
    vec![
        WorkedExample {
            claim: "§3.1 k=1: system reliability equals r",
            quoted: 0.7,
            computed: traditional::reliability(KVotes::new(1).expect("odd"), r),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.1 k=19 reliability ('0.97')",
            quoted: 0.97,
            computed: traditional::reliability(k19, r),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.1 k=19 cost",
            quoted: 19.0,
            computed: traditional::cost(k19),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.2 progressive cost ('14.2 times as many resources')",
            quoted: 14.2,
            computed: progressive::cost_series(k19, r),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.2 progressive/traditional savings ('1.3 times smaller')",
            quoted: 1.3,
            computed: traditional::cost(k19) / progressive::cost_series(k19, r),
            tolerance: 0.05, // the paper quotes one decimal place
        },
        WorkedExample {
            claim: "§3.3 one job confidence ('0.7 chance the result is correct')",
            quoted: 0.7,
            computed: confidence::confidence(r, 1, 0),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.3 four unanimous jobs ('> 0.97' after rounding)",
            quoted: 0.9674,
            computed: confidence::confidence(r, 4, 0),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.3 iterative cost at d=4 ('9.4 times as many resources')",
            quoted: 9.4,
            computed: iterative::cost(d4, r),
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "§3.3 iterative vs progressive ('1.5 times less')",
            quoted: 1.5,
            computed: progressive::cost_series(k19, r) / iterative::cost(d4, r),
            tolerance: 0.05, // one decimal place in the paper
        },
        WorkedExample {
            claim: "§3.3 iterative vs traditional ('2.0 times less')",
            quoted: 2.0,
            computed: traditional::cost(k19) / iterative::cost(d4, r),
            tolerance: 0.05, // one decimal place in the paper
        },
        WorkedExample {
            claim: "§3.3 minimum margin for the rounded 0.96 target",
            quoted: 4.0,
            computed: confidence::minimum_margin(r, Confidence::new(0.96).expect("valid"))
                .expect("r > 0.5")
                .get() as f64,
            tolerance: 0.015,
        },
        WorkedExample {
            claim: "Eq. 6 reliability at d=4",
            quoted: 0.9674,
            computed: iterative::reliability(d4, r),
            tolerance: 0.015,
        },
    ]
}

/// Renders the worked-examples table.
pub fn table() -> Table {
    let mut table = Table::new(vec![
        "claim".into(),
        "paper".into(),
        "computed".into(),
        "rel. err".into(),
    ]);
    for ex in examples() {
        let err = ((ex.computed - ex.quoted) / ex.quoted).abs();
        table.push_row(vec![
            ex.claim.into(),
            format!("{:.4}", ex.quoted),
            format!("{:.4}", ex.computed),
            format!("{:.2}%", err * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every quoted number is reproduced to within the paper's own rounding
    /// (≤ 1.5% relative error).
    #[test]
    fn all_examples_within_paper_rounding() {
        for ex in examples() {
            let err = ((ex.computed - ex.quoted) / ex.quoted).abs();
            assert!(
                err < ex.tolerance,
                "{}: paper {} vs computed {} ({:.2}% off)",
                ex.claim,
                ex.quoted,
                ex.computed,
                err * 100.0
            );
        }
    }

    #[test]
    fn table_covers_all_examples() {
        assert_eq!(table().len(), examples().len());
    }
}
