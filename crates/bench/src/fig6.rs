//! Figure 6: average response time vs. cost factor.
//!
//! Plotted from the same discrete-event simulations as Figure 5(a),
//! measuring each task's span from first job dispatch to verdict. The
//! paper reports TR flat around one wave (1–1.5 units), PR 1.4–2.5× TR,
//! and IR 1.4–2.8× TR (§5.2). Alongside the simulated values, the analytic
//! wave-DP expectations from `smartred-core::analysis` are printed — the
//! two should agree, which cross-validates both.

use smartred_core::analysis::response::{expected_max_uniform, DEFAULT_JOB_DURATION};
use smartred_core::analysis::{iterative, progressive};
use smartred_core::parallel::{self, Threads};
use smartred_core::params::{KVotes, Reliability, VoteMargin};
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::run;
use smartred_stats::Table;

use crate::{Scale, StrategySpec};

/// One response-time observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Technique label.
    pub technique: &'static str,
    /// `k` or `d`.
    pub param: usize,
    /// Simulated cost factor.
    pub cost: f64,
    /// Simulated mean response time, in time units.
    pub simulated_response: f64,
    /// Analytic expected response time from the wave DP.
    pub analytic_response: f64,
}

fn analytic(technique: &str, param: usize, r: Reliability) -> f64 {
    match technique {
        "TR" => expected_max_uniform(param, DEFAULT_JOB_DURATION.0, DEFAULT_JOB_DURATION.1),
        "PR" => {
            progressive::profile(KVotes::new(param).expect("odd"), r, DEFAULT_JOB_DURATION)
                .expected_response
        }
        "IR" => {
            iterative::profile(
                VoteMargin::new(param).expect("d >= 1"),
                r,
                DEFAULT_JOB_DURATION,
                1e-12,
            )
            .expected_response
        }
        _ => unreachable!(),
    }
}

/// Simulates the Figure 6 configurations at `r = 0.7`, fanning the
/// configurations across worker threads (each seeded independently of the
/// worker, so the output is thread-count invariant).
pub fn simulate(scale: Scale, seed: u64) -> Vec<ResponsePoint> {
    let r = Reliability::new(0.7).expect("valid");
    let mut configs = Vec::new();
    for k in [3usize, 9, 19, 25] {
        let kv = KVotes::new(k).expect("odd");
        configs.push(StrategySpec::Traditional(kv));
        configs.push(StrategySpec::Progressive(kv));
    }
    for d in [2usize, 4, 6, 8, 10] {
        configs.push(StrategySpec::Iterative(VoteMargin::new(d).expect("d")));
    }
    parallel::map_slice(&configs, Threads::Auto, |_, spec| {
        let (technique, param) = (spec.label(), spec.param());
        // Plenty of nodes relative to tasks in flight keeps queueing
        // delay out of the measurement, isolating wave latency — the
        // quantity Figure 6 plots.
        let tasks = scale.sim_tasks() / 4;
        let nodes = scale.sim_nodes().max(tasks / 20);
        let cfg = DcaConfig::paper_baseline(tasks, nodes, 0.3, seed + param as u64);
        let report = run(spec.build(), &cfg).expect("valid config");
        ResponsePoint {
            technique,
            param,
            cost: report.cost_factor(),
            simulated_response: report.mean_response(),
            analytic_response: analytic(technique, param, r),
        }
    })
}

/// Renders the Figure 6 table.
pub fn table(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(vec![
        "technique".into(),
        "param".into(),
        "cost factor".into(),
        "response (sim)".into(),
        "response (analytic)".into(),
    ]);
    for p in simulate(scale, seed) {
        table.push_row(vec![
            p.technique.into(),
            p.param.to_string(),
            format!("{:.2}", p.cost),
            format!("{:.3}", p.simulated_response),
            format!("{:.3}", p.analytic_response),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_response_reproduces_paper_ratios() {
        // §5.2: "progressive redundancy took between 1.4 and 2.5 times
        // longer and iterative redundancy between 1.4 and 2.8 times longer
        // to respond than traditional redundancy."
        let r = Reliability::new(0.7).unwrap();
        for k in [9usize, 19] {
            let tr = analytic("TR", k, r);
            let pr = analytic("PR", k, r);
            let ratio = pr / tr;
            assert!(
                (1.2..=2.6).contains(&ratio),
                "PR/TR ratio {ratio} at k = {k}"
            );
        }
        // IR compared against TR at the reliability-matched k (the pairing
        // of Figure 5(c)): d = 4 matches k = 19, d = 2 roughly matches
        // k = 5.
        for (d, k) in [(2usize, 5usize), (4, 19)] {
            let ir = analytic("IR", d, r);
            let tr = analytic("TR", k, r);
            let ratio = ir / tr;
            assert!(
                (1.2..=2.9).contains(&ratio),
                "IR/TR ratio {ratio} at d = {d}, k = {k}"
            );
        }
        // Response grows with the margin (deeper waves).
        assert!(analytic("IR", 6, r) > analytic("IR", 4, r));
        assert!(analytic("IR", 4, r) > analytic("IR", 2, r));
    }

    #[test]
    fn waves_make_ir_slower_than_tr() {
        let r = Reliability::new(0.7).unwrap();
        assert!(analytic("IR", 6, r) > analytic("TR", 19, r));
        assert!(analytic("PR", 19, r) > analytic("TR", 19, r));
    }
}
