//! # smartred-bench — the experiment harness
//!
//! One module per figure of the paper, each exposing a function that runs
//! the experiment and returns printable tables. The `experiments` binary
//! dispatches on a figure id; the Criterion benches time the same kernels.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig3`] | Figure 3 — analytic reliability vs. cost factor, `r = 0.7` |
//! | [`fig5a`] | Figure 5(a) — XDEVS-style simulation, `r = 0.7` |
//! | [`fig5b`] | Figure 5(b) — BOINC/PlanetLab-style deployment |
//! | [`fig5c`] | Figure 5(c) — improvement over traditional vs. `r` |
//! | [`fig6`] | Figure 6 — average response time vs. cost factor |
//! | [`worked`] | the §3 worked examples (k = 19, r = 0.7, d = 4) |
//! | [`ablations`] | DESIGN.md ablations A1–A4 |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod fig3;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;
pub mod fig6;
pub mod worked;

/// Experiment scale: `Quick` finishes in seconds for CI and default runs;
/// `Full` approaches the paper's scale (10⁶ tasks / 10⁴ nodes for the
/// simulations, 22-variable instances for the deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced sizes, tight enough statistics to see every trend.
    #[default]
    Quick,
    /// Paper-scale runs (minutes).
    Full,
}

impl Scale {
    /// Tasks for DES simulation experiments.
    pub fn sim_tasks(self) -> usize {
        match self {
            Scale::Quick => 40_000,
            Scale::Full => 1_000_000,
        }
    }

    /// Node-pool size for DES simulation experiments.
    pub fn sim_nodes(self) -> usize {
        match self {
            Scale::Quick => 1_000,
            Scale::Full => 10_000,
        }
    }

    /// 3-SAT variables for deployment experiments.
    pub fn sat_vars(self) -> u32 {
        match self {
            Scale::Quick => 14,
            Scale::Full => 22,
        }
    }

    /// Independent deployment executions averaged per configuration.
    pub fn deployment_runs(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 30,
        }
    }
}
