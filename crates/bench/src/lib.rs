//! # smartred-bench — the experiment harness
//!
//! One module per figure of the paper, each exposing a function that runs
//! the experiment and returns printable tables. The `experiments` binary
//! dispatches on a figure id; the Criterion benches time the same kernels.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig3`] | Figure 3 — analytic reliability vs. cost factor, `r = 0.7` |
//! | [`fig5a`] | Figure 5(a) — XDEVS-style simulation, `r = 0.7` |
//! | [`fig5b`] | Figure 5(b) — BOINC/PlanetLab-style deployment |
//! | [`fig5c`] | Figure 5(c) — improvement over traditional vs. `r` |
//! | [`fig6`] | Figure 6 — average response time vs. cost factor |
//! | [`worked`] | the §3 worked examples (k = 19, r = 0.7, d = 4) |
//! | [`ablations`] | DESIGN.md ablations A1–A4 |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::rc::Rc;

use smartred_core::params::{KVotes, VoteMargin};
use smartred_core::strategy::{Decision, Iterative, Progressive, RedundancyStrategy, Traditional};
use smartred_core::tally::VoteTally;

pub mod ablations;
pub mod fig3;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;
pub mod fig6;
pub mod sweep;
pub mod worked;

/// A value-type description of one benchmark configuration: which technique
/// at which parameter.
///
/// The simulators take `Rc<dyn RedundancyStrategy>` handles, which are not
/// `Send`, so the parallel fan-out in the figure modules ships these specs
/// to the workers and materializes the strategy inside each worker with
/// [`build`](Self::build). The spec also implements [`RedundancyStrategy`]
/// directly (the three techniques are stateless, so delegation costs one
/// constructor call per decision), which lets it feed
/// `smartred_core::monte_carlo::sweep` without boxing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// Traditional redundancy at `k` votes.
    Traditional(KVotes),
    /// Progressive redundancy at `k` votes.
    Progressive(KVotes),
    /// Iterative redundancy at margin `d`.
    Iterative(VoteMargin),
}

impl StrategySpec {
    /// The figure label ("TR", "PR", "IR").
    pub fn label(&self) -> &'static str {
        match self {
            StrategySpec::Traditional(_) => "TR",
            StrategySpec::Progressive(_) => "PR",
            StrategySpec::Iterative(_) => "IR",
        }
    }

    /// The technique parameter (`k` or `d`).
    pub fn param(&self) -> usize {
        match self {
            StrategySpec::Traditional(k) | StrategySpec::Progressive(k) => k.get(),
            StrategySpec::Iterative(d) => d.get(),
        }
    }

    /// Materializes the strategy as the shared handle the discrete-event
    /// and volunteer simulators expect.
    pub fn build(&self) -> Rc<dyn RedundancyStrategy<bool>> {
        match *self {
            StrategySpec::Traditional(k) => Rc::new(Traditional::new(k)),
            StrategySpec::Progressive(k) => Rc::new(Progressive::new(k)),
            StrategySpec::Iterative(d) => Rc::new(Iterative::new(d)),
        }
    }
}

impl<V: Ord + Clone> RedundancyStrategy<V> for StrategySpec {
    fn name(&self) -> &'static str {
        match *self {
            StrategySpec::Traditional(k) => RedundancyStrategy::<V>::name(&Traditional::new(k)),
            StrategySpec::Progressive(k) => RedundancyStrategy::<V>::name(&Progressive::new(k)),
            StrategySpec::Iterative(d) => RedundancyStrategy::<V>::name(&Iterative::new(d)),
        }
    }

    fn decide(&self, tally: &VoteTally<V>) -> Decision<V> {
        match *self {
            StrategySpec::Traditional(k) => Traditional::new(k).decide(tally),
            StrategySpec::Progressive(k) => Progressive::new(k).decide(tally),
            StrategySpec::Iterative(d) => Iterative::new(d).decide(tally),
        }
    }

    fn job_bound(&self) -> Option<usize> {
        match *self {
            StrategySpec::Traditional(k) => {
                RedundancyStrategy::<V>::job_bound(&Traditional::new(k))
            }
            StrategySpec::Progressive(k) => {
                RedundancyStrategy::<V>::job_bound(&Progressive::new(k))
            }
            StrategySpec::Iterative(d) => RedundancyStrategy::<V>::job_bound(&Iterative::new(d)),
        }
    }
}

/// Experiment scale: `Quick` finishes in seconds for CI and default runs;
/// `Full` approaches the paper's scale (10⁶ tasks / 10⁴ nodes for the
/// simulations, 22-variable instances for the deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced sizes, tight enough statistics to see every trend.
    #[default]
    Quick,
    /// Paper-scale runs (minutes).
    Full,
}

impl Scale {
    /// Tasks for DES simulation experiments.
    pub fn sim_tasks(self) -> usize {
        match self {
            Scale::Quick => 40_000,
            Scale::Full => 1_000_000,
        }
    }

    /// Node-pool size for DES simulation experiments.
    pub fn sim_nodes(self) -> usize {
        match self {
            Scale::Quick => 1_000,
            Scale::Full => 10_000,
        }
    }

    /// 3-SAT variables for deployment experiments.
    pub fn sat_vars(self) -> u32 {
        match self {
            Scale::Quick => 14,
            Scale::Full => 22,
        }
    }

    /// Independent deployment executions averaged per configuration.
    pub fn deployment_runs(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 30,
        }
    }
}
