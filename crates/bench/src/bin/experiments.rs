//! Regenerates the paper's figures as plain-text tables.
//!
//! ```text
//! experiments <id> [--full] [--csv] [--journal <path>]
//!
//! ids: fig3 | fig5a | fig5b | fig5c | fig6 | sweep | worked-examples |
//!      ablation-simple-vs-complex | ablation-waves |
//!      ablation-baselines | ablation-relaxed | all
//! ```
//!
//! `--full` runs at the paper's scale (10⁶ tasks / 10⁴ nodes simulations,
//! 22-variable deployments) and takes minutes; the default is a reduced
//! scale that shows every trend in seconds.
//!
//! `--csv` emits each table as CSV without section banners — machine
//! parseable and byte-deterministic, which is what the CI determinism job
//! diffs across `SMARTRED_THREADS` settings.
//!
//! `sweep` is the parallel Monte-Carlo sweep over the Figure 5(a) grid;
//! its output is identical for every `SMARTRED_THREADS` value.
//!
//! `--journal <path>` additionally captures the Figure 5(a) flagship run
//! (iterative redundancy, d = 4) with the event journal enabled and writes
//! it as JSONL to `path`; the journal digest is printed to stderr so two
//! captures can be compared at a glance.

use std::rc::Rc;

use smartred_bench::{ablations, fig3, fig5a, fig5b, fig5c, fig6, sweep, worked, Scale};
use smartred_core::parallel::Threads;
use smartred_core::params::VoteMargin;
use smartred_core::strategy::Iterative;
use smartred_dca::config::DcaConfig;
use smartred_dca::sim::run_journaled;
use smartred_stats::Table;

const SEED: u64 = 20110620; // ICDCS 2011 opening day

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let journal_path = match args.iter().position(|a| a == "--journal") {
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("--journal requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let scale = if full { Scale::Full } else { Scale::Quick };
    let id = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--journal"))
        .map(|(_, a)| a.as_str())
        .unwrap_or("all");

    let known = [
        "fig3",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig6",
        "sweep",
        "worked-examples",
        "ablation-simple-vs-complex",
        "ablation-waves",
        "ablation-baselines",
        "ablation-relaxed",
        "ablation-churn",
        "all",
    ];
    if !known.contains(&id) {
        eprintln!("unknown experiment '{id}'; known: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |target: &str| id == "all" || id == target;
    let emit = |title: &str, table: &Table| {
        if csv {
            print!("{}", table.to_csv());
        } else {
            println!("\n=== {title} ===\n");
            print!("{table}");
        }
    };

    if run("worked-examples") {
        emit(
            "Worked examples (§3; k = 19, r = 0.7, d = 4)",
            &worked::table(),
        );
    }
    if run("fig3") {
        emit(
            "Figure 3 — analytic reliability vs. cost factor (r = 0.7)",
            &fig3::table(),
        );
    }
    if run("fig5a") {
        emit(
            "Figure 5(a) — discrete-event simulation (r = 0.7)",
            &fig5a::table(scale, SEED),
        );
    }
    if run("fig5b") {
        emit(
            "Figure 5(b) — volunteer-computing deployment (PlanetLab profile)",
            &fig5b::table(scale, SEED),
        );
    }
    if run("fig5c") {
        emit(
            "Figure 5(c) — improvement over traditional redundancy vs. r (k = 19)",
            &fig5c::table(if full { 95 } else { 48 }),
        );
        emit(
            "Figure 5(c) cross-check — analytic vs. simulated ratios",
            &fig5c::simulated_check(scale.sim_tasks() / 2, scale.sim_nodes(), SEED),
        );
    }
    if run("fig6") {
        emit(
            "Figure 6 — average response time vs. cost factor (r = 0.7)",
            &fig6::table(scale, SEED),
        );
    }
    if run("sweep") {
        emit(
            "Parallel Monte-Carlo sweep — Figure 5(a) grid (r = 0.7)",
            &sweep::table(scale.sim_tasks(), 0.7, SEED, Threads::Auto),
        );
    }
    if run("ablation-simple-vs-complex") {
        emit(
            "Ablation A1 — simple (Fig. 4) vs. complex iterative algorithm",
            &ablations::simple_vs_complex(),
        );
    }
    if run("ablation-waves") {
        emit(
            "Ablation A2 — wave deployment vs. one job at a time",
            &ablations::wave_granularity(),
        );
    }
    if run("ablation-baselines") {
        emit(
            "Ablation A3 — reliability-estimating baselines under attack (§5.1)",
            &ablations::baselines_under_attack(),
        );
    }
    if run("ablation-relaxed") {
        emit(
            "Ablation A4 — relaxed assumptions (§5.3)",
            &ablations::relaxed_assumptions(),
        );
    }
    if run("ablation-churn") {
        emit(
            "Ablation A5 — node churn (Fig. 1 join/leave arrows)",
            &ablations::churn(),
        );
    }

    if let Some(path) = journal_path {
        let cfg = DcaConfig::paper_baseline(scale.sim_tasks(), scale.sim_nodes(), 0.3, SEED);
        let strategy = Iterative::new(VoteMargin::new(4).expect("d = 4 is valid"));
        let captured = run_journaled(Rc::new(strategy), &cfg).expect("baseline config is valid");
        if let Err(e) = std::fs::write(&path, captured.journal.to_jsonl()) {
            eprintln!("failed to write journal to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "journal: {} events, digest {}, written to {path}",
            captured.journal.len(),
            captured.journal.digest_hex()
        );
    }
}
