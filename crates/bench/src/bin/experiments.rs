//! Regenerates the paper's figures as plain-text tables.
//!
//! ```text
//! experiments <id> [--full]
//!
//! ids: fig3 | fig5a | fig5b | fig5c | fig6 | worked-examples |
//!      ablation-simple-vs-complex | ablation-waves |
//!      ablation-baselines | ablation-relaxed | all
//! ```
//!
//! `--full` runs at the paper's scale (10⁶ tasks / 10⁴ nodes simulations,
//! 22-variable deployments) and takes minutes; the default is a reduced
//! scale that shows every trend in seconds.

use smartred_bench::{ablations, fig3, fig5a, fig5b, fig5c, fig6, worked, Scale};

const SEED: u64 = 20110620; // ICDCS 2011 opening day

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let known = [
        "fig3",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig6",
        "worked-examples",
        "ablation-simple-vs-complex",
        "ablation-waves",
        "ablation-baselines",
        "ablation-relaxed",
        "ablation-churn",
        "all",
    ];
    if !known.contains(&id) {
        eprintln!("unknown experiment '{id}'; known: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |target: &str| id == "all" || id == target;

    if run("worked-examples") {
        section("Worked examples (§3; k = 19, r = 0.7, d = 4)");
        print!("{}", worked::table());
    }
    if run("fig3") {
        section("Figure 3 — analytic reliability vs. cost factor (r = 0.7)");
        print!("{}", fig3::table());
    }
    if run("fig5a") {
        section("Figure 5(a) — discrete-event simulation (r = 0.7)");
        print!("{}", fig5a::table(scale, SEED));
    }
    if run("fig5b") {
        section("Figure 5(b) — volunteer-computing deployment (PlanetLab profile)");
        print!("{}", fig5b::table(scale, SEED));
    }
    if run("fig5c") {
        section("Figure 5(c) — improvement over traditional redundancy vs. r (k = 19)");
        print!("{}", fig5c::table(if full { 95 } else { 48 }));
        section("Figure 5(c) cross-check — analytic vs. simulated ratios");
        print!(
            "{}",
            fig5c::simulated_check(scale.sim_tasks() / 2, scale.sim_nodes(), SEED)
        );
    }
    if run("fig6") {
        section("Figure 6 — average response time vs. cost factor (r = 0.7)");
        print!("{}", fig6::table(scale, SEED));
    }
    if run("ablation-simple-vs-complex") {
        section("Ablation A1 — simple (Fig. 4) vs. complex iterative algorithm");
        print!("{}", ablations::simple_vs_complex());
    }
    if run("ablation-waves") {
        section("Ablation A2 — wave deployment vs. one job at a time");
        print!("{}", ablations::wave_granularity());
    }
    if run("ablation-baselines") {
        section("Ablation A3 — reliability-estimating baselines under attack (§5.1)");
        print!("{}", ablations::baselines_under_attack());
    }
    if run("ablation-relaxed") {
        section("Ablation A4 — relaxed assumptions (§5.3)");
        print!("{}", ablations::relaxed_assumptions());
    }
    if run("ablation-churn") {
        section("Ablation A5 — node churn (Fig. 1 join/leave arrows)");
        print!("{}", ablations::churn());
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}
